//! A concurrent job-service front door for BIST synthesis.
//!
//! This is the first layer of the workspace that can actually *serve
//! traffic*: a batch of [`SynthesisJob`]s (circuit × k-range × budget) is
//! accepted by a [`JobService`], run over a bounded scoped-thread worker
//! pool, and answered with structured [`JobReport`]s in **submission
//! order**, independent of scheduling. Every job carries its own
//! [`Budget`] and gets its own [`CancelToken`] (returned as a
//! [`JobHandle`] at submission), so callers can bound, cancel or
//! deadline-cap individual jobs without touching the rest of the batch.
//!
//! A job runs its k-range on one shared [`SynthesisEngine`] — the circuit
//! base model is built and reduced once per job, exactly like
//! [`synthesize_all_sessions`](bist_core::synthesis::synthesize_all_sessions)
//! — so under a deterministic (node-limited) budget the reported
//! objectives are identical to the engine sweep's.
//!
//! ```
//! use advbist::dfg::benchmarks;
//! use advbist::service::{JobService, SynthesisJob};
//! use advbist::{core::SynthesisConfig, Budget};
//!
//! let mut service = JobService::new().with_workers(2);
//! let handle = service.submit(
//!     SynthesisJob::new("figure1", benchmarks::figure1())
//!         .with_config(SynthesisConfig::exact())
//!         .with_budget(Budget::nodes(500)),
//! );
//! assert_eq!(handle.index(), 0);
//! let reports = service.run();
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].outcome.is_completed());
//! // One row per k-test session, in ascending k order.
//! assert_eq!(reports[0].rows.len(), 2);
//! ```

use std::ops::RangeInclusive;
use std::time::Instant;

use bist_core::engine::{par_map_ordered_bounded, SynthesisEngine};
use bist_core::{CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_ilp::{Budget, CancelToken};

/// One unit of work for the service: a circuit, the k-test sessions to
/// synthesise, a per-job [`Budget`] and the synthesis configuration.
#[derive(Debug, Clone)]
pub struct SynthesisJob {
    /// Caller-chosen job name, echoed in the [`JobReport`].
    pub name: String,
    /// The scheduled, bound data-flow graph to synthesise for.
    pub input: SynthesisInput,
    /// The k-range to sweep; `None` means the full `1..=N` sweep (`N` =
    /// number of modules).
    pub sessions: Option<RangeInclusive<usize>>,
    /// Per-job solve budget. The node and wall-clock limits apply to each
    /// ILP solve of the job; the absolute deadline spans the whole job
    /// (every solve shares it, and remaining k values are skipped once it
    /// passes).
    pub budget: Budget,
    /// Synthesis configuration (cost model, warm starts, solver options).
    /// Its solver budget and cancellation slots are overwritten by the
    /// job's own budget and token when the job runs.
    pub config: SynthesisConfig,
}

impl SynthesisJob {
    /// A job synthesising every k-test session of `input` under the
    /// default configuration's budget.
    pub fn new(name: impl Into<String>, input: SynthesisInput) -> Self {
        let config = SynthesisConfig::default();
        Self {
            name: name.into(),
            input,
            sessions: None,
            budget: config.solver.budget,
            config,
        }
    }

    /// Restricts the job to the given k-range.
    pub fn with_sessions(mut self, sessions: RangeInclusive<usize>) -> Self {
        self.sessions = Some(sessions);
        self
    }

    /// Sets the per-job budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the synthesis configuration *and* adopts its solver budget
    /// (`config.solver.budget`), so a job configured with, say,
    /// [`SynthesisConfig::exact`](bist_core::SynthesisConfig::exact) really
    /// runs unlimited. Call [`SynthesisJob::with_budget`] *after* this to
    /// override the budget independently.
    pub fn with_config(mut self, config: SynthesisConfig) -> Self {
        self.budget = config.solver.budget;
        self.config = config;
        self
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every requested k was synthesised.
    Completed,
    /// The job's [`CancelToken`] was raised; rows synthesised before the
    /// cancellation are kept.
    Cancelled,
    /// The job's absolute deadline passed; rows synthesised before the
    /// deadline are kept.
    DeadlineExpired,
    /// A synthesis failed (infeasible instance, invalid k, limits expired
    /// with no design, ...). The message is the underlying error.
    Failed(String),
}

impl JobOutcome {
    /// Whether the job ran to completion.
    pub fn is_completed(&self) -> bool {
        *self == JobOutcome::Completed
    }
}

/// One synthesised k-test session inside a [`JobReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Number of sub-test sessions `k`.
    pub k: usize,
    /// Objective value reported by the solver.
    pub objective: f64,
    /// Total design area in transistors.
    pub area: u64,
    /// Whether the ILP proved the design optimal within the job's budget.
    pub optimal: bool,
    /// Branch-and-bound nodes explored by this solve.
    pub nodes: u64,
    /// Wall-clock seconds of this solve.
    pub seconds: f64,
}

/// The structured answer for one [`SynthesisJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job's name, echoed back.
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// One row per synthesised k, ascending. Partial when the job was
    /// cancelled, deadline-capped or failed midway.
    pub rows: Vec<JobRow>,
    /// Wall-clock seconds of the whole job.
    pub seconds: f64,
}

/// A submitted job's control handle: its batch index and a clone of its
/// [`CancelToken`]. Cancelling is safe from any thread, before or during
/// the run.
#[derive(Debug, Clone)]
pub struct JobHandle {
    index: usize,
    token: CancelToken,
}

impl JobHandle {
    /// Position of the job in the batch (also its index in the report
    /// vector returned by [`JobService::run`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Cancels the job: the current solve stops at its next node (keeping
    /// its best incumbent) and the remaining k values are skipped.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the job's cancellation token.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }
}

/// The job-queue front door: submit a batch, run it over a bounded worker
/// pool, get deterministic per-job reports. See the [module
/// documentation](self) for an example.
#[derive(Debug, Default)]
pub struct JobService {
    jobs: Vec<(SynthesisJob, CancelToken)>,
    max_workers: Option<usize>,
}

impl JobService {
    /// An empty service with the worker pool capped at the machine's
    /// available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the worker pool at `workers` threads (at least 1; the
    /// machine's available parallelism still applies as a second cap).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.max_workers = Some(workers.max(1));
        self
    }

    /// Enqueues a job and returns its control handle.
    pub fn submit(&mut self, job: SynthesisJob) -> JobHandle {
        let token = CancelToken::new();
        let handle = JobHandle {
            index: self.jobs.len(),
            token: token.clone(),
        };
        self.jobs.push((job, token));
        handle
    }

    /// Number of jobs currently enqueued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the whole batch and returns one report per job, in submission
    /// order regardless of thread scheduling. Jobs are independent: a
    /// failed, cancelled or deadline-capped job never affects the others.
    pub fn run(self) -> Vec<JobReport> {
        let workers = self.max_workers.unwrap_or(usize::MAX);
        par_map_ordered_bounded(&self.jobs, workers, |(job, token)| run_job(job, token))
    }
}

/// Runs one job on the calling worker thread.
fn run_job(job: &SynthesisJob, token: &CancelToken) -> JobReport {
    let start = Instant::now();
    let mut config = job.config.clone();
    config.solver.budget = job.budget;
    config.solver.cancel = Some(token.clone());

    let finish = |outcome: JobOutcome, rows: Vec<JobRow>| JobReport {
        name: job.name.clone(),
        outcome,
        rows,
        seconds: start.elapsed().as_secs_f64(),
    };

    let engine = match SynthesisEngine::new(&job.input, &config) {
        Ok(engine) => engine,
        Err(e) => return finish(JobOutcome::Failed(e.to_string()), Vec::new()),
    };
    let sessions = job.sessions.clone().unwrap_or(1..=engine.max_sessions());

    let mut rows = Vec::new();
    for k in sessions {
        // Deterministic front-door checks between solves: a pre-cancelled
        // job or pre-expired deadline produces zero rows without touching
        // the solver (no timing races).
        if token.is_cancelled() {
            return finish(JobOutcome::Cancelled, rows);
        }
        if job.budget.deadline_passed() {
            return finish(JobOutcome::DeadlineExpired, rows);
        }
        match engine.synthesize_seeded(k, None) {
            Ok(outcome) => {
                rows.push(JobRow {
                    k,
                    objective: outcome.design.objective,
                    area: outcome.design.area.total(),
                    optimal: outcome.design.optimal,
                    nodes: outcome.design.stats.nodes,
                    seconds: outcome.seconds,
                });
            }
            // Cancelled before any incumbent existed for this k: report
            // the job as cancelled with the rows gathered so far.
            Err(CoreError::Interrupted) => return finish(JobOutcome::Cancelled, rows),
            // Limits expired with nothing in hand *because the job's
            // deadline passed mid-solve*: that is the deadline outcome,
            // not a hard failure.
            Err(CoreError::NoSolutionWithinLimits) if job.budget.deadline_passed() => {
                return finish(JobOutcome::DeadlineExpired, rows)
            }
            Err(e) => return finish(JobOutcome::Failed(e.to_string()), rows),
        }
    }
    finish(JobOutcome::Completed, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;
    use bist_ilp::Budget;
    use std::time::Instant;

    fn exact_job(name: &str, input: SynthesisInput) -> SynthesisJob {
        SynthesisJob::new(name, input).with_config(bist_core::SynthesisConfig::exact())
    }

    #[test]
    fn batch_reproduces_the_engine_sweep_in_submission_order() {
        let input = benchmarks::figure1();
        let config = bist_core::SynthesisConfig::exact();
        let sweep = bist_core::synthesis::synthesize_all_sessions(&input, &config).unwrap();

        let mut service = JobService::new().with_workers(2);
        service.submit(exact_job("full", benchmarks::figure1()));
        service.submit(exact_job("k1-only", benchmarks::figure1()).with_sessions(1..=1));
        let reports = service.run();

        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "full");
        assert_eq!(reports[1].name, "k1-only");
        assert!(reports.iter().all(|r| r.outcome.is_completed()));

        // The full job mirrors the engine sweep row for row.
        assert_eq!(reports[0].rows.len(), sweep.len());
        for (row, design) in reports[0].rows.iter().zip(&sweep) {
            assert_eq!(row.k, design.sessions);
            assert!((row.objective - design.objective).abs() < 1e-9);
            assert_eq!(row.area, design.area.total());
            assert!(row.optimal);
        }
        // The k-restricted job produced exactly its requested row.
        assert_eq!(reports[1].rows.len(), 1);
        assert_eq!(reports[1].rows[0].k, 1);
        assert!((reports[1].rows[0].objective - sweep[0].objective).abs() < 1e-9);
    }

    #[test]
    fn pre_cancelled_job_yields_no_rows_and_spares_the_rest_of_the_batch() {
        let mut service = JobService::new().with_workers(1);
        let cancelled = service.submit(exact_job("cancelled", benchmarks::figure1()));
        let kept = service
            .submit(exact_job("kept", benchmarks::figure1()).with_budget(Budget::nodes(500)));
        cancelled.cancel();
        assert!(cancelled.token().is_cancelled());
        let reports = service.run();
        assert_eq!(reports[cancelled.index()].outcome, JobOutcome::Cancelled);
        assert!(reports[cancelled.index()].rows.is_empty());
        assert_eq!(reports[kept.index()].outcome, JobOutcome::Completed);
        assert_eq!(reports[kept.index()].rows.len(), 2);
    }

    #[test]
    fn expired_deadline_stops_a_job_before_any_solve() {
        let mut service = JobService::new();
        service.submit(
            exact_job("late", benchmarks::figure1())
                .with_budget(Budget::unlimited().with_deadline(Instant::now())),
        );
        let reports = service.run();
        assert_eq!(reports[0].outcome, JobOutcome::DeadlineExpired);
        assert!(reports[0].rows.is_empty());
    }

    #[test]
    fn invalid_session_range_fails_only_that_job() {
        let mut service = JobService::new();
        service.submit(exact_job("bad-k", benchmarks::figure1()).with_sessions(7..=7));
        service.submit(exact_job("good", benchmarks::figure1()).with_sessions(2..=2));
        let reports = service.run();
        match &reports[0].outcome {
            JobOutcome::Failed(message) => assert!(message.contains("7")),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(reports[1].outcome.is_completed());
    }
}
