//! A concurrent job-service front door for BIST synthesis.
//!
//! This is the first layer of the workspace that can actually *serve
//! traffic*: a batch of [`SynthesisJob`]s (circuit × k-range × budget) is
//! accepted by a [`JobService`], run over a bounded scoped-thread worker
//! pool, and answered with structured [`JobReport`]s in **submission
//! order**, independent of scheduling. Every job carries its own
//! [`Budget`] and gets its own [`CancelToken`] (returned as a
//! [`JobHandle`] at submission), so callers can bound, cancel or
//! deadline-cap individual jobs without touching the rest of the batch.
//!
//! A job runs its k-range on one shared [`SynthesisEngine`] — the circuit
//! base model is built and reduced once per job, exactly like
//! [`synthesize_all_sessions`](bist_core::synthesis::synthesize_all_sessions)
//! — so under a deterministic (node-limited) budget the reported
//! objectives are identical to the engine sweep's.
//!
//! # The cross-job solve cache
//!
//! The service keeps a fingerprint-keyed [`SolveCache`] shared by every
//! worker of a batch (and, via [`JobService::with_cache`], across batches).
//! Each per-k instance is keyed by a content hash of its full model —
//! constraint matrix, objective, variable bounds and integrality — plus a
//! digest of the solver configuration, so two jobs that happen to submit
//! the same circuit × k × config pay for one solve. The cache stores two
//! kinds of entries:
//!
//! * **finished rows** — the deterministic result of a completed (or
//!   node-budget-exhausted) solve, keyed additionally by the node limit;
//!   a hit replays the row verbatim without touching the solver,
//! * **solve snapshots** — the resumable frontier of an interrupted solve
//!   (see [`bist_ilp::SolveSnapshot`]); a hit *continues* the snapshotted
//!   branch-and-bound tree instead of starting over, so no node is ever
//!   explored twice.
//!
//! The cache changes performance, never results: entries are only consulted
//! for **deterministic** budgets ([`Budget::is_deterministic`] — no
//! wall-clock limit, no deadline), a hit is bit-identical to the solve it
//! replaced, and memory is bounded by an LRU budget
//! (`BIST_CACHE_MB` / [`Budget::cache_mb`], default
//! [`SolveCache::DEFAULT_CAPACITY_MB`]; `0` disables caching for that job).
//! Snapshot capture is opt-in per job via `BIST_SNAPSHOT` /
//! [`Budget::snapshot`]. Hit/miss/eviction counters are reported per job on
//! the [`JobReport`] and globally via [`SolveCache::stats`].
//!
//! ```
//! use advbist::dfg::benchmarks;
//! use advbist::service::{JobService, SynthesisJob};
//! use advbist::{core::SynthesisConfig, Budget};
//!
//! let mut service = JobService::new().with_workers(2);
//! let handle = service.submit(
//!     SynthesisJob::new("figure1", benchmarks::figure1())
//!         .with_config(SynthesisConfig::exact())
//!         .with_budget(Budget::nodes(500)),
//! );
//! assert_eq!(handle.index(), 0);
//! let reports = service.run();
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].outcome.is_completed());
//! // One row per k-test session, in ascending k order.
//! assert_eq!(reports[0].rows.len(), 2);
//! ```

use std::ops::RangeInclusive;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bist_core::engine::{par_map_ordered_bounded, SynthesisEngine};
use bist_core::{CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_ilp::{Budget, CancelToken, SolveSnapshot};

/// One unit of work for the service: a circuit, the k-test sessions to
/// synthesise, a per-job [`Budget`] and the synthesis configuration.
#[derive(Debug, Clone)]
pub struct SynthesisJob {
    /// Caller-chosen job name, echoed in the [`JobReport`].
    pub name: String,
    /// The scheduled, bound data-flow graph to synthesise for.
    pub input: SynthesisInput,
    /// The k-range to sweep; `None` means the full `1..=N` sweep (`N` =
    /// number of modules).
    pub sessions: Option<RangeInclusive<usize>>,
    /// Per-job solve budget. The node and wall-clock limits apply to each
    /// ILP solve of the job; the absolute deadline spans the whole job
    /// (every solve shares it, and remaining k values are skipped once it
    /// passes).
    pub budget: Budget,
    /// Synthesis configuration (cost model, warm starts, solver options).
    /// Its solver budget and cancellation slots are overwritten by the
    /// job's own budget and token when the job runs.
    pub config: SynthesisConfig,
}

impl SynthesisJob {
    /// A job synthesising every k-test session of `input` under the
    /// default configuration's budget.
    pub fn new(name: impl Into<String>, input: SynthesisInput) -> Self {
        let config = SynthesisConfig::default();
        Self {
            name: name.into(),
            input,
            sessions: None,
            budget: config.solver.budget,
            config,
        }
    }

    /// Restricts the job to the given k-range.
    pub fn with_sessions(mut self, sessions: RangeInclusive<usize>) -> Self {
        self.sessions = Some(sessions);
        self
    }

    /// Sets the per-job budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the synthesis configuration *and* adopts its solver budget
    /// (`config.solver.budget`), so a job configured with, say,
    /// [`SynthesisConfig::exact`](bist_core::SynthesisConfig::exact) really
    /// runs unlimited. Call [`SynthesisJob::with_budget`] *after* this to
    /// override the budget independently.
    pub fn with_config(mut self, config: SynthesisConfig) -> Self {
        self.budget = config.solver.budget;
        self.config = config;
        self
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every requested k was synthesised.
    Completed,
    /// The job's [`CancelToken`] was raised; rows synthesised before the
    /// cancellation are kept.
    Cancelled,
    /// The job's absolute deadline passed; rows synthesised before the
    /// deadline are kept.
    DeadlineExpired,
    /// A synthesis failed (infeasible instance, invalid k, limits expired
    /// with no design, ...). The message is the underlying error.
    Failed(String),
}

impl JobOutcome {
    /// Whether the job ran to completion.
    pub fn is_completed(&self) -> bool {
        *self == JobOutcome::Completed
    }
}

/// One synthesised k-test session inside a [`JobReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// Number of sub-test sessions `k`.
    pub k: usize,
    /// Objective value reported by the solver.
    pub objective: f64,
    /// Total design area in transistors.
    pub area: u64,
    /// Whether the ILP proved the design optimal within the job's budget.
    pub optimal: bool,
    /// Branch-and-bound nodes explored by this solve.
    pub nodes: u64,
    /// Wall-clock seconds of this solve.
    pub seconds: f64,
}

/// The structured answer for one [`SynthesisJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job's name, echoed back.
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// One row per synthesised k, ascending. Partial when the job was
    /// cancelled, deadline-capped or failed midway.
    pub rows: Vec<JobRow>,
    /// Wall-clock seconds of the whole job.
    pub seconds: f64,
    /// Whether any solve of this job captured a resumable
    /// [`SolveSnapshot`] when it stopped early. An interrupted job with
    /// snapshots enabled ([`Budget::snapshot`]) but `snapshot_captured ==
    /// false` lost no state — there was simply nothing to capture (for
    /// example the solve completed, or no incumbent existed yet).
    pub snapshot_captured: bool,
    /// Solve-cache probes this job answered from the shared [`SolveCache`]
    /// (replayed rows and resumed snapshots).
    pub cache_hits: u64,
    /// Solve-cache probes by this job that fell through to a cold solve.
    pub cache_misses: u64,
    /// Cache entries evicted while this job stored its results.
    pub cache_evictions: u64,
}

/// A submitted job's control handle: its batch index and a clone of its
/// [`CancelToken`]. Cancelling is safe from any thread, before or during
/// the run.
#[derive(Debug, Clone)]
pub struct JobHandle {
    index: usize,
    token: CancelToken,
}

impl JobHandle {
    /// Position of the job in the batch (also its index in the report
    /// vector returned by [`JobService::run`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Cancels the job: the current solve stops at its next node (keeping
    /// its best incumbent) and the remaining k values are skipped.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the job's cancellation token.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }
}

/// Aggregate counters of a [`SolveCache`]. All counters are monotone over
/// the cache's lifetime except `bytes` and `entries`, which describe the
/// current contents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (finished rows and snapshots).
    pub hits: u64,
    /// Probes that found nothing and fell through to a solve.
    pub misses: u64,
    /// Entries dropped to keep the cache under its byte budget.
    pub evictions: u64,
    /// Entries stored (including re-stores of an existing key).
    pub insertions: u64,
    /// Approximate bytes currently held.
    pub bytes: u64,
    /// Number of entries currently held.
    pub entries: u64,
}

/// What a cache entry holds: a finished, replayable result row, or the
/// resumable frontier of an interrupted solve.
#[derive(Debug, Clone)]
enum CachePayload {
    Row(JobRow),
    Snapshot(Arc<SolveSnapshot>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Row,
    Snapshot,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    /// Content fingerprint of the full per-k model
    /// ([`SynthesisEngine::model_fingerprint`]).
    fingerprint: u64,
    /// Digest of the solver configuration (branching, bounding, cuts, …)
    /// minus its budget/cancellation/warm-start slots — two jobs only share
    /// results when they would run the identical search.
    digest: u64,
    /// The per-solve node budget, for row entries: a node-limited result is
    /// only valid for the same limit. Snapshots carry `None` — a frontier
    /// is resumable under any budget.
    node_limit: Option<u64>,
    kind: EntryKind,
}

#[derive(Debug)]
struct CacheEntry {
    key: CacheKey,
    payload: CachePayload,
    bytes: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// LRU order: front = least recently used, back = most recent.
    entries: Vec<CacheEntry>,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// Approximate heap footprint charged per finished-row entry.
const ROW_ENTRY_BYTES: u64 = 96;

/// A bounded, fingerprint-keyed cache of solve results and resumable solve
/// snapshots, shared by every worker of a [`JobService`] batch. Clone the
/// [`Arc`] and pass it to several services ([`JobService::with_cache`]) to
/// share solves across batches — for example between repeated submissions
/// of overlapping k-ranges. See the [module documentation](self) for the
/// soundness rules (deterministic budgets only; hits are bit-identical).
#[derive(Debug)]
pub struct SolveCache {
    capacity: u64,
    inner: Mutex<CacheInner>,
}

impl SolveCache {
    /// Default byte budget in MiB when no job specifies
    /// [`Budget::cache_mb`].
    pub const DEFAULT_CAPACITY_MB: u64 = 64;

    /// A cache bounded at `capacity_mb` MiB of approximate entry footprint.
    /// A capacity of `0` disables storage entirely (every probe misses).
    pub fn new(capacity_mb: u64) -> Self {
        Self {
            capacity: capacity_mb.saturating_mul(1024 * 1024),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// The byte budget this cache was built with.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// A snapshot of the cache's counters and current footprint.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            insertions: inner.insertions,
            bytes: inner.bytes,
            entries: inner.entries.len() as u64,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().expect("solve cache poisoned")
    }

    /// Looks up the given instance: a finished row under this exact node
    /// limit first, then a resumable snapshot. A hit refreshes the entry's
    /// LRU position; hit/miss counters update either way.
    fn probe(
        &self,
        fingerprint: u64,
        digest: u64,
        node_limit: Option<u64>,
    ) -> Option<CachePayload> {
        let mut inner = self.lock();
        for kind in [EntryKind::Row, EntryKind::Snapshot] {
            let key = CacheKey {
                fingerprint,
                digest,
                node_limit: match kind {
                    EntryKind::Row => node_limit,
                    EntryKind::Snapshot => None,
                },
                kind,
            };
            if let Some(idx) = inner.entries.iter().position(|e| e.key == key) {
                let entry = inner.entries.remove(idx);
                let payload = entry.payload.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                return Some(payload);
            }
        }
        inner.misses += 1;
        None
    }

    /// Stores (or replaces) an entry and evicts from the cold end until the
    /// cache fits its byte budget again. Returns how many entries were
    /// evicted.
    fn insert(&self, key: CacheKey, payload: CachePayload, bytes: u64) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.lock();
        if let Some(idx) = inner.entries.iter().position(|e| e.key == key) {
            let old = inner.entries.remove(idx);
            inner.bytes -= old.bytes;
        }
        inner.entries.push(CacheEntry {
            key,
            payload,
            bytes,
        });
        inner.bytes += bytes;
        inner.insertions += 1;
        let mut evicted = 0;
        while inner.bytes > self.capacity && !inner.entries.is_empty() {
            let victim = inner.entries.remove(0);
            inner.bytes -= victim.bytes;
            inner.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    fn insert_row(
        &self,
        fingerprint: u64,
        digest: u64,
        node_limit: Option<u64>,
        row: &JobRow,
    ) -> u64 {
        let key = CacheKey {
            fingerprint,
            digest,
            node_limit,
            kind: EntryKind::Row,
        };
        self.insert(key, CachePayload::Row(row.clone()), ROW_ENTRY_BYTES)
    }

    fn insert_snapshot(&self, fingerprint: u64, digest: u64, snapshot: Arc<SolveSnapshot>) -> u64 {
        let key = CacheKey {
            fingerprint,
            digest,
            node_limit: None,
            kind: EntryKind::Snapshot,
        };
        let bytes = snapshot.approx_bytes() as u64 + 64;
        self.insert(key, CachePayload::Snapshot(snapshot), bytes)
    }

    /// Drops the snapshot for an instance once its solve has run to
    /// completion (the finished row supersedes the frontier).
    fn remove_snapshot(&self, fingerprint: u64, digest: u64) {
        let key = CacheKey {
            fingerprint,
            digest,
            node_limit: None,
            kind: EntryKind::Snapshot,
        };
        let mut inner = self.lock();
        if let Some(idx) = inner.entries.iter().position(|e| e.key == key) {
            let old = inner.entries.remove(idx);
            inner.bytes -= old.bytes;
        }
    }
}

/// 64-bit FNV-1a over a byte string, for the configuration digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of everything in the job's configuration that shapes the search
/// but is *not* covered by the model fingerprint: branching and bounding
/// rules, cut settings, presolve toggles, warm-start policy. Budget,
/// cancellation and per-call warm-start values are normalised out — the
/// budget's node limit is keyed separately, and the service never chains
/// per-call seeds.
fn config_digest(config: &SynthesisConfig) -> u64 {
    let mut solver = config.solver.clone();
    solver.budget = Budget::unlimited();
    solver.cancel = None;
    solver.initial_solution = None;
    solver.initial_solutions = Vec::new();
    solver.snapshot = false;
    solver.resume = None;
    fnv64(format!("{:?}|warm_start={}", solver, config.warm_start).as_bytes())
}

/// The job-queue front door: submit a batch, run it over a bounded worker
/// pool, get deterministic per-job reports. See the [module
/// documentation](self) for an example.
#[derive(Debug, Default)]
pub struct JobService {
    jobs: Vec<(SynthesisJob, CancelToken)>,
    max_workers: Option<usize>,
    cache: Option<Arc<SolveCache>>,
}

impl JobService {
    /// An empty service with the worker pool capped at the machine's
    /// available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the worker pool at `workers` threads (at least 1; the
    /// machine's available parallelism still applies as a second cap).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.max_workers = Some(workers.max(1));
        self
    }

    /// Shares an existing [`SolveCache`] with this batch instead of the
    /// per-run default, so repeated submissions across several
    /// [`JobService::run`] calls reuse each other's solves and snapshots.
    pub fn with_cache(mut self, cache: Arc<SolveCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enqueues a job and returns its control handle.
    pub fn submit(&mut self, job: SynthesisJob) -> JobHandle {
        let token = CancelToken::new();
        let handle = JobHandle {
            index: self.jobs.len(),
            token: token.clone(),
        };
        self.jobs.push((job, token));
        handle
    }

    /// Number of jobs currently enqueued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the whole batch and returns one report per job, in submission
    /// order regardless of thread scheduling. Jobs are independent: a
    /// failed, cancelled or deadline-capped job never affects the others.
    ///
    /// Without an explicit [`JobService::with_cache`], a fresh
    /// [`SolveCache`] is created for the batch, sized at the largest
    /// [`Budget::cache_mb`] any job requests (default
    /// [`SolveCache::DEFAULT_CAPACITY_MB`]).
    pub fn run(self) -> Vec<JobReport> {
        let workers = self.max_workers.unwrap_or(usize::MAX);
        let cache = self.cache.clone().unwrap_or_else(|| {
            let mb = self
                .jobs
                .iter()
                .filter_map(|(job, _)| job.budget.cache_mb)
                .max()
                .unwrap_or(SolveCache::DEFAULT_CAPACITY_MB);
            Arc::new(SolveCache::new(mb))
        });
        par_map_ordered_bounded(&self.jobs, workers, |(job, token)| {
            run_job(job, token, &cache)
        })
    }
}

/// Per-job bookkeeping threaded into the [`JobReport`].
#[derive(Debug, Clone, Copy, Default)]
struct JobCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    snapshot_captured: bool,
}

/// Runs one job on the calling worker thread.
fn run_job(job: &SynthesisJob, token: &CancelToken, cache: &SolveCache) -> JobReport {
    let start = Instant::now();
    let mut config = job.config.clone();
    config.solver.budget = job.budget;
    config.solver.cancel = Some(token.clone());

    let mut counters = JobCounters::default();
    // The cache is consulted only when a replayed result is provably
    // identical to a fresh solve: the budget must be deterministic (node
    // limits are part of the key; wall-clock limits and deadlines are not
    // reproducible), and the job must not have opted out.
    let cache_enabled = cache.capacity_bytes() > 0
        && job.budget.is_deterministic()
        && job.budget.cache_mb != Some(0);
    let snapshots_wanted = job.budget.snapshot == Some(true);
    let digest = config_digest(&job.config);

    let finish = |outcome: JobOutcome, rows: Vec<JobRow>, counters: JobCounters| JobReport {
        name: job.name.clone(),
        outcome,
        rows,
        seconds: start.elapsed().as_secs_f64(),
        snapshot_captured: counters.snapshot_captured,
        cache_hits: counters.hits,
        cache_misses: counters.misses,
        cache_evictions: counters.evictions,
    };

    let engine = match SynthesisEngine::new(&job.input, &config) {
        Ok(engine) => engine,
        Err(e) => return finish(JobOutcome::Failed(e.to_string()), Vec::new(), counters),
    };
    let sessions = job.sessions.clone().unwrap_or(1..=engine.max_sessions());

    let mut rows = Vec::new();
    for k in sessions {
        // Deterministic front-door checks between solves: a pre-cancelled
        // job or pre-expired deadline produces zero rows without touching
        // the solver (no timing races).
        if token.is_cancelled() {
            return finish(JobOutcome::Cancelled, rows, counters);
        }
        if job.budget.deadline_passed() {
            return finish(JobOutcome::DeadlineExpired, rows, counters);
        }

        let probe_start = Instant::now();
        let mut resume = None;
        let mut key = None;
        if cache_enabled {
            let fingerprint = match engine.model_fingerprint(k) {
                Ok(fingerprint) => fingerprint,
                Err(e) => return finish(JobOutcome::Failed(e.to_string()), rows, counters),
            };
            match cache.probe(fingerprint, digest, job.budget.node_limit) {
                Some(CachePayload::Row(row)) => {
                    counters.hits += 1;
                    rows.push(JobRow {
                        seconds: probe_start.elapsed().as_secs_f64(),
                        ..row
                    });
                    continue;
                }
                Some(CachePayload::Snapshot(snapshot)) => {
                    counters.hits += 1;
                    resume = Some(snapshot);
                }
                None => counters.misses += 1,
            }
            key = Some(fingerprint);
        }

        let resumed = resume.is_some();
        let result = if snapshots_wanted || resumed {
            engine.synthesize_resumable(k, None, resume)
        } else {
            engine.synthesize_seeded(k, None)
        };
        match result {
            Ok(outcome) => {
                let row = JobRow {
                    k,
                    objective: outcome.design.objective,
                    area: outcome.design.area.total(),
                    optimal: outcome.design.optimal,
                    nodes: outcome.design.stats.nodes,
                    seconds: outcome.seconds,
                };
                match outcome.design.snapshot {
                    // The solve stopped early with a resumable frontier:
                    // prove the snapshot round-trips through its JSON wire
                    // form *now* — a snapshot that cannot be serialized is
                    // a loud failure, not silently dropped state.
                    Some(snapshot) => match snapshot
                        .to_json()
                        .and_then(|text| SolveSnapshot::from_json(&text))
                    {
                        Ok(reparsed) => {
                            counters.snapshot_captured = true;
                            if let Some(fingerprint) = key {
                                counters.evictions +=
                                    cache.insert_snapshot(fingerprint, digest, Arc::new(reparsed));
                            }
                            rows.push(row);
                        }
                        Err(e) => {
                            rows.push(row);
                            return finish(
                                JobOutcome::Failed(format!(
                                    "snapshot serialization failed for k={k}: {e}"
                                )),
                                rows,
                                counters,
                            );
                        }
                    },
                    // Ran to the end of its (deterministic) budget: the row
                    // is replayable, and any now-stale snapshot of this
                    // instance can go.
                    None => {
                        if let Some(fingerprint) = key {
                            counters.evictions +=
                                cache.insert_row(fingerprint, digest, job.budget.node_limit, &row);
                            if resumed {
                                cache.remove_snapshot(fingerprint, digest);
                            }
                        }
                        rows.push(row);
                    }
                }
            }
            // Cancelled before any incumbent existed for this k: report
            // the job as cancelled with the rows gathered so far.
            Err(CoreError::Interrupted) => return finish(JobOutcome::Cancelled, rows, counters),
            // Limits expired with nothing in hand *because the job's
            // deadline passed mid-solve*: that is the deadline outcome,
            // not a hard failure.
            Err(CoreError::NoSolutionWithinLimits) if job.budget.deadline_passed() => {
                return finish(JobOutcome::DeadlineExpired, rows, counters)
            }
            Err(e) => return finish(JobOutcome::Failed(e.to_string()), rows, counters),
        }
    }
    finish(JobOutcome::Completed, rows, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;
    use bist_ilp::Budget;
    use std::time::Instant;

    fn exact_job(name: &str, input: SynthesisInput) -> SynthesisJob {
        SynthesisJob::new(name, input).with_config(bist_core::SynthesisConfig::exact())
    }

    #[test]
    fn batch_reproduces_the_engine_sweep_in_submission_order() {
        let input = benchmarks::figure1();
        let config = bist_core::SynthesisConfig::exact();
        let sweep = bist_core::synthesis::synthesize_all_sessions(&input, &config).unwrap();

        let mut service = JobService::new().with_workers(2);
        service.submit(exact_job("full", benchmarks::figure1()));
        service.submit(exact_job("k1-only", benchmarks::figure1()).with_sessions(1..=1));
        let reports = service.run();

        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "full");
        assert_eq!(reports[1].name, "k1-only");
        assert!(reports.iter().all(|r| r.outcome.is_completed()));

        // The full job mirrors the engine sweep row for row.
        assert_eq!(reports[0].rows.len(), sweep.len());
        for (row, design) in reports[0].rows.iter().zip(&sweep) {
            assert_eq!(row.k, design.sessions);
            assert!((row.objective - design.objective).abs() < 1e-9);
            assert_eq!(row.area, design.area.total());
            assert!(row.optimal);
        }
        // The k-restricted job produced exactly its requested row.
        assert_eq!(reports[1].rows.len(), 1);
        assert_eq!(reports[1].rows[0].k, 1);
        assert!((reports[1].rows[0].objective - sweep[0].objective).abs() < 1e-9);
    }

    #[test]
    fn pre_cancelled_job_yields_no_rows_and_spares_the_rest_of_the_batch() {
        let mut service = JobService::new().with_workers(1);
        let cancelled = service.submit(exact_job("cancelled", benchmarks::figure1()));
        let kept = service
            .submit(exact_job("kept", benchmarks::figure1()).with_budget(Budget::nodes(500)));
        cancelled.cancel();
        assert!(cancelled.token().is_cancelled());
        let reports = service.run();
        assert_eq!(reports[cancelled.index()].outcome, JobOutcome::Cancelled);
        assert!(reports[cancelled.index()].rows.is_empty());
        assert_eq!(reports[kept.index()].outcome, JobOutcome::Completed);
        assert_eq!(reports[kept.index()].rows.len(), 2);
    }

    #[test]
    fn expired_deadline_stops_a_job_before_any_solve() {
        let mut service = JobService::new();
        service.submit(
            exact_job("late", benchmarks::figure1())
                .with_budget(Budget::unlimited().with_deadline(Instant::now())),
        );
        let reports = service.run();
        assert_eq!(reports[0].outcome, JobOutcome::DeadlineExpired);
        assert!(reports[0].rows.is_empty());
    }

    #[test]
    fn warm_resubmission_replays_rows_bit_identically() {
        let cache = Arc::new(SolveCache::new(64));
        let submit = |cache: &Arc<SolveCache>| {
            let mut service = JobService::new().with_cache(cache.clone());
            service.submit(exact_job("sweep", benchmarks::figure1()));
            service.run()
        };
        let cold = submit(&cache);
        let warm = submit(&cache);

        assert_eq!(cold[0].cache_hits, 0);
        assert_eq!(cold[0].cache_misses, cold[0].rows.len() as u64);
        assert_eq!(warm[0].cache_hits, warm[0].rows.len() as u64);
        assert_eq!(warm[0].cache_misses, 0);
        assert_eq!(cold[0].rows.len(), warm[0].rows.len());
        for (a, b) in cold[0].rows.iter().zip(&warm[0].rows) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.area, b.area);
            assert_eq!(a.optimal, b.optimal);
            assert_eq!(a.nodes, b.nodes);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, warm[0].cache_hits);
        assert_eq!(stats.misses, cold[0].cache_misses);
    }

    #[test]
    fn one_coefficient_change_misses_the_cache() {
        // The cache key is the full-model content fingerprint: two models
        // colliding on every dimension but a single coefficient must not
        // share entries. Checked at the fingerprint level (the exact key)…
        use bist_ilp::{model_fingerprint, Model, Sense};
        let build = |c: f64| {
            let mut model = Model::new("probe");
            let x = model.add_binary("x");
            let y = model.add_binary("y");
            model.add_leq(vec![(x, 1.0), (y, c)], 1.0, "cap");
            model.set_objective(vec![(x, 1.0), (y, 2.0)], Sense::Maximize);
            model
        };
        assert_eq!(
            model_fingerprint(&build(1.0)),
            model_fingerprint(&build(1.0))
        );
        assert_ne!(
            model_fingerprint(&build(1.0)),
            model_fingerprint(&build(1.5))
        );

        // …and end to end: the same circuit under a different cost model
        // (different objective coefficients, identical model shape) must
        // miss a warm cache instead of replaying the other model's rows.
        use bist_datapath::CostModel;
        let cache = Arc::new(SolveCache::new(64));
        let mut first = JobService::new().with_cache(cache.clone());
        first.submit(exact_job("8bit", benchmarks::figure1()));
        first.run();
        let mut second = JobService::new().with_cache(cache.clone());
        second.submit(
            SynthesisJob::new("16bit", benchmarks::figure1()).with_config(
                bist_core::SynthesisConfig::exact().with_cost(CostModel::for_width(16)),
            ),
        );
        let reports = second.run();
        assert!(reports[0].outcome.is_completed());
        assert_eq!(reports[0].cache_hits, 0);
        assert_eq!(reports[0].cache_misses, reports[0].rows.len() as u64);
    }

    #[test]
    fn interrupted_job_snapshots_and_resubmission_resumes_exactly() {
        let input = benchmarks::figure1();
        let config = bist_core::SynthesisConfig::exact();
        let cold = bist_core::synthesis::synthesize_bist(&input, 1, &config).unwrap();
        assert!(cold.stats.nodes > 10, "instance must branch");

        let cache = Arc::new(SolveCache::new(64));
        let mut first = JobService::new().with_cache(cache.clone());
        first.submit(
            exact_job("cut", benchmarks::figure1())
                .with_sessions(1..=1)
                .with_budget(Budget::nodes(10).with_snapshot(true)),
        );
        let interrupted = first.run();
        assert!(interrupted[0].outcome.is_completed());
        assert!(interrupted[0].snapshot_captured);
        assert!(!interrupted[0].rows[0].optimal);
        assert_eq!(interrupted[0].rows[0].nodes, 10);

        // Resubmission under an open budget finds the snapshot and
        // *continues* the tree: the finished solve lands on exactly the
        // uninterrupted node count and objective.
        let mut second = JobService::new().with_cache(cache.clone());
        second.submit(exact_job("resume", benchmarks::figure1()).with_sessions(1..=1));
        let resumed = second.run();
        assert!(resumed[0].outcome.is_completed());
        assert_eq!(resumed[0].cache_hits, 1);
        assert!(!resumed[0].snapshot_captured);
        let row = &resumed[0].rows[0];
        assert!(row.optimal);
        assert_eq!(row.nodes, cold.stats.nodes);
        assert_eq!(row.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(row.area, cold.area.total());
    }

    #[test]
    fn non_deterministic_budgets_bypass_the_cache() {
        let cache = Arc::new(SolveCache::new(64));
        for _ in 0..2 {
            let mut service = JobService::new().with_cache(cache.clone());
            service.submit(
                exact_job("timed", benchmarks::figure1())
                    .with_budget(Budget::time(std::time::Duration::from_secs(30))),
            );
            let reports = service.run();
            assert!(reports[0].outcome.is_completed());
            assert_eq!(reports[0].cache_hits, 0);
            assert_eq!(reports[0].cache_misses, 0);
        }
        assert_eq!(cache.stats().entries, 0);

        // A per-job opt-out (`BIST_CACHE_MB=0`) has the same effect even
        // under a deterministic budget.
        let mut service = JobService::new().with_cache(cache.clone());
        service.submit(
            exact_job("optout", benchmarks::figure1())
                .with_budget(Budget::unlimited().with_cache_mb(0)),
        );
        let reports = service.run();
        assert_eq!(reports[0].cache_hits + reports[0].cache_misses, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_eviction_keeps_the_cache_under_its_byte_budget() {
        let cache = SolveCache {
            capacity: 3 * ROW_ENTRY_BYTES,
            inner: Mutex::new(CacheInner::default()),
        };
        let row = |k: usize| JobRow {
            k,
            objective: k as f64,
            area: k as u64,
            optimal: true,
            nodes: 1,
            seconds: 0.0,
        };
        for fingerprint in 0..3u64 {
            assert_eq!(cache.insert_row(fingerprint, 7, None, &row(1)), 0);
        }
        // Touch fingerprint 0 so 1 becomes the coldest entry…
        assert!(cache.probe(0, 7, None).is_some());
        // …then overflow: exactly one eviction, and it takes fingerprint 1.
        assert_eq!(cache.insert_row(3, 7, None, &row(1)), 1);
        assert!(cache.probe(1, 7, None).is_none());
        assert!(cache.probe(0, 7, None).is_some());
        assert!(cache.probe(3, 7, None).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
        assert!(stats.bytes <= cache.capacity_bytes());
        // Re-storing an existing key replaces it instead of growing.
        cache.insert_row(3, 7, None, &row(2));
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn invalid_session_range_fails_only_that_job() {
        let mut service = JobService::new();
        service.submit(exact_job("bad-k", benchmarks::figure1()).with_sessions(7..=7));
        service.submit(exact_job("good", benchmarks::figure1()).with_sessions(2..=2));
        let reports = service.run();
        match &reports[0].outcome {
            JobOutcome::Failed(message) => assert!(message.contains("7")),
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(reports[1].outcome.is_completed());
    }
}
