//! # advbist — built-in self-testable data path synthesis by integer linear programming
//!
//! A from-scratch Rust reproduction of *"On ILP Formulations for Built-In
//! Self-Testable Data Path Synthesis"* (Kim, Ha, Takahashi — DAC 1999).
//!
//! The crate is a thin facade over the workspace members so applications can
//! depend on a single crate:
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`ilp`] | pure-Rust branch-and-bound MILP solver (the CPLEX substitute) |
//! | [`dfg`] | scheduled data-flow graphs, lifetimes, the benchmark suite |
//! | [`datapath`] | RTL/BIST structure model, Table 1 cost model, validator |
//! | [`rtl`] | netlist emitter, Verilog writer, cycle-level BIST simulator |
//! | [`core`] | the ADVBIST ILP formulations and the reference-design ILP |
//! | [`baselines`] | the ADVAN / RALLOC / BITS comparison heuristics |
//! | [`service`] | the concurrent job-queue front door (batched synthesis with budgets, cancellation, deadlines) |
//!
//! The session-oriented solve surface — [`SolveSession`], [`Budget`],
//! [`CancelToken`], [`SolveEvent`] — is re-exported at the crate root; the
//! README's *"API: sessions, budgets, events"* section has the migration
//! table from the pre-session entry points.
//!
//! # Quick start
//!
//! ```no_run
//! use advbist::core::{reference, synthesis, SynthesisConfig};
//! use advbist::dfg::benchmarks;
//!
//! # fn main() -> Result<(), advbist::core::CoreError> {
//! let input = benchmarks::paulin();
//! let config = SynthesisConfig::default();
//! let reference = reference::synthesize_reference(&input, &config)?;
//! // One self-testable design per k-test session, k = 1..=N modules.
//! for design in synthesis::synthesize_all_sessions(&input, &config)? {
//!     println!(
//!         "k = {}: area {} transistors, overhead {:.1}%",
//!         design.sessions,
//!         design.area.total(),
//!         design.overhead_percent(reference.area.total())
//!     );
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `bist-bench` crate for the harness that regenerates every table and figure
//! of the paper's evaluation.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;

pub use bist_baselines as baselines;
pub use bist_core as core;
pub use bist_datapath as datapath;
pub use bist_dfg as dfg;
pub use bist_ilp as ilp;
pub use bist_rtl as rtl;

pub use bist_ilp::{
    model_fingerprint, Budget, BudgetError, CancelToken, SnapshotError, SolveEvent, SolveSession,
    SolveSnapshot,
};

/// The paper this workspace reproduces.
pub const PAPER: &str =
    "Kim, Ha, Takahashi: On ILP Formulations for Built-In Self-Testable Data Path Synthesis, DAC 1999";

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_usable() {
        let input = crate::dfg::benchmarks::figure1();
        assert_eq!(input.binding().num_modules(), 2);
        let cost = crate::datapath::CostModel::eight_bit();
        assert_eq!(
            cost.register_cost(crate::datapath::TestRegisterKind::Plain),
            208
        );
        assert!(crate::PAPER.contains("DAC 1999"));
    }
}
