//! BITS: Parulkar, Gupta and Breuer's sharing-driven allocation (DAC 1995).
//!
//! BITS reduces BIST area by *maximising the sharing of test registers*: the
//! same register serves as TPG or signature register for as many modules as
//! possible across sub-test sessions, so fewer registers need test circuitry
//! at all — at the price of occasionally upgrading a shared register to a
//! BILBO (or, rarely, a CBILBO) when its roles collide. Register allocation
//! itself is the standard left-edge packing.

use bist_datapath::CostModel;
use bist_datapath::Datapath;
use bist_dfg::allocate::left_edge;
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;

use crate::common::{assign_bist_roles, partition_modules, HeuristicDesign, SharingStrategy};
use crate::error::BaselineError;

/// Synthesises a BIST data path with the BITS heuristic for a k-test session.
///
/// # Errors
///
/// Returns [`BaselineError::InvalidSessionCount`] for `k` outside `1..=N`,
/// or [`BaselineError::NoFeasiblePlan`] if the greedy role assignment fails.
pub fn synthesize_bits(
    input: &SynthesisInput,
    k: usize,
    cost: &CostModel,
) -> Result<HeuristicDesign, BaselineError> {
    let num_modules = input.binding().num_modules();
    if k == 0 || k > num_modules {
        return Err(BaselineError::InvalidSessionCount {
            requested: k,
            modules: num_modules,
        });
    }
    let lifetimes = LifetimeTable::new(input)?;
    let assignment = left_edge(&lifetimes);
    let datapath = Datapath::from_register_assignment(input, &assignment, cost.width())?;
    let partition = partition_modules(num_modules, k);
    assign_bist_roles(
        datapath,
        input,
        &lifetimes,
        partition,
        SharingStrategy::MaximizeSharing,
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_datapath::validate::validate_design;
    use bist_datapath::TestRegisterKind;
    use bist_dfg::benchmarks;

    #[test]
    fn bits_produces_valid_designs_for_all_benchmarks_at_max_k() {
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let k = input.binding().num_modules();
            let design = synthesize_bits(&input, k, &cost)
                .unwrap_or_else(|e| panic!("bits failed on {name}: {e}"));
            let lifetimes = LifetimeTable::new(&input).unwrap();
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("invalid bits design on {name}: {e}"));
        }
    }

    #[test]
    fn bits_uses_no_more_distinct_test_registers_than_advan() {
        // The whole point of BITS: fewer registers carry test circuitry.
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let k = input.binding().num_modules();
            let bits = synthesize_bits(&input, k, &cost).unwrap();
            let advan = crate::advan::synthesize_advan(&input, k, &cost).unwrap();
            let count_test_regs = |d: &HeuristicDesign| {
                (0..d.datapath.num_registers())
                    .filter(|&r| d.datapath.register_kind(r) != TestRegisterKind::Plain)
                    .count()
            };
            assert!(
                count_test_regs(&bits) <= count_test_regs(&advan),
                "{name}: BITS should share test registers at least as aggressively as ADVAN"
            );
        }
    }

    #[test]
    fn bits_rejects_bad_session_counts() {
        let cost = CostModel::eight_bit();
        let input = benchmarks::figure1();
        assert!(synthesize_bits(&input, 0, &cost).is_err());
        assert!(synthesize_bits(&input, 3, &cost).is_err());
    }
}
