//! ADVAN: the authors' earlier test-session-oriented heuristic (ITC 1998).
//!
//! ADVAN never adds registers. System registers are allocated with the
//! classic left-edge algorithm (which is area-optimal in register count but
//! oblivious to multiplexer cost — exactly the weakness the concurrent ILP
//! removes), and the test registers of each sub-test session are then chosen
//! greedily so that reconfiguration cost stays low: reuse existing TPGs/SRs
//! in the same role, avoid turning a register into a BILBO or CBILBO unless
//! no alternative exists.

use bist_datapath::CostModel;
use bist_datapath::Datapath;
use bist_dfg::allocate::left_edge;
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;

use crate::common::{assign_bist_roles, partition_modules, HeuristicDesign, SharingStrategy};
use crate::error::BaselineError;

/// Synthesises a BIST data path with the ADVAN heuristic for a k-test
/// session.
///
/// # Errors
///
/// Returns [`BaselineError::InvalidSessionCount`] for `k` outside `1..=N`,
/// or [`BaselineError::NoFeasiblePlan`] if the greedy role assignment fails.
pub fn synthesize_advan(
    input: &SynthesisInput,
    k: usize,
    cost: &CostModel,
) -> Result<HeuristicDesign, BaselineError> {
    let num_modules = input.binding().num_modules();
    if k == 0 || k > num_modules {
        return Err(BaselineError::InvalidSessionCount {
            requested: k,
            modules: num_modules,
        });
    }
    let lifetimes = LifetimeTable::new(input)?;
    let assignment = left_edge(&lifetimes);
    let datapath = Datapath::from_register_assignment(input, &assignment, cost.width())?;
    let partition = partition_modules(num_modules, k);
    assign_bist_roles(
        datapath,
        input,
        &lifetimes,
        partition,
        SharingStrategy::MinimizeReconfiguration,
        cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_datapath::validate::validate_design;
    use bist_dfg::benchmarks;

    #[test]
    fn advan_produces_valid_designs_for_all_benchmarks_at_max_k() {
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let k = input.binding().num_modules();
            let design = synthesize_advan(&input, k, &cost)
                .unwrap_or_else(|e| panic!("advan failed on {name}: {e}"));
            let lifetimes = LifetimeTable::new(&input).unwrap();
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("invalid advan design on {name}: {e}"));
            assert_eq!(design.sessions, k, "{name}");
            assert!(design.area.total() > 0, "{name}");
        }
    }

    #[test]
    fn advan_never_adds_registers() {
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let lifetimes = LifetimeTable::new(&input).unwrap();
            let k = input.binding().num_modules();
            let design = synthesize_advan(&input, k, &cost).unwrap();
            assert_eq!(
                design.datapath.num_registers(),
                lifetimes.min_registers(),
                "{name}"
            );
        }
    }

    #[test]
    fn advan_rejects_bad_session_counts() {
        let cost = CostModel::eight_bit();
        let input = benchmarks::figure1();
        assert!(synthesize_advan(&input, 0, &cost).is_err());
        assert!(synthesize_advan(&input, 10, &cost).is_err());
    }

    #[test]
    fn fewer_sessions_never_reduce_test_hardware() {
        // With k = 1 everything is tested at once, which needs at least as
        // many simultaneously active test registers as k = N.
        let cost = CostModel::eight_bit();
        let input = benchmarks::figure1();
        let k1 = synthesize_advan(&input, 1, &cost).unwrap();
        let kmax = synthesize_advan(&input, 2, &cost).unwrap();
        assert!(k1.area.total() >= kmax.area.total() - 1);
    }
}
