//! Error type for the heuristic baseline methods.

use std::fmt;

use bist_datapath::DatapathError;
use bist_dfg::DfgError;

/// Errors raised by the heuristic synthesis baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The scheduled DFG input is inconsistent.
    Dfg(DfgError),
    /// The produced design failed validation (indicates a heuristic bug).
    Datapath(DatapathError),
    /// The requested number of sub-test sessions is outside `1..=N`.
    InvalidSessionCount {
        /// Requested k.
        requested: usize,
        /// Number of modules N.
        modules: usize,
    },
    /// The heuristic could not build a feasible test plan (for example, a
    /// sub-test session needs more distinct signature registers than exist).
    NoFeasiblePlan {
        /// Explanation of what could not be satisfied.
        reason: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Dfg(e) => write!(f, "invalid synthesis input: {e}"),
            BaselineError::Datapath(e) => write!(f, "baseline produced an invalid design: {e}"),
            BaselineError::InvalidSessionCount { requested, modules } => write!(
                f,
                "requested {requested} sub-test sessions but the design has {modules} modules"
            ),
            BaselineError::NoFeasiblePlan { reason } => {
                write!(f, "heuristic found no feasible test plan: {reason}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<DfgError> for BaselineError {
    fn from(e: DfgError) -> Self {
        BaselineError::Dfg(e)
    }
}

impl From<DatapathError> for BaselineError {
    fn from(e: DatapathError) -> Self {
        BaselineError::Datapath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = DfgError::Cyclic.into();
        assert!(e.to_string().contains("cycle"));
        let e = BaselineError::NoFeasiblePlan {
            reason: "not enough signature registers".into(),
        };
        assert!(e.to_string().contains("signature"));
    }
}
