//! Shared machinery of the heuristic baselines: greedy BIST-role assignment
//! over an existing data path, and the result container.

use bist_datapath::cost::{AreaBreakdown, CostModel};
use bist_datapath::interconnect::ModulePort;
use bist_datapath::test_plan::{TestPlan, TpgSource};
use bist_datapath::validate::validate_design;
use bist_datapath::Datapath;
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;

use crate::error::BaselineError;

/// How a heuristic chooses test registers when several candidates exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingStrategy {
    /// Minimise reconfiguration cost: reuse a register *in the same role*
    /// when possible and avoid mixing TPG and SR roles on one register
    /// (which would force a BILBO). This is the ADVAN-style policy.
    MinimizeReconfiguration,
    /// Maximise test-register sharing: prefer any register that is already a
    /// test register, even if that mixes roles and upgrades it to a BILBO.
    /// This is the BITS-style policy.
    MaximizeSharing,
}

/// The output of a heuristic baseline, mirroring `bist_core::BistDesign`.
#[derive(Debug, Clone)]
pub struct HeuristicDesign {
    /// The data path with register kinds applied.
    pub datapath: Datapath,
    /// The k-test-session plan.
    pub plan: TestPlan,
    /// Area breakdown under the supplied cost model.
    pub area: AreaBreakdown,
    /// Number of sub-test sessions.
    pub sessions: usize,
}

impl HeuristicDesign {
    /// Area overhead in percent against a reference area.
    pub fn overhead_percent(&self, reference_area: u64) -> f64 {
        self.area.overhead_percent(reference_area)
    }

    /// Packages the design as a Table-3-style report row.
    pub fn report(
        &self,
        method: &str,
        circuit: &str,
        reference_area: u64,
    ) -> bist_datapath::report::DesignReport {
        bist_datapath::report::DesignReport {
            method: method.to_string(),
            circuit: circuit.to_string(),
            test_sessions: self.sessions,
            breakdown: self.area.clone(),
            reference_area,
        }
    }
}

/// Splits the modules into `k` sub-test sessions (round-robin), the simple
/// partition the heuristic baselines use.
pub(crate) fn partition_modules(num_modules: usize, k: usize) -> Vec<Vec<usize>> {
    let mut sessions = vec![Vec::new(); k];
    for m in 0..num_modules {
        sessions[m % k].push(m);
    }
    sessions
}

/// Greedily assigns signature registers and TPGs for every module of a data
/// path, then applies the induced register kinds and validates the design.
///
/// `session_partition` lists the modules of each sub-test session.
///
/// # Errors
///
/// Returns [`BaselineError::NoFeasiblePlan`] when a sub-test session cannot
/// get distinct signature registers, or a validation error if the produced
/// plan is inconsistent (a bug).
pub(crate) fn assign_bist_roles(
    mut datapath: Datapath,
    input: &SynthesisInput,
    lifetimes: &LifetimeTable,
    session_partition: Vec<Vec<usize>>,
    strategy: SharingStrategy,
    cost: &CostModel,
) -> Result<HeuristicDesign, BaselineError> {
    let k = session_partition.len();
    let mut plan = TestPlan::with_sessions(k);

    // Roles accumulated so far, for the sharing preferences.
    let mut is_tpg = vec![false; datapath.num_registers()];
    let mut is_sr = vec![false; datapath.num_registers()];

    for (p, modules) in session_partition.iter().enumerate() {
        let mut srs_this_session: Vec<usize> = Vec::new();
        for &m in modules {
            // ---------------- signature register ----------------
            let candidates: Vec<usize> = datapath
                .interconnect()
                .registers_driven_by_module(m)
                .into_iter()
                .filter(|r| !srs_this_session.contains(r))
                .collect();
            let sr = choose_sr(&candidates, &is_tpg, &is_sr, strategy).ok_or_else(|| {
                BaselineError::NoFeasiblePlan {
                    reason: format!("module {m} has no free signature register in sub-session {p}"),
                }
            })?;
            srs_this_session.push(sr);
            is_sr[sr] = true;
            plan.sessions[p].modules.push(m);
            plan.sessions[p].sr.insert(m, sr);

            // ---------------- test pattern generators ----------------
            let num_inputs = datapath.modules()[m].num_inputs;
            let mut used_for_this_module: Vec<usize> = Vec::new();
            for port in 0..num_inputs {
                let drivers = datapath
                    .interconnect()
                    .registers_driving_port(ModulePort { module: m, port });
                if drivers.is_empty() {
                    // Constant-only port: dedicated generator (Section 3.3.4).
                    plan.sessions[p]
                        .tpg
                        .insert((m, port), TpgSource::ConstantGenerator);
                    continue;
                }
                let candidates: Vec<usize> = drivers
                    .into_iter()
                    .filter(|r| !used_for_this_module.contains(r))
                    .collect();
                match choose_tpg(&candidates, sr, &is_tpg, &is_sr, strategy) {
                    Some(tpg) => {
                        used_for_this_module.push(tpg);
                        is_tpg[tpg] = true;
                        plan.sessions[p]
                            .tpg
                            .insert((m, port), TpgSource::Register(tpg));
                    }
                    None => {
                        // Every driver is already taken by the other port of
                        // this module: fall back to a dedicated generator.
                        plan.sessions[p]
                            .tpg
                            .insert((m, port), TpgSource::ConstantGenerator);
                    }
                }
            }
        }
    }

    plan.apply_register_kinds(&mut datapath);
    validate_design(&datapath, &plan, input, lifetimes)?;
    let area = datapath.area(cost);
    Ok(HeuristicDesign {
        datapath,
        plan,
        area,
        sessions: k,
    })
}

fn choose_sr(
    candidates: &[usize],
    is_tpg: &[bool],
    is_sr: &[bool],
    strategy: SharingStrategy,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let score = |r: usize| -> (i32, usize) {
        match strategy {
            SharingStrategy::MinimizeReconfiguration => {
                // Best: already an SR (free). Then: a fresh register that is
                // not a TPG (plain -> SR). Worst: a TPG (creates a BILBO).
                let class = if is_sr[r] {
                    0
                } else if !is_tpg[r] {
                    1
                } else {
                    2
                };
                (class, r)
            }
            SharingStrategy::MaximizeSharing => {
                // Best: any existing test register; new test registers last.
                let class = if is_sr[r] {
                    0
                } else if is_tpg[r] {
                    1
                } else {
                    2
                };
                (class, r)
            }
        }
    };
    candidates.iter().copied().min_by_key(|&r| score(r))
}

fn choose_tpg(
    candidates: &[usize],
    module_sr: usize,
    is_tpg: &[bool],
    is_sr: &[bool],
    strategy: SharingStrategy,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let score = |r: usize| -> (i32, usize) {
        match strategy {
            SharingStrategy::MinimizeReconfiguration => {
                // Avoid the module's own SR at all cost (would need a
                // CBILBO), avoid SRs of other modules (BILBO), prefer
                // existing TPGs, then plain registers.
                let class = if r == module_sr {
                    4
                } else if is_sr[r] {
                    3
                } else if is_tpg[r] {
                    0
                } else {
                    1
                };
                (class, r)
            }
            SharingStrategy::MaximizeSharing => {
                // Prefer existing test registers; still avoid the module's
                // own SR unless nothing else exists (CBILBO is expensive even
                // for a sharing-focused method).
                let class = if r == module_sr {
                    4
                } else if is_tpg[r] {
                    0
                } else if is_sr[r] {
                    1
                } else {
                    2
                };
                (class, r)
            }
        }
    };
    candidates.iter().copied().min_by_key(|&r| score(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced_and_covers_all_modules() {
        let parts = partition_modules(5, 2);
        assert_eq!(parts.len(), 2);
        let mut all: Vec<usize> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        // Maximal k: one module per session.
        let parts = partition_modules(3, 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn sr_choice_respects_strategy() {
        // Register 1 is already a TPG, register 2 already an SR.
        let is_tpg = vec![false, true, false];
        let is_sr = vec![false, false, true];
        let candidates = vec![0, 1, 2];
        assert_eq!(
            choose_sr(
                &candidates,
                &is_tpg,
                &is_sr,
                SharingStrategy::MinimizeReconfiguration
            ),
            Some(2)
        );
        assert_eq!(
            choose_sr(
                &candidates,
                &is_tpg,
                &is_sr,
                SharingStrategy::MaximizeSharing
            ),
            Some(2)
        );
        // Without an existing SR, the minimiser avoids the TPG; the sharer
        // picks it.
        let candidates = vec![0, 1];
        assert_eq!(
            choose_sr(
                &candidates,
                &is_tpg,
                &is_sr,
                SharingStrategy::MinimizeReconfiguration
            ),
            Some(0)
        );
        assert_eq!(
            choose_sr(
                &candidates,
                &is_tpg,
                &is_sr,
                SharingStrategy::MaximizeSharing
            ),
            Some(1)
        );
    }

    #[test]
    fn tpg_choice_avoids_the_module_sr() {
        let is_tpg = vec![false, false, false];
        let is_sr = vec![false, false, false];
        let candidates = vec![0, 1];
        // Register 0 is the module's SR: both strategies pick register 1.
        for strategy in [
            SharingStrategy::MinimizeReconfiguration,
            SharingStrategy::MaximizeSharing,
        ] {
            assert_eq!(
                choose_tpg(&candidates, 0, &is_tpg, &is_sr, strategy),
                Some(1)
            );
        }
        // If the SR is the only candidate it is still returned (CBILBO).
        assert_eq!(
            choose_tpg(
                &[0],
                0,
                &is_tpg,
                &is_sr,
                SharingStrategy::MinimizeReconfiguration
            ),
            Some(0)
        );
    }

    #[test]
    fn empty_candidate_lists_return_none() {
        assert_eq!(
            choose_sr(&[], &[], &[], SharingStrategy::MaximizeSharing),
            None
        );
        assert_eq!(
            choose_tpg(&[], 0, &[], &[], SharingStrategy::MaximizeSharing),
            None
        );
    }
}
