//! RALLOC: Avra's self-adjacency-avoiding register allocation (ITC 1991).
//!
//! A register is *self-adjacent* with respect to a module when it both feeds
//! an input port of that module and receives the module's output. During
//! parallel BIST a self-adjacent register has to generate patterns and
//! compact responses for the same module at the same time, which forces an
//! expensive CBILBO (or at least a BILBO). RALLOC therefore colours the
//! register conflict graph so that self-adjacency is avoided whenever
//! possible, and accepts **one extra register** beyond the minimum when the
//! interval structure leaves no self-adjacency-free packing — exactly the
//! behaviour Table 3 of the paper shows (RALLOC uses an additional register
//! for fir6, iir3 and wavelet6).

use std::collections::BTreeSet;

use bist_datapath::CostModel;
use bist_datapath::Datapath;
use bist_dfg::allocate::RegisterAssignment;
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::{SynthesisInput, VarId};

use crate::common::{assign_bist_roles, partition_modules, HeuristicDesign, SharingStrategy};
use crate::error::BaselineError;

/// Synthesises a BIST data path with the RALLOC heuristic for a k-test
/// session.
///
/// # Errors
///
/// Returns [`BaselineError::InvalidSessionCount`] for `k` outside `1..=N`,
/// or [`BaselineError::NoFeasiblePlan`] if the greedy role assignment fails.
pub fn synthesize_ralloc(
    input: &SynthesisInput,
    k: usize,
    cost: &CostModel,
) -> Result<HeuristicDesign, BaselineError> {
    let num_modules = input.binding().num_modules();
    if k == 0 || k > num_modules {
        return Err(BaselineError::InvalidSessionCount {
            requested: k,
            modules: num_modules,
        });
    }
    let lifetimes = LifetimeTable::new(input)?;
    let assignment = allocate_avoiding_self_adjacency(input, &lifetimes);
    let datapath = Datapath::from_register_assignment(input, &assignment, cost.width())?;
    let partition = partition_modules(num_modules, k);
    assign_bist_roles(
        datapath,
        input,
        &lifetimes,
        partition,
        SharingStrategy::MinimizeReconfiguration,
        cost,
    )
}

/// Modules whose input ports read a variable, and the module producing it.
fn fan_modules(input: &SynthesisInput, var: VarId) -> (BTreeSet<usize>, Option<usize>) {
    let dfg = input.dfg();
    let consumers: BTreeSet<usize> = dfg
        .consumers(var)
        .into_iter()
        .map(|(op, _)| input.module_of(op).index())
        .collect();
    let producer = dfg.producer(var).map(|op| input.module_of(op).index());
    (consumers, producer)
}

/// Greedy interval colouring that penalises self-adjacency and allows at most
/// one register beyond the lower bound when avoidance is otherwise
/// impossible.
pub(crate) fn allocate_avoiding_self_adjacency(
    input: &SynthesisInput,
    lifetimes: &LifetimeTable,
) -> RegisterAssignment {
    let min_registers = lifetimes.min_registers();
    let max_registers = min_registers + 1;

    // Per register: the modules it feeds and the modules that feed it, plus
    // the death boundary of its latest occupant for interval packing.
    #[derive(Default, Clone)]
    struct RegState {
        feeds: BTreeSet<usize>,
        fed_by: BTreeSet<usize>,
        occupants: Vec<VarId>,
    }
    let mut regs: Vec<RegState> = Vec::new();
    let mut register_of = vec![None; lifetimes.num_vars()];

    let mut vars = lifetimes.register_vars();
    vars.sort_by_key(|&v| {
        let lt = lifetimes.lifetime(v).expect("register variable");
        (lt.birth, lt.death, v.index())
    });

    for v in vars {
        let (consumers, producer) = fan_modules(input, v);
        // Candidate registers: no lifetime conflict with current occupants.
        let mut best: Option<(usize, usize)> = None; // (self-adjacency score, register)
        for (r, state) in regs.iter().enumerate() {
            let conflict = state
                .occupants
                .iter()
                .any(|&other| lifetimes.conflicts(v, other));
            if conflict {
                continue;
            }
            // Self-adjacencies created by placing v into r: modules that
            // would then appear both in `feeds` and `fed_by`.
            let mut feeds = state.feeds.clone();
            feeds.extend(consumers.iter().copied());
            let mut fed_by = state.fed_by.clone();
            if let Some(p) = producer {
                fed_by.insert(p);
            }
            let score = feeds.intersection(&fed_by).count();
            if best.map(|(s, _)| score < s).unwrap_or(true) {
                best = Some((score, r));
            }
        }

        let open_new = match best {
            None => true,
            // A packing that creates self-adjacency is only accepted when the
            // register budget (minimum + 1) is exhausted.
            Some((score, _)) => score > 0 && regs.len() < max_registers,
        };

        let r = if open_new && regs.len() < max_registers {
            regs.push(RegState::default());
            regs.len() - 1
        } else {
            best.expect("a compatible register exists within the budget")
                .1
        };

        regs[r].occupants.push(v);
        regs[r].feeds.extend(consumers);
        if let Some(p) = producer {
            regs[r].fed_by.insert(p);
        }
        register_of[v.index()] = Some(r);
    }

    RegisterAssignment::from_parts(register_of, regs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_datapath::validate::validate_design;
    use bist_dfg::benchmarks;

    #[test]
    fn ralloc_produces_valid_designs_for_all_benchmarks_at_max_k() {
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let k = input.binding().num_modules();
            let design = synthesize_ralloc(&input, k, &cost)
                .unwrap_or_else(|e| panic!("ralloc failed on {name}: {e}"));
            let lifetimes = LifetimeTable::new(&input).unwrap();
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("invalid ralloc design on {name}: {e}"));
        }
    }

    #[test]
    fn ralloc_adds_at_most_one_register() {
        let cost = CostModel::eight_bit();
        for (name, input) in benchmarks::all() {
            let lifetimes = LifetimeTable::new(&input).unwrap();
            let k = input.binding().num_modules();
            let design = synthesize_ralloc(&input, k, &cost).unwrap();
            let used = design.datapath.num_registers();
            let min = lifetimes.min_registers();
            assert!(
                used == min || used == min + 1,
                "{name}: ralloc used {used} registers (minimum {min})"
            );
        }
    }

    #[test]
    fn allocation_is_always_a_valid_packing() {
        for (name, input) in benchmarks::all() {
            let lifetimes = LifetimeTable::new(&input).unwrap();
            let assignment = allocate_avoiding_self_adjacency(&input, &lifetimes);
            assert!(assignment.is_valid(&lifetimes), "{name}");
            for v in lifetimes.register_vars() {
                assert!(assignment.register_of(v).is_some(), "{name}");
            }
        }
    }

    #[test]
    fn ralloc_rejects_bad_session_counts() {
        let cost = CostModel::eight_bit();
        let input = benchmarks::figure1();
        assert!(synthesize_ralloc(&input, 0, &cost).is_err());
        assert!(synthesize_ralloc(&input, 3, &cost).is_err());
    }
}
