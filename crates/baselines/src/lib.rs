//! # bist-baselines — the heuristic BIST synthesis methods of the DAC'99 comparison
//!
//! The paper compares ADVBIST against three earlier high-level BIST synthesis
//! systems (Table 3):
//!
//! * **ADVAN** — the authors' earlier test-session-oriented heuristic
//!   (Kim/Takahashi/Ha, ITC 1998): registers are allocated with the classic
//!   left-edge algorithm (ignoring multiplexer cost), then test registers are
//!   chosen greedily so that reconfiguration cost is minimised and no extra
//!   registers are added.
//! * **RALLOC** — Avra's allocation method (ITC 1991): register allocation is
//!   driven by a register conflict graph that avoids *self-adjacent*
//!   registers (a register that both feeds and is fed by the same module
//!   would need a costly BILBO/CBILBO); an extra register is added when
//!   avoidance is otherwise impossible.
//! * **BITS** — Parulkar/Gupta/Breuer's method (DAC 1995): test-register
//!   *sharing* is maximised, i.e. the same few registers are reused as TPG or
//!   signature register for as many modules as possible, even when that
//!   upgrades them to BILBOs.
//!
//! The original implementations are not available; these are re-implementations
//! of the published algorithmic ideas at the level of detail the Table 3
//! comparison requires (see DESIGN.md). All three produce the same
//! [`bist_datapath::Datapath`] + [`bist_datapath::TestPlan`] structures as
//! ADVBIST and are checked by the same validator, so the area comparison is
//! apples-to-apples.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advan;
pub mod bits;
pub mod common;
pub mod error;
pub mod ralloc;

pub use advan::synthesize_advan;
pub use bits::synthesize_bits;
pub use common::{HeuristicDesign, SharingStrategy};
pub use error::BaselineError;
pub use ralloc::synthesize_ralloc;
