//! Offline stand-in for the [criterion.rs](https://github.com/bheisler/criterion.rs)
//! benchmark harness.
//!
//! The build container has no access to a crate registry, so the real
//! `criterion` cannot be vendored. This shim implements the small API
//! surface the `bist-bench` benchmarks use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`
//! and `criterion_main!` — with a simple warmup-free timing loop that
//! reports the median and spread of the per-iteration wall-clock time.
//! Swapping the workspace `criterion` entry back to the real crate requires
//! no source changes in the benchmarks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records one wall-clock sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim derives its budget from the
    /// sample count alone.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{label:<50} median {:>12.3?}  [{:>10.3?} .. {:>10.3?}]  ({} samples)",
            median,
            min,
            max,
            samples.len()
        );
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into a
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: expands to `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 10);
    }

    #[test]
    fn groups_compose_labels() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", "p"), &7usize, |b, &seven| {
            b.iter(|| {
                runs += seven;
            })
        });
        group.finish();
        assert_eq!(runs, 21);
    }
}
