//! Simulation-backed validation: prove every sub-test session actually
//! tests its modules.
//!
//! `bist_datapath::validate` checks the *structural* BIST rules of the
//! paper (TPG on every port, unique signature registers, register kinds
//! sufficient for their roles). This pass goes further: it emits the
//! netlist, runs the cycle-level simulator and fails unless
//!
//! 1. every module under test is compacted for the full session length and
//!    sees a genuinely varying pattern stream (no stuck or short-cycled
//!    generator),
//! 2. a single-bit fault injected at each module's output provably changes
//!    its final MISR signature (observability — the response really reaches
//!    the signature register through the programmed mux routes), and
//! 3. two identical runs produce bit-identical signatures (determinism, the
//!    property the committed golden files rely on).

use bist_datapath::{Datapath, TestPlan};

use crate::emit::emit_bist_netlist;
use crate::error::RtlError;
use crate::sim::{simulate, simulate_session_with_fault, SimConfig, SimReport};

/// Emits and simulates the design, failing unless every scheduled module is
/// demonstrably exercised and observed. Returns the fault-free report (with
/// per-module coverage and final signatures) on success.
///
/// # Errors
///
/// Any emission error ([`RtlError::Datapath`],
/// [`RtlError::TestPathNotRoutable`]), plus
/// [`RtlError::ModuleNotExercised`], [`RtlError::FaultNotObserved`] or
/// [`RtlError::UnstableSignature`] when the simulated behaviour falls short
/// of the plan's claims.
pub fn validate_simulated(
    datapath: &Datapath,
    plan: &TestPlan,
    config: &SimConfig,
) -> Result<SimReport, RtlError> {
    let netlist = emit_bist_netlist(datapath, plan)?;
    let report = simulate(&netlist, config)?;
    let rerun = simulate(&netlist, config)?;

    // Determinism: identical runs, identical signatures.
    for (first, second) in report.sessions.iter().zip(rerun.sessions.iter()) {
        for (&register, &signature) in &first.signatures {
            let again = second
                .signatures
                .get(&register)
                .copied()
                .unwrap_or(!signature);
            if again != signature {
                return Err(RtlError::UnstableSignature {
                    register,
                    session: first.session,
                    first: signature,
                    second: again,
                });
            }
        }
    }

    // A pattern stream shorter than the LFSR period must be (almost) all
    // distinct; past the period it can only repeat, so cap the expectation.
    let period = (1u64 << netlist.width()) - 1;
    for (s, session) in plan.sessions.iter().enumerate() {
        let simulated = &report.sessions[s];
        for &module in &session.modules {
            let coverage = simulated
                .coverage
                .iter()
                .find(|c| c.module == module)
                .copied()
                .unwrap_or(crate::sim::ModuleCoverage {
                    module,
                    signature_register: usize::MAX,
                    cycles_active: 0,
                    distinct_patterns: 0,
                });
            let expected = coverage.cycles_active.min(period);
            if coverage.cycles_active < config.cycles || coverage.distinct_patterns * 2 <= expected
            {
                return Err(RtlError::ModuleNotExercised {
                    module,
                    session: s,
                    cycles: coverage.cycles_active,
                    distinct_patterns: coverage.distinct_patterns,
                });
            }

            // Observability: a fault at the module output must disturb the
            // signature of its signature register.
            let register = coverage.signature_register;
            let faulty = simulate_session_with_fault(&netlist, s, module, config)?;
            let clean_signature = simulated.signatures.get(&register).copied();
            if faulty.signatures.get(&register).copied() == clean_signature {
                return Err(RtlError::FaultNotObserved {
                    module,
                    session: s,
                    register,
                });
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_datapath::{ModulePort, TestRegisterKind, TpgSource};
    use bist_dfg::allocate::left_edge;
    use bist_dfg::benchmarks;
    use bist_dfg::lifetime::LifetimeTable;

    fn figure1() -> Datapath {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        Datapath::from_register_assignment(&input, &assignment, 8).unwrap()
    }

    /// A plan that tests each module in its own sub-session, picking wired
    /// registers for every role (so the routes exist by construction).
    fn one_module_per_session_plan(dp: &Datapath) -> TestPlan {
        let mut plan = TestPlan::with_sessions(dp.num_modules());
        for m in 0..dp.num_modules() {
            plan.sessions[m].modules.push(m);
            for port in 0..dp.modules()[m].num_inputs {
                let p = ModulePort { module: m, port };
                let drivers = dp.interconnect().registers_driving_port(p);
                let source = match drivers.first() {
                    Some(&r) => TpgSource::Register(r),
                    None => TpgSource::ConstantGenerator,
                };
                plan.sessions[m].tpg.insert((m, port), source);
            }
            let sr = dp.interconnect().registers_driven_by_module(m)[0];
            plan.sessions[m].sr.insert(m, sr);
        }
        plan
    }

    #[test]
    fn figure1_hand_plan_passes_simulated_validation() {
        let mut dp = figure1();
        let plan = one_module_per_session_plan(&dp);
        plan.apply_register_kinds(&mut dp);
        let report = validate_simulated(&dp, &plan, &SimConfig::default()).unwrap();
        assert_eq!(report.sessions.len(), dp.num_modules());
        for (s, session) in plan.sessions.iter().enumerate() {
            let simulated = &report.sessions[s];
            for &m in &session.modules {
                let cov = simulated.coverage.iter().find(|c| c.module == m).unwrap();
                assert_eq!(cov.cycles_active, 64);
                assert!(cov.distinct_patterns > 32);
            }
            assert!(!simulated.signatures.is_empty());
        }
    }

    #[test]
    fn zero_cycle_budget_fails_exercise_check() {
        let mut dp = figure1();
        let plan = one_module_per_session_plan(&dp);
        plan.apply_register_kinds(&mut dp);
        let config = SimConfig {
            cycles: 0,
            ..SimConfig::default()
        };
        let err = validate_simulated(&dp, &plan, &config).unwrap_err();
        assert!(matches!(err, RtlError::ModuleNotExercised { .. }), "{err}");
    }

    #[test]
    fn plain_register_in_a_test_role_fails() {
        let mut dp = figure1();
        let plan = one_module_per_session_plan(&dp);
        plan.apply_register_kinds(&mut dp);
        // Sabotage: strip the kind from one TPG register.
        let tpg = plan.sessions[0].tpg_registers()[0];
        dp.set_register_kind(tpg, TestRegisterKind::Plain);
        let err = validate_simulated(&dp, &plan, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, RtlError::TestPathNotRoutable { .. }), "{err}");
    }
}
