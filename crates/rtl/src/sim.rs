//! Cycle-level simulation of a BIST netlist.
//!
//! For each sub-test session the simulator configures every register into
//! its session mode (hold / LFSR generate / MISR compact / CBILBO both),
//! applies the session's mux selects and port overrides, and runs a fixed
//! number of clock cycles of bit-true evaluation: LFSR states drive the
//! ports of the modules under test, module outputs are folded into the MISR
//! signatures. The report records, per module under test, how many cycles it
//! was actually compacted and how many *distinct* input patterns it saw —
//! the raw material for [`crate::validate::validate_simulated`]'s claim that
//! every session genuinely tests its modules.
//!
//! The simulator is fully deterministic: seeds derive from the config and
//! cell indices only, so two runs over structurally identical netlists
//! always produce identical signatures.

use std::collections::{BTreeMap, BTreeSet};

use bist_dfg::ModuleClass;

use crate::error::RtlError;
use crate::lfsr::{Lfsr, LfsrSpec, Misr};
use crate::netlist::{Driver, NetRef, Netlist, RegisterMode};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Clock cycles per sub-test session.
    pub cycles: u64,
    /// Base seed all per-cell LFSR seeds derive from.
    pub seed: u64,
    /// Feedback polynomial override; `None` picks
    /// [`LfsrSpec::maximal`] for the netlist width.
    pub spec: Option<LfsrSpec>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cycles: 64,
            seed: 1,
            spec: None,
        }
    }
}

/// How thoroughly one module under test was exercised in its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleCoverage {
    /// Module index.
    pub module: usize,
    /// The register compacting this module's responses.
    pub signature_register: usize,
    /// Cycles the module's output was captured by its signature register.
    pub cycles_active: u64,
    /// Distinct input-pattern tuples applied over those cycles.
    pub distinct_patterns: u64,
}

/// The outcome of simulating one sub-test session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Sub-test session index.
    pub session: usize,
    /// Cycles simulated.
    pub cycles: u64,
    /// Per-module-under-test coverage, in ascending module order.
    pub coverage: Vec<ModuleCoverage>,
    /// Final MISR signature of every signature register (register → value).
    pub signatures: BTreeMap<usize, u64>,
}

/// The outcome of simulating every sub-test session of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// [`Netlist::fingerprint`] of the simulated netlist.
    pub fingerprint: u64,
    /// One report per sub-test session, in plan order.
    pub sessions: Vec<SessionReport>,
}

/// Simulates every sub-test session of the netlist, fault-free.
///
/// # Errors
///
/// [`RtlError::UnsupportedWidth`] when no default polynomial exists for the
/// netlist width, or [`RtlError::InvalidPolynomial`] when a config override
/// does not match the netlist width.
pub fn simulate(netlist: &Netlist, config: &SimConfig) -> Result<SimReport, RtlError> {
    let spec = resolve_spec(netlist, config)?;
    let sessions = (0..netlist.sessions().len())
        .map(|s| run_session(netlist, s, spec, config, None))
        .collect::<Vec<_>>();
    Ok(SimReport {
        fingerprint: netlist.fingerprint(),
        sessions,
    })
}

/// Simulates one sub-test session with a single-bit fault injected at
/// `module`'s output on cycle 0. Because the MISR is linear, a correctly
/// routed session *must* end with a different signature than the fault-free
/// run — [`crate::validate::validate_simulated`] uses exactly this to prove
/// observability.
///
/// # Errors
///
/// Polynomial resolution errors as in [`simulate`]; `session` out of range
/// yields [`RtlError::TestPathNotRoutable`].
pub fn simulate_session_with_fault(
    netlist: &Netlist,
    session: usize,
    module: usize,
    config: &SimConfig,
) -> Result<SessionReport, RtlError> {
    let spec = resolve_spec(netlist, config)?;
    if session >= netlist.sessions().len() {
        return Err(RtlError::TestPathNotRoutable {
            description: format!("sub-session {session} does not exist"),
        });
    }
    Ok(run_session(netlist, session, spec, config, Some(module)))
}

fn resolve_spec(netlist: &Netlist, config: &SimConfig) -> Result<LfsrSpec, RtlError> {
    let spec = match config.spec {
        Some(spec) => spec,
        None => LfsrSpec::maximal(netlist.width())?,
    };
    if spec.width() != netlist.width() {
        return Err(RtlError::InvalidPolynomial {
            width: netlist.width(),
            taps: spec.taps(),
        });
    }
    Ok(spec)
}

/// Derives a deterministic non-zero seed for cell `index` from the base seed.
fn seed_for(base: u64, index: u64, mask: u64) -> u64 {
    let mixed = (base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index + 1)) & mask;
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// Bit-true evaluation of one functional module, masked to the data width.
fn eval_module(class: ModuleClass, inputs: &[u64], width: u32, mask: u64) -> u64 {
    let a = inputs.first().copied().unwrap_or(0) & mask;
    let b = inputs.get(1).copied().unwrap_or(0) & mask;
    let value = match class {
        ModuleClass::Adder => a.wrapping_add(b),
        ModuleClass::Subtractor => a.wrapping_sub(b),
        // The combined add/sub/compare unit: fold both datapath results so
        // faults in either half disturb the output.
        ModuleClass::Alu => a.wrapping_add(b) ^ a.wrapping_sub(b),
        ModuleClass::Multiplier => a.wrapping_mul(b),
        ModuleClass::Divider => a.checked_div(b).unwrap_or(mask),
        ModuleClass::Comparator => u64::from(a < b),
        ModuleClass::Logic => a ^ b,
        ModuleClass::Shifter => a << (b % u64::from(width)),
    };
    value & mask
}

/// Per-register sequential state during one session.
struct RegisterState {
    mode: RegisterMode,
    held: u64,
    generator: Option<Lfsr>,
    compactor: Option<Misr>,
}

fn run_session(
    netlist: &Netlist,
    s: usize,
    spec: LfsrSpec,
    config: &SimConfig,
    fault_module: Option<usize>,
) -> SessionReport {
    let control = &netlist.sessions()[s];
    let mask = spec.mask();
    let width = netlist.width();

    let mut regs: Vec<RegisterState> = netlist
        .registers()
        .iter()
        .enumerate()
        .map(|(r, _)| {
            let mode = control.modes[r];
            let generates = matches!(mode, RegisterMode::Generate | RegisterMode::GenerateCompact);
            let compacts = matches!(mode, RegisterMode::Compact | RegisterMode::GenerateCompact);
            RegisterState {
                mode,
                held: (r as u64 + 1) & mask,
                generator: generates
                    .then(|| Lfsr::new(spec, seed_for(config.seed, r as u64, mask))),
                compactor: compacts.then(|| Misr::new(spec)),
            }
        })
        .collect();

    // Dedicated generators active in this session, seeded after the
    // registers so no two pattern sources share a seed.
    let reg_count = netlist.registers().len() as u64;
    let mut generator_cells: Vec<Option<Lfsr>> = netlist
        .generators()
        .iter()
        .enumerate()
        .map(|(g, cell)| {
            (cell.session == s)
                .then(|| Lfsr::new(spec, seed_for(config.seed, reg_count + g as u64, mask)))
        })
        .collect();

    let under_test: BTreeSet<usize> = control.signature_registers.keys().copied().collect();
    let mut activity: BTreeMap<usize, (u64, BTreeSet<Vec<u64>>)> = under_test
        .iter()
        .map(|&m| (m, (0, BTreeSet::new())))
        .collect();

    let mut module_out = vec![0u64; netlist.modules().len()];
    for cycle in 0..config.cycles {
        // Register and generator outputs for this cycle.
        let reg_out: Vec<u64> = regs
            .iter()
            .map(|st| match st.mode {
                RegisterMode::Hold => st.held,
                RegisterMode::Generate | RegisterMode::GenerateCompact => {
                    st.generator.as_ref().map_or(0, Lfsr::state)
                }
                RegisterMode::Compact => st.compactor.as_ref().map_or(0, Misr::signature),
            })
            .collect();
        let gen_out: Vec<u64> = generator_cells
            .iter()
            .map(|g| g.as_ref().map_or(0, Lfsr::state))
            .collect();

        let net_value = |net: NetRef, module_out: &[u64]| -> u64 {
            match net {
                NetRef::Register(r) => reg_out[r],
                NetRef::Module(m) => module_out[m],
                NetRef::Constant(c) => netlist.constants()[c].value as u64 & mask,
                NetRef::Generator(g) => gen_out[g],
            }
        };
        let resolve = |driver: Driver, module_out: &[u64]| -> u64 {
            match driver {
                Driver::Net(n) => net_value(n, module_out),
                Driver::Mux(i) => {
                    let select = control.mux_selects.get(&i).copied().unwrap_or(0);
                    net_value(netlist.muxes()[i].inputs[select], module_out)
                }
            }
        };

        // Combinational pass: module ports read registers, constants and
        // generators only (module outputs feed registers, never ports), so a
        // single sweep in index order is exact.
        for (m, cell) in netlist.modules().iter().enumerate() {
            let inputs: Vec<u64> = cell
                .ports
                .iter()
                .enumerate()
                .map(|(port, &driver)| {
                    let key = bist_datapath::ModulePort { module: m, port };
                    match control.port_overrides.get(&key) {
                        Some(&g) => gen_out[g],
                        None => resolve(driver, &module_out),
                    }
                })
                .collect();
            let mut out = eval_module(cell.class, &inputs, width, mask);
            if fault_module == Some(m) && cycle == 0 {
                out ^= 1;
            }
            module_out[m] = out;
            if let Some((cycles_active, patterns)) = activity.get_mut(&m) {
                *cycles_active += 1;
                patterns.insert(inputs);
            }
        }

        // Sequential update: LFSRs advance, MISRs fold in this cycle's
        // register-input value, held registers stay put.
        let inputs_now: Vec<Option<u64>> = netlist
            .registers()
            .iter()
            .map(|cell| cell.input.map(|d| resolve(d, &module_out)))
            .collect();
        for (r, st) in regs.iter_mut().enumerate() {
            if let Some(generator) = st.generator.as_mut() {
                generator.step();
            }
            if let Some(compactor) = st.compactor.as_mut() {
                compactor.capture(inputs_now[r].unwrap_or(0));
            }
        }
        for generator in generator_cells.iter_mut().flatten() {
            generator.step();
        }
    }

    let signatures: BTreeMap<usize, u64> = control
        .signature_registers
        .values()
        .map(|&r| (r, regs[r].compactor.as_ref().map_or(0, Misr::signature)))
        .collect();
    let coverage: Vec<ModuleCoverage> = activity
        .into_iter()
        .map(|(module, (cycles_active, patterns))| ModuleCoverage {
            module,
            signature_register: control.signature_registers[&module],
            cycles_active,
            distinct_patterns: patterns.len() as u64,
        })
        .collect();

    SessionReport {
        session: s,
        cycles: config.cycles,
        coverage,
        signatures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{ConstantCell, MuxCell, MuxSite, RegisterCell, SessionControl};
    use bist_datapath::{ModulePort, TestRegisterKind};

    /// Hand-built netlist: R0 and R1 feed adder0, adder0 feeds R2. One
    /// session tests the adder with R0/R1 as TPGs and R2 as the MISR.
    fn adder_netlist() -> Netlist {
        Netlist {
            name: "hand".to_string(),
            width: 8,
            registers: vec![
                RegisterCell {
                    name: "R0".to_string(),
                    kind: TestRegisterKind::Tpg,
                    input: None,
                },
                RegisterCell {
                    name: "R1".to_string(),
                    kind: TestRegisterKind::Tpg,
                    input: None,
                },
                RegisterCell {
                    name: "R2".to_string(),
                    kind: TestRegisterKind::Sr,
                    input: Some(Driver::Net(NetRef::Module(0))),
                },
            ],
            modules: vec![crate::netlist::ModuleCell {
                name: "adder0".to_string(),
                class: ModuleClass::Adder,
                ports: vec![
                    Driver::Net(NetRef::Register(0)),
                    Driver::Net(NetRef::Register(1)),
                ],
            }],
            constants: vec![],
            generators: vec![],
            muxes: vec![],
            sessions: vec![SessionControl {
                modules: vec![0],
                modes: vec![
                    RegisterMode::Generate,
                    RegisterMode::Generate,
                    RegisterMode::Compact,
                ],
                mux_selects: BTreeMap::new(),
                port_overrides: BTreeMap::new(),
                signature_registers: [(0usize, 2usize)].into_iter().collect(),
            }],
        }
    }

    #[test]
    fn adder_session_is_fully_exercised() {
        let n = adder_netlist();
        let report = simulate(&n, &SimConfig::default()).unwrap();
        assert_eq!(report.sessions.len(), 1);
        let s = &report.sessions[0];
        assert_eq!(s.coverage.len(), 1);
        assert_eq!(s.coverage[0].module, 0);
        assert_eq!(s.coverage[0].signature_register, 2);
        assert_eq!(s.coverage[0].cycles_active, 64);
        // Maximal 8-bit LFSRs with distinct seeds: all 64 patterns distinct.
        assert_eq!(s.coverage[0].distinct_patterns, 64);
        assert_ne!(s.signatures[&2], 0);
    }

    /// The MISR signature the simulator produces equals one computed
    /// directly from the two LFSR streams — the data path is bit-true.
    #[test]
    fn signature_matches_direct_recomputation() {
        let n = adder_netlist();
        let config = SimConfig::default();
        let report = simulate(&n, &config).unwrap();
        let spec = LfsrSpec::maximal(8).unwrap();
        let mask = spec.mask();
        let mut a = Lfsr::new(spec, seed_for(config.seed, 0, mask));
        let mut b = Lfsr::new(spec, seed_for(config.seed, 1, mask));
        let mut misr = Misr::new(spec);
        for _ in 0..config.cycles {
            misr.capture(a.state().wrapping_add(b.state()) & mask);
            a.step();
            b.step();
        }
        assert_eq!(report.sessions[0].signatures[&2], misr.signature());
    }

    /// Two structurally identical netlists (built independently) always
    /// produce identical signatures — the PRNG property the golden files
    /// rely on.
    #[test]
    fn identical_netlists_produce_identical_signatures() {
        let config = SimConfig {
            cycles: 128,
            seed: 0xDEAD_BEEF,
            spec: None,
        };
        let a = simulate(&adder_netlist(), &config).unwrap();
        let b = simulate(&adder_netlist(), &config).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.sessions, b.sessions);
        // And a different seed changes the signature (it is not vacuous).
        let c = simulate(&adder_netlist(), &SimConfig { seed: 7, ..config }).unwrap();
        assert_ne!(a.sessions[0].signatures[&2], c.sessions[0].signatures[&2]);
    }

    #[test]
    fn injected_fault_changes_the_signature() {
        let n = adder_netlist();
        let config = SimConfig::default();
        let clean = simulate(&n, &config).unwrap();
        let faulty = simulate_session_with_fault(&n, 0, 0, &config).unwrap();
        assert_ne!(clean.sessions[0].signatures[&2], faulty.signatures[&2]);
    }

    #[test]
    fn constants_generators_and_muxes_resolve() {
        // adder0 port 1 is a mux of R1 and constant 9; session selects R1
        // but overrides port 0 with a dedicated generator.
        let mut n = adder_netlist();
        n.constants = vec![ConstantCell { value: 9 }];
        n.muxes = vec![MuxCell {
            site: MuxSite::ModulePort(ModulePort { module: 0, port: 1 }),
            inputs: vec![NetRef::Register(1), NetRef::Constant(0)],
        }];
        n.modules[0].ports[1] = Driver::Mux(0);
        n.generators = vec![crate::netlist::GeneratorCell {
            session: 0,
            port: ModulePort { module: 0, port: 0 },
        }];
        n.sessions[0].mux_selects.insert(0, 0);
        n.sessions[0]
            .port_overrides
            .insert(ModulePort { module: 0, port: 0 }, 0);
        let report = simulate(&n, &SimConfig::default()).unwrap();
        let s = &report.sessions[0];
        assert_eq!(s.coverage[0].cycles_active, 64);
        assert_eq!(s.coverage[0].distinct_patterns, 64);
        // Selecting the constant instead starves the port of variation:
        // only the generator side still varies.
        n.sessions[0].mux_selects.insert(0, 1);
        let constant_side = simulate(&n, &SimConfig::default()).unwrap();
        assert_eq!(constant_side.sessions[0].coverage[0].distinct_patterns, 64);
        assert_ne!(
            report.sessions[0].signatures[&2],
            constant_side.sessions[0].signatures[&2]
        );
    }

    #[test]
    fn mismatched_spec_width_is_rejected() {
        let n = adder_netlist();
        let config = SimConfig {
            spec: Some(LfsrSpec::maximal(4).unwrap()),
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&n, &config),
            Err(RtlError::InvalidPolynomial { width: 8, .. })
        ));
    }
}
