//! The structural netlist IR emitted from a synthesised data path.
//!
//! A [`Netlist`] is a flat list of cells — registers, functional modules,
//! hard-wired constants, dedicated test-pattern generators and multiplexers —
//! plus one [`SessionControl`] per sub-test session of the BIST plan. The
//! session control captures everything the test controller would drive:
//! per-register reconfiguration modes, multiplexer selects routing test
//! patterns and responses, and port overrides for dedicated generators.
//!
//! The IR has a canonical text form ([`Netlist::to_text`]) for golden-file
//! diffing and a 64-bit FNV fingerprint ([`Netlist::fingerprint`]) for cheap
//! equality in benchmark artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bist_datapath::{ModulePort, TestRegisterKind};
use bist_dfg::ModuleClass;

/// A value-carrying net: the output of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetRef {
    /// Output of register `r`.
    Register(usize),
    /// Output of functional module `m`.
    Module(usize),
    /// Output of constant cell `c`.
    Constant(usize),
    /// Output of dedicated test-pattern generator cell `g`.
    Generator(usize),
}

impl NetRef {
    fn label(&self) -> String {
        match self {
            NetRef::Register(r) => format!("R{r}"),
            NetRef::Module(m) => format!("M{m}"),
            NetRef::Constant(c) => format!("C{c}"),
            NetRef::Generator(g) => format!("G{g}"),
        }
    }
}

/// What drives a cell input: a net directly, or a multiplexer output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Driven directly by one net (fan-in 1, no mux needed).
    Net(NetRef),
    /// Driven by multiplexer `muxes[i]`.
    Mux(usize),
}

/// The input position a multiplexer feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxSite {
    /// The data input of register `r`.
    RegisterInput(usize),
    /// An input port of a functional module.
    ModulePort(ModulePort),
}

/// A multiplexer cell. Input order is deterministic (ascending net order as
/// produced by the emitter), so input indices double as select values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxCell {
    /// Where the mux output goes.
    pub site: MuxSite,
    /// The selectable input nets.
    pub inputs: Vec<NetRef>,
}

/// A data path register cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterCell {
    /// Report name (`R0`, `R1`, ...).
    pub name: String,
    /// BIST reconfiguration kind.
    pub kind: TestRegisterKind,
    /// The data input driver; `None` for primary-input registers never
    /// written by a module.
    pub input: Option<Driver>,
}

/// A functional module cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleCell {
    /// Report name (`adder0`, ...).
    pub name: String,
    /// Functional class, fixing the bit-true evaluation rule.
    pub class: ModuleClass,
    /// Driver of each input port, in port order.
    pub ports: Vec<Driver>,
}

/// A hard-wired constant cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantCell {
    /// The constant value (masked to the data path width when evaluated).
    pub value: i64,
}

/// A dedicated test-pattern generator added for a constant-only module port
/// (Section 3.3.4 of the paper — a test-plan resource, not data path
/// structure, so it exists per sub-session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorCell {
    /// The sub-test session this generator is active in.
    pub session: usize,
    /// The port it feeds during that session.
    pub port: ModulePort,
}

/// The per-session reconfiguration mode of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegisterMode {
    /// Keep the stored value; input load disabled.
    Hold,
    /// Act as an LFSR pattern generator (TPG / BILBO generate mode).
    Generate,
    /// Act as a MISR compacting the register input (SR / BILBO compact mode).
    Compact,
    /// Generate and compact concurrently (CBILBO: two flip-flop banks).
    GenerateCompact,
}

impl RegisterMode {
    fn label(&self) -> &'static str {
        match self {
            RegisterMode::Hold => "hold",
            RegisterMode::Generate => "generate",
            RegisterMode::Compact => "compact",
            RegisterMode::GenerateCompact => "generate+compact",
        }
    }
}

/// Everything the BIST controller drives during one sub-test session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionControl {
    /// Modules under test, in plan order.
    pub modules: Vec<usize>,
    /// Reconfiguration mode of every register, indexed by register.
    pub modes: Vec<RegisterMode>,
    /// Select value per multiplexer index; muxes not listed are don't-care
    /// for this session (their select defaults to 0 in simulation).
    pub mux_selects: BTreeMap<usize, usize>,
    /// Ports whose mission driver is overridden by a dedicated generator
    /// cell (port → generator index) during this session.
    pub port_overrides: BTreeMap<ModulePort, usize>,
    /// Signature register of every module under test (module → register).
    pub signature_registers: BTreeMap<usize, usize>,
}

/// A complete structural netlist plus per-session BIST control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) registers: Vec<RegisterCell>,
    pub(crate) modules: Vec<ModuleCell>,
    pub(crate) constants: Vec<ConstantCell>,
    pub(crate) generators: Vec<GeneratorCell>,
    pub(crate) muxes: Vec<MuxCell>,
    pub(crate) sessions: Vec<SessionControl>,
}

/// The lowercase report name of a module class.
pub fn class_name(class: ModuleClass) -> &'static str {
    match class {
        ModuleClass::Adder => "adder",
        ModuleClass::Subtractor => "subtractor",
        ModuleClass::Alu => "alu",
        ModuleClass::Multiplier => "multiplier",
        ModuleClass::Divider => "divider",
        ModuleClass::Comparator => "comparator",
        ModuleClass::Logic => "logic",
        ModuleClass::Shifter => "shifter",
    }
}

/// The lowercase report name of a test register kind.
pub fn kind_name(kind: TestRegisterKind) -> &'static str {
    match kind {
        TestRegisterKind::Plain => "plain",
        TestRegisterKind::Tpg => "tpg",
        TestRegisterKind::Sr => "sr",
        TestRegisterKind::Bilbo => "bilbo",
        TestRegisterKind::Cbilbo => "cbilbo",
    }
}

fn driver_label(driver: &Option<Driver>) -> String {
    match driver {
        None => "none".to_string(),
        Some(Driver::Net(n)) => format!("net {}", n.label()),
        Some(Driver::Mux(i)) => format!("mux {i}"),
    }
}

impl Netlist {
    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Data path bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The register cells.
    pub fn registers(&self) -> &[RegisterCell] {
        &self.registers
    }

    /// The functional module cells.
    pub fn modules(&self) -> &[ModuleCell] {
        &self.modules
    }

    /// The constant cells.
    pub fn constants(&self) -> &[ConstantCell] {
        &self.constants
    }

    /// The dedicated generator cells.
    pub fn generators(&self) -> &[GeneratorCell] {
        &self.generators
    }

    /// The multiplexer cells.
    pub fn muxes(&self) -> &[MuxCell] {
        &self.muxes
    }

    /// The per-sub-session control words (empty for a mission-only netlist).
    pub fn sessions(&self) -> &[SessionControl] {
        &self.sessions
    }

    /// The canonical, line-oriented text form used for golden-file diffing.
    /// Byte-identical for equal netlists; every field of every cell appears.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "netlist {} width {}", self.name, self.width);
        let _ = writeln!(out, "registers {}", self.registers.len());
        for (r, reg) in self.registers.iter().enumerate() {
            let _ = writeln!(
                out,
                "register {r} {} {} input {}",
                reg.name,
                kind_name(reg.kind),
                driver_label(&reg.input)
            );
        }
        let _ = writeln!(out, "modules {}", self.modules.len());
        for (m, module) in self.modules.iter().enumerate() {
            let _ = writeln!(
                out,
                "module {m} {} {} ports {}",
                module.name,
                class_name(module.class),
                module.ports.len()
            );
            for (l, port) in module.ports.iter().enumerate() {
                let _ = writeln!(out, "  port {l} {}", driver_label(&Some(*port)));
            }
        }
        let _ = writeln!(out, "constants {}", self.constants.len());
        for (c, constant) in self.constants.iter().enumerate() {
            let _ = writeln!(out, "constant {c} value {}", constant.value);
        }
        let _ = writeln!(out, "generators {}", self.generators.len());
        for (g, generator) in self.generators.iter().enumerate() {
            let _ = writeln!(
                out,
                "generator {g} session {} port {}.{}",
                generator.session, generator.port.module, generator.port.port
            );
        }
        let _ = writeln!(out, "muxes {}", self.muxes.len());
        for (i, mux) in self.muxes.iter().enumerate() {
            let site = match mux.site {
                MuxSite::RegisterInput(r) => format!("register {r}"),
                MuxSite::ModulePort(p) => format!("port {}.{}", p.module, p.port),
            };
            let inputs: Vec<String> = mux.inputs.iter().map(NetRef::label).collect();
            let _ = writeln!(out, "mux {i} at {site} inputs {}", inputs.join(" "));
        }
        let _ = writeln!(out, "sessions {}", self.sessions.len());
        for (s, session) in self.sessions.iter().enumerate() {
            let modules: Vec<String> = session.modules.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "session {s} modules {}", modules.join(" "));
            for (r, mode) in session.modes.iter().enumerate() {
                let _ = writeln!(out, "  mode {r} {}", mode.label());
            }
            for (mux, select) in &session.mux_selects {
                let _ = writeln!(out, "  select mux {mux} input {select}");
            }
            for (port, generator) in &session.port_overrides {
                let _ = writeln!(
                    out,
                    "  override port {}.{} generator {generator}",
                    port.module, port.port
                );
            }
            for (module, register) in &session.signature_registers {
                let _ = writeln!(out, "  signature module {module} register {register}");
            }
        }
        out.push_str("end\n");
        out
    }

    /// 64-bit FNV-1a fingerprint of [`Netlist::to_text`]. Two netlists with
    /// equal structure and session control always fingerprint equal.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_text().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        Netlist {
            name: "tiny".to_string(),
            width: 8,
            registers: vec![
                RegisterCell {
                    name: "R0".to_string(),
                    kind: TestRegisterKind::Tpg,
                    input: None,
                },
                RegisterCell {
                    name: "R1".to_string(),
                    kind: TestRegisterKind::Sr,
                    input: Some(Driver::Net(NetRef::Module(0))),
                },
            ],
            modules: vec![ModuleCell {
                name: "adder0".to_string(),
                class: ModuleClass::Adder,
                ports: vec![Driver::Net(NetRef::Register(0)), Driver::Mux(0)],
            }],
            constants: vec![ConstantCell { value: 5 }],
            generators: vec![],
            muxes: vec![MuxCell {
                site: MuxSite::ModulePort(ModulePort { module: 0, port: 1 }),
                inputs: vec![NetRef::Register(0), NetRef::Constant(0)],
            }],
            sessions: vec![SessionControl {
                modules: vec![0],
                modes: vec![RegisterMode::Generate, RegisterMode::Compact],
                mux_selects: [(0usize, 0usize)].into_iter().collect(),
                port_overrides: BTreeMap::new(),
                signature_registers: [(0usize, 1usize)].into_iter().collect(),
            }],
        }
    }

    #[test]
    fn text_form_is_deterministic_and_complete() {
        let n = tiny();
        let text = n.to_text();
        assert_eq!(text, n.to_text());
        assert!(text.starts_with("netlist tiny width 8\n"));
        assert!(text.contains("register 0 R0 tpg input none"));
        assert!(text.contains("register 1 R1 sr input net M0"));
        assert!(text.contains("module 0 adder0 adder ports 2"));
        assert!(text.contains("  port 1 mux 0"));
        assert!(text.contains("mux 0 at port 0.1 inputs R0 C0"));
        assert!(text.contains("session 0 modules 0"));
        assert!(text.contains("  mode 0 generate"));
        assert!(text.contains("  signature module 0 register 1"));
        assert!(text.ends_with("end\n"));
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let n = tiny();
        let mut changed = n.clone();
        assert_eq!(n.fingerprint(), changed.fingerprint());
        changed.registers[0].kind = TestRegisterKind::Bilbo;
        assert_ne!(n.fingerprint(), changed.fingerprint());
    }
}
