//! LFSR pattern generators and MISR signature compactors.
//!
//! Both primitives share one linear core: a left-shift Fibonacci LFSR over
//! GF(2) with feedback `s' = ((s << 1) | parity(s & taps)) & mask`. A tap
//! mask encodes the feedback polynomial `x^w + x^a + ... + 1` by setting
//! bits `w-1, a-1, ...`; with a primitive polynomial the generator walks all
//! `2^w - 1` non-zero states before repeating (maximal length). The MISR is
//! the same shift with the module output XOR-folded into the new state each
//! cycle — the standard multiple-input signature register of BIST practice.

use crate::error::RtlError;

/// A feedback polynomial for an LFSR or MISR of a given bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LfsrSpec {
    width: u32,
    taps: u64,
}

impl LfsrSpec {
    /// A maximal-length (primitive) polynomial for `width`-bit registers,
    /// from the standard published tables. Widths 2–16, 24 and 32 are on
    /// record; the maximality of every table entry up to width 16 is
    /// re-proved by brute force in this module's tests.
    ///
    /// # Errors
    ///
    /// [`RtlError::UnsupportedWidth`] for widths not in the table.
    pub fn maximal(width: u32) -> Result<Self, RtlError> {
        // Tap masks for x^w + ... + 1: bit i set <=> the polynomial has an
        // x^(i+1) term (besides the constant 1).
        let taps: u64 = match width {
            2 => 0b11,         // x^2 + x + 1
            3 => 0b110,        // x^3 + x^2 + 1
            4 => 0b1100,       // x^4 + x^3 + 1
            5 => 0b1_0100,     // x^5 + x^3 + 1
            6 => 0b11_0000,    // x^6 + x^5 + 1
            7 => 0b110_0000,   // x^7 + x^6 + 1
            8 => 0xB8,         // x^8 + x^6 + x^5 + x^4 + 1
            9 => 0x110,        // x^9 + x^5 + 1
            10 => 0x240,       // x^10 + x^7 + 1
            11 => 0x500,       // x^11 + x^9 + 1
            12 => 0x829,       // x^12 + x^6 + x^4 + x + 1
            13 => 0x100D,      // x^13 + x^4 + x^3 + x + 1
            14 => 0x2015,      // x^14 + x^5 + x^3 + x + 1
            15 => 0x6000,      // x^15 + x^14 + 1
            16 => 0xD008,      // x^16 + x^15 + x^13 + x^4 + 1
            24 => 0xE1_0000,   // x^24 + x^23 + x^22 + x^17 + 1
            32 => 0x8020_0003, // x^32 + x^22 + x^2 + x + 1
            _ => return Err(RtlError::UnsupportedWidth { width }),
        };
        Ok(Self { width, taps })
    }

    /// A custom feedback polynomial.
    ///
    /// # Errors
    ///
    /// [`RtlError::UnsupportedWidth`] for widths outside `2..=63`, and
    /// [`RtlError::InvalidPolynomial`] when the tap mask is zero, taps bits
    /// at or above `width`, or misses the mandatory `x^width` term (bit
    /// `width - 1`).
    pub fn custom(width: u32, taps: u64) -> Result<Self, RtlError> {
        if !(2..=63).contains(&width) {
            return Err(RtlError::UnsupportedWidth { width });
        }
        let mask = (1u64 << width) - 1;
        if taps == 0 || taps & !mask != 0 || taps & (1 << (width - 1)) == 0 {
            return Err(RtlError::InvalidPolynomial { width, taps });
        }
        Ok(Self { width, taps })
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The feedback tap mask.
    pub fn taps(&self) -> u64 {
        self.taps
    }

    /// All-ones mask of the register width.
    pub fn mask(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// One feedback step: `((state << 1) | parity(state & taps)) & mask`.
    pub fn next(&self, state: u64) -> u64 {
        let feedback = u64::from((state & self.taps).count_ones() & 1 == 1);
        ((state << 1) | feedback) & self.mask()
    }
}

/// A running LFSR pattern generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    spec: LfsrSpec,
    state: u64,
}

impl Lfsr {
    /// Creates a generator from a seed. An (unreachable, all-zero) seed of 0
    /// is promoted to 1 so the generator never locks up.
    pub fn new(spec: LfsrSpec, seed: u64) -> Self {
        let state = match seed & spec.mask() {
            0 => 1,
            s => s,
        };
        Self { spec, state }
    }

    /// The pattern currently on the register outputs.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one clock cycle and returns the new state.
    pub fn step(&mut self) -> u64 {
        self.state = self.spec.next(self.state);
        self.state
    }
}

/// A running multiple-input signature register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    spec: LfsrSpec,
    state: u64,
}

impl Misr {
    /// Creates a compactor with an all-zero initial signature.
    pub fn new(spec: LfsrSpec) -> Self {
        Self { spec, state: 0 }
    }

    /// Compacts one response word: `state' = next(state) XOR input`.
    pub fn capture(&mut self, input: u64) {
        self.state = self.spec.next(self.state) ^ (input & self.spec.mask());
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full 4-bit maximal-length sequence from seed 1, derived by hand:
    /// taps 0b1100 (x^4 + x^3 + 1) walks all 15 non-zero states.
    #[test]
    fn four_bit_sequence_matches_hand_computation() {
        let spec = LfsrSpec::maximal(4).unwrap();
        assert_eq!(spec.taps(), 0b1100);
        let mut lfsr = Lfsr::new(spec, 1);
        let seq: Vec<u64> = (0..15).map(|_| lfsr.step()).collect();
        assert_eq!(seq, vec![2, 4, 9, 3, 6, 13, 10, 5, 11, 7, 15, 14, 12, 8, 1]);
    }

    /// Hand-computed MISR signature: from state 0, capturing 3, 7, 0xA under
    /// taps 0b1100 gives 3 -> 1 -> 8.
    #[test]
    fn misr_signature_matches_hand_computation() {
        let spec = LfsrSpec::maximal(4).unwrap();
        let mut misr = Misr::new(spec);
        misr.capture(0x3);
        assert_eq!(misr.signature(), 0x3);
        misr.capture(0x7);
        assert_eq!(misr.signature(), 0x1);
        misr.capture(0xA);
        assert_eq!(misr.signature(), 0x8);
    }

    /// Every table entry up to width 16 really is maximal length: from seed 1
    /// the generator returns to 1 after exactly 2^w - 1 steps and never
    /// reaches 0.
    #[test]
    fn table_polynomials_are_maximal_up_to_width_16() {
        for width in 2..=16u32 {
            let spec = LfsrSpec::maximal(width).unwrap();
            let period = (1u64 << width) - 1;
            let mut state = 1u64;
            for step in 1..=period {
                state = spec.next(state);
                assert_ne!(state, 0, "width {width} reached the lock-up state");
                if state == 1 {
                    assert_eq!(step, period, "width {width} has a short cycle");
                }
            }
            assert_eq!(state, 1, "width {width} did not close its cycle");
        }
    }

    #[test]
    fn wide_table_entries_step_sanely() {
        for width in [24u32, 32] {
            let spec = LfsrSpec::maximal(width).unwrap();
            let mut lfsr = Lfsr::new(spec, 1);
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..4096 {
                assert!(seen.insert(lfsr.step()), "early repeat at width {width}");
            }
        }
    }

    #[test]
    fn zero_seed_is_promoted() {
        let spec = LfsrSpec::maximal(8).unwrap();
        let lfsr = Lfsr::new(spec, 0);
        assert_eq!(lfsr.state(), 1);
        let lfsr = Lfsr::new(spec, 0x100); // masked to zero, then promoted
        assert_eq!(lfsr.state(), 1);
    }

    #[test]
    fn unsupported_and_invalid_polynomials_are_rejected() {
        assert!(matches!(
            LfsrSpec::maximal(17),
            Err(RtlError::UnsupportedWidth { width: 17 })
        ));
        assert!(matches!(
            LfsrSpec::custom(1, 1),
            Err(RtlError::UnsupportedWidth { .. })
        ));
        assert!(matches!(
            LfsrSpec::custom(4, 0),
            Err(RtlError::InvalidPolynomial { .. })
        ));
        // Taps above the width.
        assert!(matches!(
            LfsrSpec::custom(4, 0b1_1000),
            Err(RtlError::InvalidPolynomial { .. })
        ));
        // Missing the x^width term.
        assert!(matches!(
            LfsrSpec::custom(4, 0b0110),
            Err(RtlError::InvalidPolynomial { .. })
        ));
        // A well-formed custom polynomial is accepted.
        let spec = LfsrSpec::custom(4, 0b1001).unwrap();
        assert_eq!(spec.width(), 4);
    }
}
