//! Lowering a synthesised data path (plus its test plan) to a [`Netlist`].
//!
//! The emitter walks the data path's typed connection view
//! ([`bist_datapath::Datapath::iter_connections`]) and builds one cell per
//! register, module, distinct constant and multiplexer. Mux fan-ins are
//! cross-checked against [`bist_datapath::Datapath::mux_fanins`] — the same
//! single source the area model uses — so the netlist can never drift from
//! the transistor counts the ILP optimised.
//!
//! With a test plan, the emitter additionally derives one
//! [`SessionControl`] per sub-test session: register modes from the plan's
//! TPG/SR roles, mux selects routing each TPG register to its port and each
//! module under test to its signature register, and dedicated generator
//! cells for constant-only ports. Any role the structure cannot route is a
//! typed [`RtlError::TestPathNotRoutable`] — the "prove the session actually
//! tests it" contract starts here.

use std::collections::{BTreeMap, BTreeSet};

use bist_datapath::{
    Datapath, DatapathError, ModulePort, TestPlan, TestRegisterKind, TestSession, TpgSource,
};

use crate::error::RtlError;
use crate::netlist::{
    ConstantCell, Driver, GeneratorCell, ModuleCell, MuxCell, MuxSite, NetRef, Netlist,
    RegisterCell, RegisterMode, SessionControl,
};

/// Emits the mission-mode structural netlist of a data path (no sessions).
///
/// # Errors
///
/// [`RtlError::Datapath`] wrapping [`DatapathError::UndrivenPort`] if a
/// module input port has no driver at all.
pub fn emit_netlist(datapath: &Datapath) -> Result<Netlist, RtlError> {
    emit(datapath, None)
}

/// Emits the structural netlist plus one [`SessionControl`] per sub-test
/// session of the plan.
///
/// # Errors
///
/// [`RtlError::Datapath`] for structural defects of the data path itself and
/// [`RtlError::TestPathNotRoutable`] when a test-plan role (TPG at a port,
/// signature register at a module output) has no route through the emitted
/// structure — on a design that passed `bist_datapath::validate` this
/// indicates an emitter or validator bug, and the error message says which
/// route is missing.
pub fn emit_bist_netlist(datapath: &Datapath, plan: &TestPlan) -> Result<Netlist, RtlError> {
    emit(datapath, Some(plan))
}

fn emit(dp: &Datapath, plan: Option<&TestPlan>) -> Result<Netlist, RtlError> {
    if let Some(p) = dp.undriven_ports().first() {
        return Err(DatapathError::UndrivenPort {
            module: p.module,
            port: p.port,
        }
        .into());
    }

    let ic = dp.interconnect();

    // One constant cell per distinct value, in ascending value order.
    let values: BTreeSet<i64> = dp
        .iter_connections()
        .filter_map(|c| match c {
            bist_datapath::Connection::ConstantToPort { value, .. } => Some(value),
            _ => None,
        })
        .collect();
    let constants: Vec<ConstantCell> = values.iter().map(|&value| ConstantCell { value }).collect();
    let constant_index: BTreeMap<i64, usize> =
        values.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Register cells first, then module cells, creating muxes in the same
    // order the area model enumerates fan-ins (registers, then ports).
    let mut muxes: Vec<MuxCell> = Vec::new();
    let registers: Vec<RegisterCell> = dp
        .registers()
        .iter()
        .enumerate()
        .map(|(r, reg)| {
            let drivers = ic.modules_driving_register(r);
            let input = match drivers.len() {
                0 => None,
                1 => Some(Driver::Net(NetRef::Module(drivers[0]))),
                _ => {
                    let idx = muxes.len();
                    muxes.push(MuxCell {
                        site: MuxSite::RegisterInput(r),
                        inputs: drivers.into_iter().map(NetRef::Module).collect(),
                    });
                    Some(Driver::Mux(idx))
                }
            };
            RegisterCell {
                name: reg.name.clone(),
                kind: reg.kind,
                input,
            }
        })
        .collect();

    let mut modules: Vec<ModuleCell> = Vec::with_capacity(dp.num_modules());
    for (m, module) in dp.modules().iter().enumerate() {
        let mut ports = Vec::with_capacity(module.num_inputs);
        for port in 0..module.num_inputs {
            let p = ModulePort { module: m, port };
            let mut inputs: Vec<NetRef> = ic
                .registers_driving_port(p)
                .into_iter()
                .map(NetRef::Register)
                .collect();
            inputs.extend(
                ic.constants_driving_port(p)
                    .into_iter()
                    .map(|v| NetRef::Constant(constant_index[&v])),
            );
            let driver = match inputs.len() {
                0 => return Err(DatapathError::UndrivenPort { module: m, port }.into()),
                1 => Driver::Net(inputs[0]),
                _ => {
                    let idx = muxes.len();
                    muxes.push(MuxCell {
                        site: MuxSite::ModulePort(p),
                        inputs,
                    });
                    Driver::Mux(idx)
                }
            };
            ports.push(driver);
        }
        modules.push(ModuleCell {
            name: module.name.clone(),
            class: module.class,
            ports,
        });
    }

    // The single-source cross-check: the emitted mux cells must reproduce
    // exactly the fan-in list the area model prices.
    let emitted_fanins: Vec<usize> = muxes.iter().map(|mx| mx.inputs.len()).collect();
    assert_eq!(
        emitted_fanins,
        dp.mux_fanins(),
        "emitted mux fan-ins must match Datapath::mux_fanins"
    );

    let mut generators: Vec<GeneratorCell> = Vec::new();
    let mut sessions: Vec<SessionControl> = Vec::new();
    if let Some(plan) = plan {
        for (s, session) in plan.sessions.iter().enumerate() {
            sessions.push(lower_session(
                s,
                session,
                &registers,
                &modules,
                &muxes,
                &mut generators,
            )?);
        }
    }

    Ok(Netlist {
        name: dp.name().to_string(),
        width: dp.width(),
        registers,
        modules,
        constants,
        generators,
        muxes,
        sessions,
    })
}

/// Derives the control word of one sub-test session.
fn lower_session(
    s: usize,
    session: &TestSession,
    registers: &[RegisterCell],
    modules: &[ModuleCell],
    muxes: &[MuxCell],
    generators: &mut Vec<GeneratorCell>,
) -> Result<SessionControl, RtlError> {
    let mut modes = vec![RegisterMode::Hold; registers.len()];
    for r in session.tpg_registers() {
        modes[r] = RegisterMode::Generate;
    }
    for r in session.sr_registers() {
        modes[r] = if modes[r] == RegisterMode::Generate {
            RegisterMode::GenerateCompact
        } else {
            RegisterMode::Compact
        };
    }
    for (r, mode) in modes.iter().enumerate() {
        let kind = registers[r].kind;
        let supported = match mode {
            RegisterMode::Hold => true,
            RegisterMode::Generate => matches!(
                kind,
                TestRegisterKind::Tpg | TestRegisterKind::Bilbo | TestRegisterKind::Cbilbo
            ),
            RegisterMode::Compact => matches!(
                kind,
                TestRegisterKind::Sr | TestRegisterKind::Bilbo | TestRegisterKind::Cbilbo
            ),
            RegisterMode::GenerateCompact => kind == TestRegisterKind::Cbilbo,
        };
        if !supported {
            return Err(RtlError::TestPathNotRoutable {
                description: format!(
                    "register R{r} (kind {}) cannot run in {:?} mode in sub-session {s}",
                    crate::netlist::kind_name(kind),
                    mode
                ),
            });
        }
    }

    let mut mux_selects: BTreeMap<usize, usize> = BTreeMap::new();
    let mut port_overrides: BTreeMap<ModulePort, usize> = BTreeMap::new();
    let mut signature_registers: BTreeMap<usize, usize> = BTreeMap::new();

    let mut select = |mux: usize, input: usize, what: &str| -> Result<(), RtlError> {
        match mux_selects.get(&mux) {
            Some(&prev) if prev != input => Err(RtlError::TestPathNotRoutable {
                description: format!(
                    "mux {mux} needs two different selects in sub-session {s} ({what})"
                ),
            }),
            _ => {
                mux_selects.insert(mux, input);
                Ok(())
            }
        }
    };

    for &m in &session.modules {
        // Route a pattern source onto every input port of the module.
        for port in 0..modules[m].ports.len() {
            let key = ModulePort { module: m, port };
            let source =
                session
                    .tpg
                    .get(&(m, port))
                    .ok_or_else(|| RtlError::TestPathNotRoutable {
                        description: format!(
                            "no TPG assigned to port {m}.{port} in sub-session {s}"
                        ),
                    })?;
            match *source {
                TpgSource::Register(r) => {
                    let wanted = NetRef::Register(r);
                    match modules[m].ports[port] {
                        Driver::Net(n) if n == wanted => {}
                        Driver::Net(_) => {
                            return Err(RtlError::TestPathNotRoutable {
                                description: format!(
                                    "TPG R{r} is not wired to port {m}.{port} \
                                     (sub-session {s})"
                                ),
                            })
                        }
                        Driver::Mux(idx) => {
                            let pos = muxes[idx]
                                .inputs
                                .iter()
                                .position(|&n| n == wanted)
                                .ok_or_else(|| RtlError::TestPathNotRoutable {
                                    description: format!(
                                        "TPG R{r} is not a mux input of port {m}.{port} \
                                         (sub-session {s})"
                                    ),
                                })?;
                            select(idx, pos, "TPG routing")?;
                        }
                    }
                }
                TpgSource::ConstantGenerator => {
                    let g = generators.len();
                    generators.push(GeneratorCell {
                        session: s,
                        port: key,
                    });
                    port_overrides.insert(key, g);
                }
            }
        }

        // Route the module output into its signature register.
        let &r = session
            .sr
            .get(&m)
            .ok_or_else(|| RtlError::TestPathNotRoutable {
                description: format!("no signature register for module {m} in sub-session {s}"),
            })?;
        let wanted = NetRef::Module(m);
        match registers[r].input {
            Some(Driver::Net(n)) if n == wanted => {}
            Some(Driver::Mux(idx)) => {
                let pos = muxes[idx]
                    .inputs
                    .iter()
                    .position(|&n| n == wanted)
                    .ok_or_else(|| RtlError::TestPathNotRoutable {
                        description: format!(
                            "module {m} is not a mux input of register R{r} \
                             (sub-session {s})"
                        ),
                    })?;
                select(idx, pos, "signature routing")?;
            }
            _ => {
                return Err(RtlError::TestPathNotRoutable {
                    description: format!(
                        "module {m} output does not reach signature register R{r} \
                         (sub-session {s})"
                    ),
                })
            }
        }
        signature_registers.insert(m, r);
    }

    Ok(SessionControl {
        modules: session.modules.clone(),
        modes,
        mux_selects,
        port_overrides,
        signature_registers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::allocate::left_edge;
    use bist_dfg::benchmarks;
    use bist_dfg::lifetime::LifetimeTable;

    fn figure1() -> Datapath {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        Datapath::from_register_assignment(&input, &assignment, 8).unwrap()
    }

    #[test]
    fn mission_netlist_mirrors_the_datapath() {
        let dp = figure1();
        let n = emit_netlist(&dp).unwrap();
        assert_eq!(n.name(), dp.name());
        assert_eq!(n.width(), 8);
        assert_eq!(n.registers().len(), dp.num_registers());
        assert_eq!(n.modules().len(), dp.num_modules());
        assert!(n.sessions().is_empty());
        // The single-source invariant: one mux cell per priced fan-in.
        let fanins: Vec<usize> = n.muxes().iter().map(|m| m.inputs.len()).collect();
        assert_eq!(fanins, dp.mux_fanins());
        // Ports match the datapath's port counts.
        for (m, cell) in n.modules().iter().enumerate() {
            assert_eq!(cell.ports.len(), dp.modules()[m].num_inputs);
        }
    }

    #[test]
    fn emission_is_deterministic() {
        let dp = figure1();
        let a = emit_netlist(&dp).unwrap();
        let b = emit_netlist(&dp).unwrap();
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn missing_tpg_assignment_is_a_typed_error() {
        let mut dp = figure1();
        let mut plan = TestPlan::with_sessions(1);
        plan.sessions[0].modules.push(0);
        // No TPG entries at all.
        plan.sessions[0].sr.insert(0, 0);
        plan.apply_register_kinds(&mut dp);
        let err = emit_bist_netlist(&dp, &plan).unwrap_err();
        assert!(matches!(err, RtlError::TestPathNotRoutable { .. }), "{err}");
        assert!(err.to_string().contains("no TPG"));
    }

    #[test]
    fn unroutable_tpg_is_a_typed_error() {
        let mut dp = figure1();
        // Claim a register that exists but is not wired to module 0's port 0.
        let p = ModulePort { module: 0, port: 0 };
        let wired = dp.interconnect().registers_driving_port(p);
        let unwired = (0..dp.num_registers())
            .find(|r| !wired.contains(r))
            .expect("figure1 has a register not wired to port 0.0");
        let mut plan = TestPlan::with_sessions(1);
        plan.sessions[0].modules.push(0);
        for port in 0..dp.modules()[0].num_inputs {
            plan.sessions[0]
                .tpg
                .insert((0, port), TpgSource::Register(unwired));
        }
        let sr = dp.interconnect().registers_driven_by_module(0)[0];
        plan.sessions[0].sr.insert(0, sr);
        plan.apply_register_kinds(&mut dp);
        let err = emit_bist_netlist(&dp, &plan).unwrap_err();
        assert!(matches!(err, RtlError::TestPathNotRoutable { .. }), "{err}");
    }
}
