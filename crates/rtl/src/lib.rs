//! # bist-rtl — RTL back-end and cycle-level BIST simulator
//!
//! The ILP synthesis flow (`bist-core`) ends with a [`bist_datapath::Datapath`]
//! and a [`bist_datapath::TestPlan`]: a register-transfer structure whose
//! registers carry TPG/SR/BILBO/CBILBO reconfiguration kinds, and a k-session
//! schedule saying which module is tested when, with which pattern generators
//! and which signature register. This crate closes the loop from that
//! solution back to hardware:
//!
//! 1. **Netlist emission** ([`emit_netlist`] / [`emit_bist_netlist`]) lowers
//!    the data path into a typed structural [`Netlist`] — register, module,
//!    constant, generator and multiplexer cells — plus one
//!    [`SessionControl`] per sub-test session with the register modes and
//!    mux selects the BIST controller drives. Mux fan-ins are cross-checked
//!    against the same [`bist_datapath::Datapath::mux_fanins`] accessor the
//!    area model prices, so the netlist can never drift from the transistor
//!    counts the ILP optimised. The netlist has a canonical text form
//!    ([`Netlist::to_text`]) for golden-file diffing and a Verilog writer
//!    ([`to_verilog`]).
//!
//! 2. **Cycle-level simulation** ([`simulate`]) runs each sub-test session
//!    bit-true: registers in generate mode step maximal-length LFSRs
//!    ([`Lfsr`]), modules evaluate their class function, signature registers
//!    fold responses into MISRs ([`Misr`]). The [`SimReport`] records
//!    per-module activation counts, distinct-pattern counts and final
//!    signatures.
//!
//! 3. **Simulated validation** ([`validate_simulated`]) proves the plan's
//!    claims hold in the emitted hardware: every scheduled module is
//!    compacted every cycle under a varying pattern stream, an injected
//!    fault at its output provably changes its signature, and signatures are
//!    bit-stable across runs.
//!
//! ```
//! use bist_datapath::{Datapath, ModulePort, TestPlan, TpgSource};
//! use bist_dfg::allocate::left_edge;
//! use bist_dfg::lifetime::LifetimeTable;
//! use bist_rtl::{validate_simulated, SimConfig};
//!
//! let input = bist_dfg::benchmarks::figure1();
//! let table = LifetimeTable::new(&input).unwrap();
//! let mut dp =
//!     Datapath::from_register_assignment(&input, &left_edge(&table), 8).unwrap();
//! // Test each module in its own sub-session with wired resources.
//! let mut plan = TestPlan::with_sessions(dp.num_modules());
//! for m in 0..dp.num_modules() {
//!     plan.sessions[m].modules.push(m);
//!     for port in 0..dp.modules()[m].num_inputs {
//!         let p = ModulePort { module: m, port };
//!         let source = match dp.interconnect().registers_driving_port(p).first() {
//!             Some(&r) => TpgSource::Register(r),
//!             None => TpgSource::ConstantGenerator,
//!         };
//!         plan.sessions[m].tpg.insert((m, port), source);
//!     }
//!     let sr = dp.interconnect().registers_driven_by_module(m)[0];
//!     plan.sessions[m].sr.insert(m, sr);
//! }
//! plan.apply_register_kinds(&mut dp);
//! let report = validate_simulated(&dp, &plan, &SimConfig::default()).unwrap();
//! assert_eq!(report.sessions.len(), dp.num_modules());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod lfsr;
pub mod netlist;
pub mod sim;
pub mod validate;
pub mod verilog;

pub use emit::{emit_bist_netlist, emit_netlist};
pub use error::RtlError;
pub use lfsr::{Lfsr, LfsrSpec, Misr};
pub use netlist::{
    ConstantCell, Driver, GeneratorCell, ModuleCell, MuxCell, MuxSite, NetRef, Netlist,
    RegisterCell, RegisterMode, SessionControl,
};
pub use sim::{
    simulate, simulate_session_with_fault, ModuleCoverage, SessionReport, SimConfig, SimReport,
};
pub use validate::validate_simulated;
pub use verilog::to_verilog;
