//! Error type of the RTL back-end.

use std::fmt;

use bist_datapath::DatapathError;

/// Errors raised while lowering a data path to a netlist or while simulating
/// a BIST test plan on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The data path itself is structurally unsound (for example an input
    /// port with zero drivers, [`DatapathError::UndrivenPort`]).
    Datapath(DatapathError),
    /// A test-plan resource needs a routing path the emitted netlist does
    /// not have (a TPG register that reaches no mux input of its port, or a
    /// signature register not fed by its module). With a validated design
    /// this indicates an emitter bug.
    TestPathNotRoutable {
        /// Description of the missing route.
        description: String,
    },
    /// No maximal-length feedback polynomial is on record for this register
    /// width.
    UnsupportedWidth {
        /// The requested LFSR/MISR width in bits.
        width: u32,
    },
    /// A custom feedback polynomial is unusable: the tap mask is zero, or it
    /// taps bits at or above the register width.
    InvalidPolynomial {
        /// Register width in bits.
        width: u32,
        /// The offending tap mask.
        taps: u64,
    },
    /// A module under test was not genuinely exercised in its scheduled
    /// sub-test session: too few cycles ran, or the applied input patterns
    /// barely varied (a stuck or short-cycled pattern generator).
    ModuleNotExercised {
        /// Module index.
        module: usize,
        /// Sub-test session the plan schedules it in.
        session: usize,
        /// Cycles the module's output was compacted.
        cycles: u64,
        /// Distinct input patterns applied over those cycles.
        distinct_patterns: u64,
    },
    /// A single-bit fault injected at a module's output did not change its
    /// signature register's final signature — the session does not actually
    /// observe the module.
    FaultNotObserved {
        /// Module index.
        module: usize,
        /// Sub-test session index.
        session: usize,
        /// The signature register that failed to observe the fault.
        register: usize,
    },
    /// Two identical simulation runs disagreed on a final signature — the
    /// simulation is not deterministic (never expected).
    UnstableSignature {
        /// Register index.
        register: usize,
        /// Sub-test session index.
        session: usize,
        /// Signature of the first run.
        first: u64,
        /// Signature of the second run.
        second: u64,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Datapath(e) => write!(f, "unsound data path: {e}"),
            RtlError::TestPathNotRoutable { description } => {
                write!(f, "test path not routable in the netlist: {description}")
            }
            RtlError::UnsupportedWidth { width } => {
                write!(
                    f,
                    "no maximal-length LFSR polynomial on record for width {width}"
                )
            }
            RtlError::InvalidPolynomial { width, taps } => {
                write!(f, "invalid feedback polynomial {taps:#x} for width {width}")
            }
            RtlError::ModuleNotExercised {
                module,
                session,
                cycles,
                distinct_patterns,
            } => write!(
                f,
                "module {module} not exercised in sub-session {session}: \
                 {distinct_patterns} distinct patterns over {cycles} cycles"
            ),
            RtlError::FaultNotObserved {
                module,
                session,
                register,
            } => write!(
                f,
                "a fault at module {module}'s output left register R{register}'s \
                 signature unchanged in sub-session {session}"
            ),
            RtlError::UnstableSignature {
                register,
                session,
                first,
                second,
            } => write!(
                f,
                "register R{register} signature unstable across identical runs of \
                 sub-session {session}: {first:#x} vs {second:#x}"
            ),
        }
    }
}

impl std::error::Error for RtlError {}

impl From<DatapathError> for RtlError {
    fn from(e: DatapathError) -> Self {
        RtlError::Datapath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = RtlError::ModuleNotExercised {
            module: 1,
            session: 0,
            cycles: 64,
            distinct_patterns: 1,
        };
        assert!(e.to_string().contains("module 1"));
        assert!(e.to_string().contains("1 distinct patterns"));
        let e = RtlError::Datapath(DatapathError::UndrivenPort { module: 2, port: 1 });
        assert!(e.to_string().contains("port 1"));
        let e = RtlError::UnstableSignature {
            register: 3,
            session: 1,
            first: 0xab,
            second: 0xcd,
        };
        assert!(e.to_string().contains("0xab"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
