//! The layered synthesis engine: one circuit-level base model, many k-test
//! session solves.
//!
//! The paper's headline experiment (Table 2) sweeps `k = 1..=N` sub-test
//! sessions per circuit. Only the BIST constraint families (Eqs. 6–23) and
//! the objective depend on `k`; the register assignment, interconnect and
//! multiplexer-sizing layers — the bulk of the model — are identical for
//! every `k`. The seed rebuilt everything from scratch per `k` and solved
//! the instances one after another. [`SynthesisEngine`] instead:
//!
//! 1. builds the circuit-level **base model** once
//!    ([`BistFormulation::new`] + interconnect + mux sizing) and runs the
//!    reducing presolve pipeline ([`bist_ilp::reduce`]) on it once — the
//!    *reduced* base (fixed variables eliminated, redundant rows dropped,
//!    implications disaggregated) is what every `k` clones,
//! 2. applies the per-k **BIST delta** through the reduced base's variable
//!    map (terms on eliminated variables fold into the right-hand sides),
//!    runs one more reduce pass over the extended model so the delta rows
//!    shrink too, and solves with the cut pool seeded at the root,
//! 3. **chains warm starts**: the register assignment of the k−1 incumbent
//!    is re-dressed with a greedy role assignment for `k` sessions and
//!    handed to the solver *alongside* the sequential left-edge baseline,
//!    so every solve starts from the best known design
//!    ([`SynthesisEngine::sweep_chained`]),
//! 4. or fans the independent per-k solves out across a scoped thread pool
//!    ([`SynthesisEngine::sweep_parallel`]), collecting results in
//!    deterministic ascending-k order.
//!
//! The rebuild path runs the very same reduction code on the very same
//! prefix (see [`crate::synthesis`]), so the parallel sweep runs searches
//! identical to independent per-k solves under any deterministic budget
//! (node limits, or exact solves) — the engine just pays the base reduction
//! once per circuit instead of once per k — and the chained sweep can only
//! return equal-or-better designs
//! — its extra warm-start candidate strengthens the initial incumbent.
//! Under a *wall-clock* time limit the usual caveats apply: concurrent
//! solves share the machine and an earlier incumbent changes where the
//! budget is spent, so per-k results may differ from a sequential rebuild.
//!
//! **Warm bases and the per-k delta replay.** Since the search-layer
//! overhaul, every per-k solve re-solves its child-node LPs with the
//! bounded dual simplex from the parent's cached basis (see
//! `bist_ilp::simplex::Basis` — since the revised-simplex rebuild that is
//! a factorized eta file plus column statuses, not a tableau), so the
//! dominant per-node cost inside each solve of the sweep is a handful of
//! dual pivots instead of a cold two-phase factorization. Bases do *not*
//! cross `k` boundaries: the per-k BIST delta changes the row set (Eqs.
//! 6–23 and the objective differ per `k`), and a basis is only valid for
//! the exact rows it was factorized from — what crosses `k` is the reduced
//! base model and the k−1 incumbent values, while basis reuse lives inside
//! each per-k tree. [`sweep_search_stats`] aggregates the warm/cold LP
//! counters of a sweep — including the primal/dual pivot split and the
//! kernel's refactorization count — so harnesses can quote the effect
//! deterministically.

use std::sync::Arc;
use std::time::Instant;

use bist_dfg::allocate::RegisterAssignment;
use bist_dfg::SynthesisInput;
use bist_ilp::reduce::{reduce_prefix, ReduceOptions, ReduceReport, ReducedModel};
use bist_ilp::{SolveEvent, SolveSnapshot};

use crate::config::SynthesisConfig;
use crate::error::CoreError;
use crate::formulation::BistFormulation;
use crate::reference::{solve_reference_formulation, ReferenceDesign};
use crate::synthesis::{solve_bist_formulation, BistDesign};

/// Maps `f` over `items` on a scoped thread pool and returns the results in
/// item order, independent of scheduling. The worker count is capped at the
/// machine's available parallelism so wall-clock-limited work is not diluted
/// by oversubscription; with one worker this is exactly the sequential loop.
/// Shared by the engine's parallel sweep and the benchmark harness's
/// per-circuit fan-out.
///
/// # Panics
///
/// Panics if `f` panics on a worker thread.
pub fn par_map_ordered<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_ordered_bounded(items, usize::MAX, f)
}

/// [`par_map_ordered`] with an explicit worker-pool bound: at most
/// `max_workers` scoped threads run at once (still additionally capped at
/// the machine's available parallelism and the item count). The job
/// service uses this to keep a batch from monopolising the host.
///
/// # Panics
///
/// Panics if `f` panics on a worker thread.
pub fn par_map_ordered_bounded<T, R, F>(items: &[T], max_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(max_workers)
        .min(items.len())
        .max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker thread panicked")
        })
        .collect()
}

/// Aggregated solver-effort counters of a whole k-sweep, summed over the
/// per-k solves. All counters are deterministic under node-limited or exact
/// budgets, so sweeps can be compared across machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSearchStats {
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots across every LP solved (cold, warm and strong
    /// branching).
    pub lp_iterations: u64,
    /// Pivots spent in the primal simplex (cold factorizations).
    pub lp_primal_iterations: u64,
    /// Pivots spent in the dual simplex (warm re-solves and probes).
    pub lp_dual_iterations: u64,
    /// Bound flips inside the LP kernel (rank-0 moves across a box).
    pub lp_bound_flips: u64,
    /// Basis refactorizations inside the LP kernel (eta-file collapses).
    pub kernel_refactorizations: u64,
    /// Node LPs re-solved warm with the dual simplex.
    pub warm_lp_solves: u64,
    /// Simplex iterations spent inside warm re-solves.
    pub warm_lp_pivots: u64,
    /// Cold tableau factorisations on the warm path.
    pub refactorizations: u64,
    /// Strong-branching probes solved to initialise pseudo-costs.
    pub strong_branch_solves: u64,
    /// Integral bounds tightened by reduced-cost fixing.
    pub rc_fixed_bounds: u64,
}

/// Sums the search-effort counters of a sweep's outcomes.
pub fn sweep_search_stats(outcomes: &[SweepOutcome]) -> SweepSearchStats {
    let mut total = SweepSearchStats::default();
    for outcome in outcomes {
        let stats = &outcome.design.stats;
        total.nodes += stats.nodes;
        total.lp_iterations += stats.lp_pivots;
        total.lp_primal_iterations += stats.lp_primal_pivots;
        total.lp_dual_iterations += stats.lp_dual_pivots;
        total.lp_bound_flips += stats.lp_bound_flips;
        total.kernel_refactorizations += stats.lp_basis_refactorizations;
        total.warm_lp_solves += stats.warm_lp_solves;
        total.warm_lp_pivots += stats.warm_lp_pivots;
        total.refactorizations += stats.refactorizations;
        total.strong_branch_solves += stats.strong_branch_solves;
        total.rc_fixed_bounds += stats.rc_fixed_bounds;
    }
    total
}

/// One solve of a sweep: the design plus how it was obtained.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The synthesised design.
    pub design: BistDesign,
    /// Wall-clock seconds of this solve, including formulation delta,
    /// extraction and validation.
    pub seconds: f64,
    /// Whether the k−1 incumbent was successfully chained in as a
    /// warm-start candidate.
    pub chained: bool,
    /// The register assignment of the design (used to chain into the next
    /// solve of a sweep).
    pub registers: RegisterAssignment,
}

/// Layered formulation engine for a single circuit.
///
/// The engine borrows the synthesis input and configuration; it is `Sync`,
/// so one engine can serve many worker threads at once.
#[derive(Debug)]
pub struct SynthesisEngine<'a> {
    input: &'a SynthesisInput,
    config: &'a SynthesisConfig,
    base: BistFormulation<'a>,
    /// The base model after the delta-safe reducing presolve, computed once
    /// per circuit; every per-k solve clones it and replays the BIST delta
    /// through its variable map. `None` when the solver configuration
    /// disables presolve.
    reduced_base: Option<ReducedModel>,
}

impl<'a> SynthesisEngine<'a> {
    /// Builds the circuit-level base model (register assignment +
    /// interconnect + multiplexer sizing) once, and — unless presolve is
    /// disabled — runs the reducing pipeline on it once, so the per-k
    /// sweeps clone the *reduced* base instead of the raw one.
    ///
    /// # Errors
    ///
    /// Propagates formulation errors (for example
    /// [`CoreError::TooFewRegisters`]).
    pub fn new(input: &'a SynthesisInput, config: &'a SynthesisConfig) -> Result<Self, CoreError> {
        let mut base = BistFormulation::new(input, config)?;
        base.add_interconnect();
        base.add_mux_sizing();
        let reduced_base = config.solver.presolve.then(|| {
            reduce_prefix(
                &base.model,
                base.model.num_constraints(),
                base.model.num_vars(),
                &ReduceOptions::base(),
            )
        });
        Ok(Self {
            input,
            config,
            base,
            reduced_base,
        })
    }

    /// The shared base formulation (no BIST layer, no objective).
    pub fn base(&self) -> &BistFormulation<'a> {
        &self.base
    }

    /// Reduction counters of the shared base model, or `None` when presolve
    /// is disabled. The reduction runs exactly once per engine (i.e. once
    /// per circuit), in [`SynthesisEngine::new`].
    pub fn base_reduce_report(&self) -> Option<&ReduceReport> {
        self.reduced_base.as_ref().map(|r| &r.report)
    }

    /// Number of modules, i.e. the maximal session count `N` of the sweep.
    pub fn max_sessions(&self) -> usize {
        self.input.binding().num_modules()
    }

    /// Synthesises the non-BIST reference design from a clone of the base
    /// model.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::reference::synthesize_reference`].
    pub fn synthesize_reference(&self) -> Result<ReferenceDesign, CoreError> {
        let mut formulation = self.base.clone();
        formulation.set_reference_objective();
        let mut solver_config = self.config.solver.clone();
        if self.config.warm_start {
            if let Some(values) = formulation.baseline_warm_values() {
                solver_config.initial_solutions.push(values);
            }
        }
        solve_reference_formulation(
            self.config,
            &formulation,
            &solver_config,
            self.reduced_base.as_ref(),
        )
    }

    /// Synthesises the ADVBIST design for one `k`, reusing the base model.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::synthesis::synthesize_bist`].
    pub fn synthesize(&self, k: usize) -> Result<BistDesign, CoreError> {
        self.synthesize_seeded(k, None).map(|o| o.design)
    }

    /// Synthesises one `k`, optionally chaining a previous register
    /// assignment in as an extra warm-start candidate.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::synthesis::synthesize_bist`].
    pub fn synthesize_seeded(
        &self,
        k: usize,
        previous: Option<&RegisterAssignment>,
    ) -> Result<SweepOutcome, CoreError> {
        self.synthesize_inner(k, previous, None, false, None)
    }

    /// [`SynthesisEngine::synthesize_seeded`] with solve-state snapshots:
    /// capture is switched on (an early-stopped solve carries a resumable
    /// [`SolveSnapshot`] on [`BistDesign::snapshot`]) and, when `resume` is
    /// given, the search continues the snapshotted tree instead of starting
    /// a fresh one. A resumed solve that runs to completion reaches exactly
    /// the objective and total node count of an uninterrupted solve — the
    /// snapshot restores the frontier, incumbent, pseudo-costs, cut pool and
    /// warm bases, so no node is explored twice.
    ///
    /// The snapshot must come from a solve of the *same* per-k instance
    /// (same circuit, same `k`, same configuration); the solver rejects
    /// mismatched snapshots with a loud error instead of silently starting
    /// over.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::synthesis::synthesize_bist`], plus
    /// [`bist_ilp::IlpError::Snapshot`] (as [`CoreError::Ilp`]) when the
    /// snapshot does not belong to this instance.
    pub fn synthesize_resumable(
        &self,
        k: usize,
        previous: Option<&RegisterAssignment>,
        resume: Option<Arc<SolveSnapshot>>,
    ) -> Result<SweepOutcome, CoreError> {
        self.synthesize_inner(k, previous, None, true, resume)
    }

    /// Content fingerprint of the full per-k model (constraint matrix,
    /// objective, variable bounds and integrality), before any presolve.
    /// Two engines produce the same fingerprint for a given `k` exactly
    /// when they were built from the same circuit and configuration — this
    /// is the key the job service's cross-job [`SolveCache`] shares results
    /// under.
    ///
    /// [`SolveCache`]: https://docs.rs/advbist
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSessionCount`] if `k` is not in `1..=N`.
    pub fn model_fingerprint(&self, k: usize) -> Result<u64, CoreError> {
        let mut formulation = self.base.clone();
        formulation.add_bist(k)?;
        formulation.set_bist_objective();
        Ok(bist_ilp::model_fingerprint(&formulation.model))
    }

    /// [`SynthesisEngine::synthesize_seeded`] with a live [`SolveEvent`]
    /// stream from the underlying ILP search — incumbents, bound progress,
    /// node milestones and the final `Done`. The observer runs on the
    /// solving thread; an observer that raises the solver config's
    /// [`bist_ilp::CancelToken`] stops the solve with the best design found
    /// so far.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::synthesis::synthesize_bist`].
    pub fn synthesize_observed(
        &self,
        k: usize,
        previous: Option<&RegisterAssignment>,
        observer: &mut dyn FnMut(&SolveEvent),
    ) -> Result<SweepOutcome, CoreError> {
        self.synthesize_inner(k, previous, Some(observer), false, None)
    }

    fn synthesize_inner(
        &self,
        k: usize,
        previous: Option<&RegisterAssignment>,
        observer: Option<&mut dyn FnMut(&SolveEvent)>,
        snapshots: bool,
        resume: Option<Arc<SolveSnapshot>>,
    ) -> Result<SweepOutcome, CoreError> {
        let start = Instant::now();
        let mut formulation = self.base.clone();
        formulation.add_bist(k)?;
        formulation.set_bist_objective();

        let mut solver_config = self.config.solver.clone();
        if snapshots || solver_config.budget.snapshot == Some(true) {
            solver_config.snapshot = true;
        }
        solver_config.resume = resume;
        if self.config.warm_start {
            if let Some(values) = formulation.baseline_warm_values() {
                solver_config.initial_solutions.push(values);
            }
        }
        let mut chained = false;
        if let Some(previous) = previous {
            if let Some(values) = formulation.warm_values_for_assignment(previous) {
                solver_config.initial_solutions.push(values);
                chained = true;
                // A chained incumbent anchors the search well enough that
                // shallow Gomory rounds help from the first descent.
                solver_config.eager_tree_cuts = true;
            }
        }

        let (design, registers) = solve_bist_formulation(
            self.input,
            self.config,
            &formulation,
            &solver_config,
            k,
            self.reduced_base.as_ref(),
            observer,
        )?;
        Ok(SweepOutcome {
            design,
            seconds: start.elapsed().as_secs_f64(),
            chained,
            registers,
        })
    }

    /// Runs the full sweep `k = 1..=N` sequentially, chaining each incumbent
    /// into the next solve.
    ///
    /// # Errors
    ///
    /// Propagates the first error of any individual synthesis.
    pub fn sweep_chained(&self) -> Result<Vec<SweepOutcome>, CoreError> {
        let mut outcomes = Vec::with_capacity(self.max_sessions());
        let mut previous: Option<RegisterAssignment> = None;
        for k in 1..=self.max_sessions() {
            let outcome = self.synthesize_seeded(k, previous.as_ref())?;
            previous = Some(outcome.registers.clone());
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Runs the full sweep `k = 1..=N` across a scoped thread pool. Results
    /// are collected in ascending-k order, so the output is deterministic
    /// regardless of scheduling.
    ///
    /// The worker count is capped at the machine's available parallelism so
    /// wall-clock-limited solves are not diluted by oversubscription; on a
    /// single-core host this is exactly the sequential per-k loop. Each
    /// solve uses the same warm-start candidates as an independent
    /// [`crate::synthesis::synthesize_bist`] call, so the per-k results are
    /// identical to independent rebuild solves under any deterministic
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates the first error (by ascending `k`) of any synthesis.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (which only happens if the solve
    /// itself panics).
    pub fn sweep_parallel(&self) -> Result<Vec<SweepOutcome>, CoreError> {
        let ks: Vec<usize> = (1..=self.max_sessions()).collect();
        par_map_ordered(&ks, |&k| self.synthesize_seeded(k, None))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis;
    use bist_dfg::benchmarks;
    use std::time::Duration;

    #[test]
    fn engine_matches_rebuild_on_figure1() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let rebuild = synthesis::synthesize_all_sessions_rebuild(&input, &config).unwrap();
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        for (outcomes, label) in [
            (engine.sweep_chained().unwrap(), "chained"),
            (engine.sweep_parallel().unwrap(), "parallel"),
        ] {
            assert_eq!(outcomes.len(), rebuild.len(), "{label}");
            for (outcome, baseline) in outcomes.iter().zip(&rebuild) {
                assert_eq!(outcome.design.sessions, baseline.sessions, "{label}");
                assert!(
                    (outcome.design.objective - baseline.objective).abs() < 1e-6,
                    "{label} k={}: engine {} vs rebuild {}",
                    baseline.sessions,
                    outcome.design.objective,
                    baseline.objective
                );
                assert_eq!(
                    outcome.design.area.total(),
                    baseline.area.total(),
                    "{label} k={}",
                    baseline.sessions
                );
            }
        }
    }

    #[test]
    fn chained_sweep_chains_every_k_after_the_first() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        let outcomes = engine.sweep_chained().unwrap();
        assert!(!outcomes[0].chained);
        for outcome in outcomes.iter().skip(1) {
            assert!(outcome.chained, "k={} not chained", outcome.design.sessions);
        }
    }

    #[test]
    fn engine_reference_matches_standalone_reference() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let standalone = crate::reference::synthesize_reference(&input, &config).unwrap();
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        let via_engine = engine.synthesize_reference().unwrap();
        assert_eq!(standalone.area.total(), via_engine.area.total());
        assert!(via_engine.optimal);
    }

    #[test]
    fn parallel_sweep_under_time_budget_returns_all_k() {
        let input = benchmarks::tseng();
        let config = SynthesisConfig::time_boxed(Duration::from_millis(200));
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        let outcomes = engine.sweep_parallel().unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.design.sessions, i + 1);
        }
    }

    #[test]
    fn engine_reduces_the_base_once_and_lowers_node_counts() {
        use bist_ilp::{BoundMode, SolverConfig};
        let input = benchmarks::figure1();
        let reduce_config = SynthesisConfig {
            solver: SolverConfig::exact().with_bound_mode(BoundMode::LpRelaxation),
            ..SynthesisConfig::default()
        };
        let mut plain_config = reduce_config.clone();
        plain_config.solver.presolve = false;
        plain_config.solver.cuts = false;

        let reduced_engine = SynthesisEngine::new(&input, &reduce_config).unwrap();
        let plain_engine = SynthesisEngine::new(&input, &plain_config).unwrap();
        // The base reduction exists exactly when presolve is on, and it must
        // actually shrink the base model.
        assert!(plain_engine.base_reduce_report().is_none());
        let report = reduced_engine.base_reduce_report().expect("base reduced");
        assert!(report.var_reduction_ratio() > 0.0, "{report:?}");

        // At equal bound mode, reduce+cuts must strictly lower the total
        // branch-and-bound node count of the sweep (the PR-2 acceptance
        // criterion), without changing any objective.
        let reduced_sweep = reduced_engine.sweep_parallel().unwrap();
        let plain_sweep = plain_engine.sweep_parallel().unwrap();
        let reduced_nodes: u64 = reduced_sweep.iter().map(|o| o.design.stats.nodes).sum();
        let plain_nodes: u64 = plain_sweep.iter().map(|o| o.design.stats.nodes).sum();
        assert!(
            reduced_nodes < plain_nodes,
            "reduce+cuts explored {reduced_nodes} nodes vs {plain_nodes} without"
        );
        for (reduced, plain) in reduced_sweep.iter().zip(&plain_sweep) {
            assert!((reduced.design.objective - plain.design.objective).abs() < 1e-6);
            assert!(reduced.design.stats.presolve_vars_removed > 0);
        }
    }

    #[test]
    fn warm_sweep_spends_fewer_simplex_iterations_than_cold_on_figure1() {
        use bist_ilp::{BoundMode, SolverConfig};
        let input = benchmarks::figure1();
        let warm_config = SynthesisConfig {
            solver: SolverConfig::exact().with_bound_mode(BoundMode::LpRelaxation),
            ..SynthesisConfig::default()
        };
        let mut cold_config = warm_config.clone();
        cold_config.solver.lp_warm_start = false;
        cold_config.solver.rc_fixing = false;

        let warm_engine = SynthesisEngine::new(&input, &warm_config).unwrap();
        let cold_engine = SynthesisEngine::new(&input, &cold_config).unwrap();
        let warm = sweep_search_stats(&warm_engine.sweep_parallel().unwrap());
        let cold = sweep_search_stats(&cold_engine.sweep_parallel().unwrap());

        // The warm path must actually engage, and the full k-sweep must
        // spend strictly fewer simplex iterations than the cold two-phase
        // search at the same LP bound mode.
        assert!(warm.warm_lp_solves > 0, "{warm:?}");
        assert!(
            warm.lp_iterations < cold.lp_iterations,
            "warm sweep spent {} iterations vs cold {}",
            warm.lp_iterations,
            cold.lp_iterations
        );
        // The counter split is coherent: primal + dual pivots cover the
        // total, and the warm sweep actually spends dual pivots.
        assert_eq!(
            warm.lp_iterations,
            warm.lp_primal_iterations + warm.lp_dual_iterations,
            "{warm:?}"
        );
        assert!(warm.lp_dual_iterations > 0, "{warm:?}");
        // The cold configuration takes the plain LP path: no warm solves,
        // no dual pivots, no node-level refactorisation accounting.
        assert_eq!(cold.warm_lp_solves, 0, "{cold:?}");
        assert_eq!(cold.refactorizations, 0, "{cold:?}");
        assert_eq!(cold.lp_dual_iterations, 0, "{cold:?}");
    }

    #[test]
    fn observed_synthesis_streams_events_and_matches_the_blind_solve() {
        use bist_ilp::SolveEvent;
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        let blind = engine.synthesize(1).unwrap();
        let mut events: Vec<SolveEvent> = Vec::new();
        let observed = engine
            .synthesize_observed(1, None, &mut |event| events.push(event.clone()))
            .unwrap();
        assert_eq!(observed.design.area.total(), blind.area.total());
        assert!((observed.design.objective - blind.objective).abs() < 1e-9);
        // The stream ends with Done and carried at least one incumbent
        // (the warm start at minimum), whose final value is the objective.
        assert!(matches!(events.last(), Some(SolveEvent::Done { .. })));
        let last_incumbent = events
            .iter()
            .rev()
            .find_map(|e| match e {
                SolveEvent::Incumbent { objective, .. } => Some(*objective),
                _ => None,
            })
            .expect("at least one incumbent event");
        assert!((last_incumbent - blind.objective).abs() < 1e-6);
    }

    #[test]
    fn cancelled_sweep_solve_returns_the_warm_incumbent() {
        use bist_ilp::CancelToken;
        let input = benchmarks::tseng();
        let token = CancelToken::new();
        token.cancel();
        let mut config = SynthesisConfig::exact();
        config.solver.cancel = Some(token);
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        // The warm-start baseline is installed before the (immediately
        // cancelled) tree search, so a valid non-optimal design comes back.
        let outcome = engine.synthesize_seeded(1, None).unwrap();
        assert!(!outcome.design.optimal);
        assert_eq!(outcome.design.stats.nodes, 0);
        assert!(outcome.design.area.total() > 0);
    }

    #[test]
    fn single_solve_via_engine_is_a_valid_design() {
        let input = benchmarks::paulin();
        let config = SynthesisConfig::time_boxed(Duration::from_millis(300));
        let engine = SynthesisEngine::new(&input, &config).unwrap();
        let design = engine.synthesize(engine.max_sessions()).unwrap();
        assert_eq!(design.sessions, engine.max_sessions());
        assert!(design.area.total() > 0);
    }
}
