//! # bist-core — ADVBIST: built-in self-testable data path synthesis by ILP
//!
//! This crate implements the contribution of the DAC'99 paper *"On ILP
//! Formulations for Built-In Self-Testable Data Path Synthesis"* (Kim, Ha,
//! Takahashi): system register assignment, BIST register assignment (test
//! pattern generators, signature registers, BILBOs and concurrent BILBOs) and
//! interconnection/multiplexer assignment are formulated as **one** 0-1
//! integer linear program per k-test session and solved to (time-limited)
//! optimality, so the resulting self-testable data path is minimal in
//! register + multiplexer area.
//!
//! Two entry points cover the paper's experimental flow:
//!
//! * [`reference::synthesize_reference`] — the non-BIST, area-optimal data
//!   path used as the overhead baseline ("the reference circuits were
//!   obtained through an ILP for data path synthesis", Section 4.1),
//! * [`synthesis::synthesize_bist`] — the ADVBIST design for a chosen number
//!   of sub-test sessions `k` (1 ≤ k ≤ number of modules), Section 3.
//!
//! ```no_run
//! use bist_core::{SynthesisConfig, reference, synthesis};
//! use bist_dfg::benchmarks;
//!
//! # fn main() -> Result<(), bist_core::CoreError> {
//! let input = benchmarks::figure1();
//! let config = SynthesisConfig::default();
//! let reference = reference::synthesize_reference(&input, &config)?;
//! let bist = synthesis::synthesize_bist(&input, 2, &config)?;
//! println!(
//!     "area overhead for a 2-test session: {:.1}%",
//!     bist.overhead_percent(reference.area.total())
//! );
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod extract;
pub mod formulation;
pub mod reference;
pub mod synthesis;

pub use config::{ModuleBindingMode, SynthesisConfig};
pub use engine::{SweepOutcome, SynthesisEngine};
pub use error::CoreError;
pub use reference::ReferenceDesign;
pub use synthesis::BistDesign;
