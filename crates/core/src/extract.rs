//! Extraction of data paths and test plans from ILP solutions.

use bist_datapath::test_plan::{TestPlan, TpgSource};
use bist_datapath::Datapath;
use bist_dfg::allocate::RegisterAssignment;
use bist_ilp::Solution;

use crate::error::CoreError;
use crate::formulation::BistFormulation;

/// Reads the register assignment (`x_{vr}` variables) out of a solution.
pub fn register_assignment(
    formulation: &BistFormulation<'_>,
    solution: &Solution,
) -> RegisterAssignment {
    let dfg = formulation.input.dfg();
    let mut register_of = vec![None; dfg.num_vars()];
    for v in dfg.register_variables() {
        for r in 0..formulation.num_registers() {
            if let Some(x) = formulation.x_var(v.index(), r) {
                if solution.is_one(x) {
                    register_of[v.index()] = Some(r);
                    break;
                }
            }
        }
    }
    RegisterAssignment::from_parts(register_of, formulation.num_registers())
}

/// Builds the data path implied by a solution's register assignment.
///
/// The interconnect is derived from the DFG edges under that assignment; the
/// no-adverse-path constraints of the formulation guarantee the solution's
/// `z` variables describe exactly the same wire set.
///
/// # Errors
///
/// Returns an error if a register variable ended up unassigned, which would
/// indicate a violated assignment constraint (i.e. a solver bug).
pub fn datapath(
    formulation: &BistFormulation<'_>,
    solution: &Solution,
) -> Result<Datapath, CoreError> {
    let assignment = register_assignment(formulation, solution);
    let width = formulation.config.cost.width();
    Ok(Datapath::from_register_assignment(
        formulation.input,
        &assignment,
        width,
    )?)
}

/// Reads the BIST register assignment (`s_{mrp}`, `t_{rmlp}`) out of a
/// solution and assembles the k-test-session test plan, including dedicated
/// generators for constant-only ports (Section 3.3.4).
pub fn test_plan(formulation: &BistFormulation<'_>, solution: &Solution) -> TestPlan {
    let k = formulation.num_sessions();
    let num_modules = formulation.input.binding().num_modules();
    let mut plan = TestPlan::with_sessions(k);

    // Signature registers decide which sub-session tests each module.
    let mut session_of_module = vec![0usize; num_modules];
    for (m, session_slot) in session_of_module.iter_mut().enumerate() {
        'search: for p in 0..k {
            for r in 0..formulation.num_registers() {
                if let Some(s) = formulation.s_var(m, r, p) {
                    if solution.is_one(s) {
                        plan.sessions[p].modules.push(m);
                        plan.sessions[p].sr.insert(m, r);
                        *session_slot = p;
                        break 'search;
                    }
                }
            }
        }
    }

    // TPGs for register-fed ports.
    for &(m, l) in formulation.register_fed_ports.iter() {
        for p in 0..k {
            for r in 0..formulation.num_registers() {
                if let Some(t) = formulation.t_var(r, m, l, p) {
                    if solution.is_one(t) {
                        plan.sessions[p].tpg.insert((m, l), TpgSource::Register(r));
                    }
                }
            }
        }
    }

    // Constant-only ports get a dedicated generator in the module's session.
    for &(m, l) in formulation.constant_only_ports() {
        let p = session_of_module[m];
        plan.sessions[p]
            .tpg
            .insert((m, l), TpgSource::ConstantGenerator);
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;
    use bist_ilp::SolverConfig;

    #[test]
    fn reference_solution_round_trips_into_a_datapath() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.set_reference_objective();
        let solution = f.model.solve(&SolverConfig::exact()).unwrap();
        assert!(solution.is_optimal());
        let assignment = register_assignment(&f, &solution);
        assert!(assignment.is_valid(f.lifetimes()));
        assert_eq!(assignment.num_registers(), 3);
        let dp = datapath(&f, &solution).unwrap();
        assert_eq!(dp.num_registers(), 3);
        assert_eq!(dp.num_modules(), 2);
    }

    #[test]
    fn bist_solution_round_trips_into_a_plan() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.add_bist(2).unwrap();
        f.set_bist_objective();
        let solution = f.model.solve(&SolverConfig::exact()).unwrap();
        assert!(solution.is_feasible());
        let plan = test_plan(&f, &solution);
        assert_eq!(plan.num_sessions(), 2);
        // Both modules are tested exactly once.
        let mut tested = plan.modules_tested();
        tested.sort_unstable();
        assert_eq!(tested, vec![0, 1]);
        // Every register-fed port of a tested module has a TPG somewhere.
        for &(m, l) in f.register_fed_ports.iter() {
            let found = plan.sessions.iter().any(|s| s.tpg.contains_key(&(m, l)));
            assert!(found, "port ({m},{l}) has no TPG");
        }
    }
}
