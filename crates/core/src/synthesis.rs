//! ADVBIST synthesis: one optimal BIST data path per k-test session.

use bist_datapath::report::DesignReport;
use bist_datapath::validate::validate_design;
use bist_datapath::{AreaBreakdown, Datapath, TestPlan};
use bist_dfg::allocate::RegisterAssignment;
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;
use bist_ilp::reduce::{self, ReduceOptions, ReducedModel};
use bist_ilp::{Solution, SolveEvent, SolveSession, SolveStats, SolverConfig, Status};

use crate::config::SynthesisConfig;
use crate::engine::SynthesisEngine;
use crate::error::CoreError;
use crate::extract;
use crate::formulation::BistFormulation;

/// A synthesised self-testable data path for one k-test session.
#[derive(Debug, Clone)]
pub struct BistDesign {
    /// The data path, with every register carrying its reconfiguration kind.
    pub datapath: Datapath,
    /// The k-test-session plan (which module is tested when, with which
    /// TPGs and signature register).
    pub plan: TestPlan,
    /// Area breakdown under the configured cost model.
    pub area: AreaBreakdown,
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Whether the ILP proved this design area-optimal within its limits.
    pub optimal: bool,
    /// Objective value reported by the solver (includes the constant-port
    /// generator penalty, so it can exceed the register+mux area).
    pub objective: f64,
    /// Solver statistics of the main solve.
    pub stats: SolveStats,
    /// Resumable solve state, present when the solve stopped early (node
    /// budget, cancellation, deadline) *and* snapshot capture was enabled
    /// (see [`SynthesisEngine::synthesize_resumable`] and
    /// [`bist_ilp::Budget::snapshot`]). Feed it back through
    /// [`SynthesisEngine::synthesize_resumable`] to continue the very same
    /// branch-and-bound tree. `None` for completed solves.
    pub snapshot: Option<std::sync::Arc<bist_ilp::SolveSnapshot>>,
}

impl BistDesign {
    /// Area overhead in percent against a reference area.
    pub fn overhead_percent(&self, reference_area: u64) -> f64 {
        self.area.overhead_percent(reference_area)
    }

    /// Packages the design as a Table 3 style report row.
    pub fn report(&self, method: &str, circuit: &str, reference_area: u64) -> DesignReport {
        DesignReport {
            method: method.to_string(),
            circuit: circuit.to_string(),
            test_sessions: self.sessions,
            breakdown: self.area.clone(),
            reference_area,
        }
    }
}

/// Synthesises the ADVBIST design for a `k`-test session.
///
/// The full concurrent model (register + BIST register + interconnection
/// assignment) is solved with the configured limits. With
/// [`SynthesisConfig::warm_start`] enabled, the sequential design — left-edge
/// register assignment plus a greedy BIST role assignment — is encoded as the
/// solver's initial incumbent, so even under a tight time limit the returned
/// design is at least as good as what a sequential flow would produce; the
/// branch and bound then spends its budget improving on it concurrently.
///
/// # Errors
///
/// * [`CoreError::InvalidSessionCount`] if `k` is not in `1..=N`,
/// * [`CoreError::Infeasible`] if no BIST design exists for this `k`,
/// * [`CoreError::NoSolutionWithinLimits`] if the limits expired before any
///   feasible design was found,
/// * [`CoreError::Validation`] if the extracted design fails the structural
///   or BIST validator (a formulation bug, never expected).
pub fn synthesize_bist(
    input: &SynthesisInput,
    k: usize,
    config: &SynthesisConfig,
) -> Result<BistDesign, CoreError> {
    let mut formulation = BistFormulation::new(input, config)?;
    formulation.add_interconnect();
    formulation.add_mux_sizing();
    formulation.add_bist(k)?;
    formulation.set_bist_objective();

    let mut solver_config = config.solver.clone();
    if config.warm_start {
        if let Some(values) = formulation.baseline_warm_values() {
            solver_config.initial_solution = Some(values);
        }
    }
    solve_bist_formulation(input, config, &formulation, &solver_config, k, None, None)
        .map(|(d, _)| d)
}

/// Solves a fully-built formulation through the reducing presolve, as one
/// observable solve session.
///
/// With [`SolverConfig::presolve`] enabled (the default) the circuit-level
/// base prefix of the model (everything before the BIST delta, see
/// [`BistFormulation::base_dims`]) is reduced with the delta-safe pass set
/// and the delta rows plus the objective are replayed through the variable
/// map; the branch and bound then explores the reduced model and the
/// solution is lifted back. The caller may pass a pre-computed reduced base
/// (the [`SynthesisEngine`] builds it once per circuit); when `None`, the
/// reduction is computed here from the same prefix, so the rebuild-per-k
/// path and the engine run bit-identical searches.
///
/// The solver's budget and cancellation token travel inside
/// `solver_config`; `observer`, when given, receives the live
/// [`SolveEvent`] stream of the underlying search (including the final
/// [`SolveEvent::Done`]).
///
/// # Errors
///
/// Propagates solver errors.
pub(crate) fn solve_formulation(
    formulation: &BistFormulation<'_>,
    solver_config: &SolverConfig,
    reduced_base: Option<&ReducedModel>,
    mut observer: Option<&mut dyn FnMut(&SolveEvent)>,
) -> Result<Solution, CoreError> {
    if !solver_config.presolve {
        // The plain path *is* a solve session (which emits `Done` itself).
        let session = SolveSession::with_config(&formulation.model, solver_config.clone());
        return Ok(match observer.as_mut() {
            Some(observer) => session.on_event(|event| observer(event)).solve()?,
            None => session.solve()?,
        });
    }
    let computed;
    let base = match reduced_base {
        Some(base) => base,
        None => {
            let (rows, vars) = formulation.base_dims();
            computed =
                reduce::reduce_prefix(&formulation.model, rows, vars, &ReduceOptions::base());
            &computed
        }
    };
    // Replay the BIST delta and the objective through the base's variable
    // map, then run the full pipeline once more so the delta rows (the
    // aggregated OR/BILBO structure) get reduced and disaggregated too.
    let extended = base.extend(&formulation.model)?;
    let full = extended.compose(reduce::reduce(&extended.model, &ReduceOptions::full()));
    let solution = match observer.as_mut() {
        Some(observer) => {
            let mut forward = |event: &SolveEvent| observer(event);
            reduce::solve_reduced_with_events(
                &formulation.model,
                &full,
                solver_config,
                Some(&mut forward),
            )?
        }
        None => reduce::solve_reduced(&formulation.model, &full, solver_config)?,
    };
    if let Some(observer) = observer.as_mut() {
        observer(&SolveEvent::Done {
            status: solution.status(),
            nodes: solution.stats().nodes,
            pivots: (
                solution.stats().lp_primal_pivots,
                solution.stats().lp_dual_pivots,
            ),
            pricing_pivots: (
                solution.stats().devex_pivots,
                solution.stats().dantzig_pivots,
                solution.stats().bland_pivots,
            ),
            cuts_emitted: solution.stats().cuts_emitted,
            cuts_active: solution.stats().cuts_active,
        });
    }
    Ok(solution)
}

/// Solves a fully-built BIST formulation, extracts the design and validates
/// it. Shared by the per-k rebuild path above and the layered
/// [`SynthesisEngine`]; also returns the register assignment so sweeps can
/// chain it into the next solve.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_bist_formulation(
    input: &SynthesisInput,
    config: &SynthesisConfig,
    formulation: &BistFormulation<'_>,
    solver_config: &SolverConfig,
    k: usize,
    reduced_base: Option<&ReducedModel>,
    observer: Option<&mut dyn FnMut(&SolveEvent)>,
) -> Result<(BistDesign, RegisterAssignment), CoreError> {
    let solution = solve_formulation(formulation, solver_config, reduced_base, observer)?;

    let (chosen, optimal) = match solution.status() {
        Status::Optimal => (solution, true),
        Status::Feasible => (solution, false),
        // A cancelled solve that already holds an incumbent still yields a
        // valid (non-optimal) design; with no incumbent there is nothing to
        // extract.
        Status::Interrupted if solution.is_feasible() => (solution, false),
        Status::Interrupted => return Err(CoreError::Interrupted),
        Status::Infeasible => return Err(CoreError::Infeasible { sessions: k }),
        _ => return Err(CoreError::NoSolutionWithinLimits),
    };

    let registers = extract::register_assignment(formulation, &chosen);
    let mut datapath = extract::datapath(formulation, &chosen)?;
    let plan = extract::test_plan(formulation, &chosen);
    plan.apply_register_kinds(&mut datapath);

    let lifetimes = LifetimeTable::with_timing(input, config.input_timing)?;
    validate_design(&datapath, &plan, input, &lifetimes)?;
    if config.rtl_validation {
        // Observational only: the solution is already fixed, the pass just
        // proves its test plan works in the emitted netlist.
        bist_rtl::validate_simulated(&datapath, &plan, &bist_rtl::SimConfig::default())?;
    }

    let area = datapath.area(&config.cost);
    let snapshot = chosen.shared_snapshot();
    Ok((
        BistDesign {
            datapath,
            plan,
            area,
            sessions: k,
            optimal,
            objective: chosen.objective(),
            stats: chosen.stats().clone(),
            snapshot,
        },
        registers,
    ))
}

/// Synthesises one design per k-test session, k = 1..=N (N = number of
/// modules) — the sweep reported in Table 2 of the paper.
///
/// The sweep runs on the layered [`SynthesisEngine`]: the circuit-level base
/// model is built once and every `k` applies its BIST delta onto a clone,
/// with the solves spread across a scoped thread pool capped at the
/// machine's available parallelism (on a single core this is exactly the
/// sequential loop). Note that with a wall-clock limit ([`SolverConfig::budget`])
/// concurrent solves share the machine, trading some per-solve search depth
/// for sweep wall-clock; under deterministic budgets (node limits) the per-k
/// results are identical to independent solves. Results are returned in
/// ascending-k order regardless of thread scheduling. Use
/// [`synthesize_all_sessions_rebuild`] for the sequential rebuild-per-k
/// behaviour (kept as the benchmark baseline).
///
/// # Errors
///
/// Propagates the first error of any individual synthesis.
pub fn synthesize_all_sessions(
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<Vec<BistDesign>, CoreError> {
    let engine = SynthesisEngine::new(input, config)?;
    Ok(engine
        .sweep_parallel()?
        .into_iter()
        .map(|outcome| outcome.design)
        .collect())
}

/// The pre-engine sweep: a fresh formulation is built and solved for every
/// `k`, sequentially. This is the baseline the `BENCH_sweep.json` comparison
/// measures the engine against.
///
/// # Errors
///
/// Propagates the first error of any individual synthesis.
pub fn synthesize_all_sessions_rebuild(
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<Vec<BistDesign>, CoreError> {
    let n = input.binding().num_modules();
    (1..=n).map(|k| synthesize_bist(input, k, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::synthesize_reference;
    use bist_datapath::TestRegisterKind;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_one_test_session_is_valid_and_optimal() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let design = synthesize_bist(&input, 1, &config).unwrap();
        assert!(design.optimal);
        assert_eq!(design.sessions, 1);
        assert_eq!(design.plan.num_sessions(), 1);
        // Both modules tested concurrently.
        assert_eq!(design.plan.sessions[0].modules.len(), 2);
        // At least one register must compact and at least one must generate.
        let kinds: Vec<TestRegisterKind> = (0..design.datapath.num_registers())
            .map(|r| design.datapath.register_kind(r))
            .collect();
        assert!(kinds.iter().any(|k| k.can_compact()));
        assert!(kinds.iter().any(|k| k.can_generate()));
    }

    #[test]
    fn figure1_two_test_sessions_cost_no_more_than_one() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let reference = synthesize_reference(&input, &config).unwrap();
        let k1 = synthesize_bist(&input, 1, &config).unwrap();
        let k2 = synthesize_bist(&input, 2, &config).unwrap();
        // More test sessions means weaker concurrency requirements, so the
        // optimal area can only stay equal or shrink (the paper's Table 2
        // shows exactly this monotone trend).
        assert!(k2.area.total() <= k1.area.total());
        // And both must cost at least the reference.
        assert!(k1.area.total() >= reference.area.total());
        assert!(k1.overhead_percent(reference.area.total()) >= 0.0);
    }

    #[test]
    fn invalid_session_counts_are_rejected() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        assert!(matches!(
            synthesize_bist(&input, 0, &config),
            Err(CoreError::InvalidSessionCount { .. })
        ));
        assert!(matches!(
            synthesize_bist(&input, 5, &config),
            Err(CoreError::InvalidSessionCount { .. })
        ));
    }

    #[test]
    fn sweep_covers_every_session_count() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let designs = synthesize_all_sessions(&input, &config).unwrap();
        assert_eq!(designs.len(), 2);
        assert_eq!(designs[0].sessions, 1);
        assert_eq!(designs[1].sessions, 2);
    }

    #[test]
    fn time_boxed_synthesis_still_returns_a_valid_design() {
        let input = benchmarks::tseng();
        let config = SynthesisConfig::time_boxed(std::time::Duration::from_millis(500));
        let design = synthesize_bist(&input, 3, &config).unwrap();
        assert_eq!(design.sessions, 3);
        assert_eq!(design.datapath.num_registers(), 5);
        // The validator ran inside synthesize_bist; re-run it here for good
        // measure.
        let lifetimes = LifetimeTable::new(&input).unwrap();
        validate_design(&design.datapath, &design.plan, &input, &lifetimes).unwrap();
    }

    #[test]
    fn rtl_validation_flag_simulates_every_extracted_design() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact().with_rtl_validation(true);
        for k in 1..=2 {
            let design = synthesize_bist(&input, k, &config).unwrap();
            // The flag is observational: re-running the pass standalone on
            // the returned design reproduces a clean report with full
            // per-session coverage.
            let report = bist_rtl::validate_simulated(
                &design.datapath,
                &design.plan,
                &bist_rtl::SimConfig::default(),
            )
            .unwrap();
            assert_eq!(report.sessions.len(), k);
        }
        // And the flag never changes the solution itself.
        let with = synthesize_bist(&input, 2, &config).unwrap();
        let without = synthesize_bist(&input, 2, &SynthesisConfig::exact()).unwrap();
        assert_eq!(with.area.total(), without.area.total());
        assert_eq!(with.plan, without.plan);
        assert_eq!(with.datapath, without.datapath);
    }

    #[test]
    fn report_row_carries_the_method_and_circuit() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let reference = synthesize_reference(&input, &config).unwrap();
        let design = synthesize_bist(&input, 2, &config).unwrap();
        let report = design.report("ADVBIST", "figure1", reference.area.total());
        assert_eq!(report.method, "ADVBIST");
        assert_eq!(report.circuit, "figure1");
        assert!(report.overhead_percent() >= 0.0);
    }
}
