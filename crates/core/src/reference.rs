//! The reference (non-BIST) area-optimal data path.
//!
//! Section 4.1 of the paper: *"The reference circuits, which were used to
//! measure the area overhead of BIST designs, were obtained through an ILP
//! for data path synthesis. The reference circuits are optimal in area."*
//! This module is that ILP: register assignment + interconnect + multiplexer
//! assignment minimising register-plus-multiplexer transistor count, with no
//! BIST variables.

use bist_datapath::{AreaBreakdown, Datapath};
use bist_dfg::SynthesisInput;
use bist_ilp::{SolveStats, SolverConfig, Status};

use crate::config::SynthesisConfig;
use crate::error::CoreError;
use crate::extract;
use crate::formulation::BistFormulation;

/// The synthesised reference data path and how it was obtained.
#[derive(Debug, Clone)]
pub struct ReferenceDesign {
    /// The data path (all registers plain).
    pub datapath: Datapath,
    /// Its area breakdown under the configured cost model.
    pub area: AreaBreakdown,
    /// Whether the ILP proved the design optimal within its limits.
    pub optimal: bool,
    /// Solver statistics of the main solve.
    pub stats: SolveStats,
}

/// Synthesises the reference data path for a scheduled DFG.
///
/// When [`SynthesisConfig::warm_start`] is enabled (the default) the
/// left-edge register assignment is converted into a complete feasible
/// assignment of the model and handed to the solver as its initial
/// incumbent, so this function returns a valid data path no worse than the
/// left-edge design even under a tight time limit.
///
/// # Errors
///
/// Returns an error if the synthesis input is inconsistent or the model is
/// infeasible (which cannot happen for a valid schedule with enough
/// registers).
pub fn synthesize_reference(
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<ReferenceDesign, CoreError> {
    let mut formulation = BistFormulation::new(input, config)?;
    formulation.add_interconnect();
    formulation.add_mux_sizing();
    formulation.set_reference_objective();

    let mut solver_config = config.solver.clone();
    if config.warm_start {
        if let Some(values) = formulation.baseline_warm_values() {
            solver_config.initial_solution = Some(values);
        }
    }
    solve_reference_formulation(config, &formulation, &solver_config, None)
}

/// Solves a fully-built reference formulation and extracts the design.
/// Shared by [`synthesize_reference`] and the layered
/// [`crate::engine::SynthesisEngine`] (which hands in its shared reduced
/// base model).
pub(crate) fn solve_reference_formulation(
    config: &SynthesisConfig,
    formulation: &BistFormulation<'_>,
    solver_config: &SolverConfig,
    reduced_base: Option<&bist_ilp::ReducedModel>,
) -> Result<ReferenceDesign, CoreError> {
    let solution =
        crate::synthesis::solve_formulation(formulation, solver_config, reduced_base, None)?;

    let (chosen, optimal) = match solution.status() {
        Status::Optimal => (solution, true),
        Status::Feasible => (solution, false),
        Status::Interrupted if solution.is_feasible() => (solution, false),
        Status::Interrupted => return Err(CoreError::Interrupted),
        Status::Infeasible => return Err(CoreError::Infeasible { sessions: 0 }),
        _ => return Err(CoreError::NoSolutionWithinLimits),
    };

    let datapath = extract::datapath(formulation, &chosen)?;
    let area = datapath.area(&config.cost);
    Ok(ReferenceDesign {
        datapath,
        area,
        optimal,
        stats: chosen.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;
    use bist_dfg::lifetime::LifetimeTable;

    #[test]
    fn figure1_reference_is_optimal_and_minimal() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let design = synthesize_reference(&input, &config).unwrap();
        assert!(design.optimal);
        assert_eq!(design.datapath.num_registers(), 3);
        // Three plain registers plus whatever multiplexers the wiring needs.
        assert_eq!(design.area.register_area, 3 * 208);
        assert!(design.area.total() >= 3 * 208);
        // The ILP may not use *more* mux inputs than the left-edge baseline.
        let table = LifetimeTable::new(&input).unwrap();
        let baseline = bist_dfg::allocate::left_edge(&table);
        let baseline_dp =
            bist_datapath::Datapath::from_register_assignment(&input, &baseline, 8).unwrap();
        let baseline_area = baseline_dp.area(&config.cost);
        assert!(design.area.total() <= baseline_area.total());
    }

    #[test]
    fn warm_start_and_cold_start_agree_on_figure1() {
        let input = benchmarks::figure1();
        let warm = SynthesisConfig::exact();
        let cold = SynthesisConfig {
            warm_start: false,
            ..SynthesisConfig::exact()
        };
        let a = synthesize_reference(&input, &warm).unwrap();
        let b = synthesize_reference(&input, &cold).unwrap();
        assert!(a.optimal && b.optimal);
        assert_eq!(a.area.total(), b.area.total());
    }

    #[test]
    fn time_boxed_reference_still_returns_a_design() {
        let input = benchmarks::tseng();
        let config = SynthesisConfig::time_boxed(std::time::Duration::from_millis(200));
        let design = synthesize_reference(&input, &config).unwrap();
        assert_eq!(design.datapath.num_registers(), 5);
        assert!(design.area.total() > 0);
    }
}
