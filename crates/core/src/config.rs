//! Configuration of the ADVBIST synthesis runs.

use std::time::Duration;

use bist_datapath::CostModel;
use bist_dfg::InputTiming;
use bist_ilp::{BoundMode, Budget, SolverConfig};

/// How the operation→module binding enters the formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModuleBindingMode {
    /// Use the binding carried by the [`bist_dfg::SynthesisInput`] as fixed
    /// constants (the paper's setting: "scheduling and module assignment have
    /// been completed", Section 2).
    #[default]
    Fixed,
}

/// Configuration shared by the reference and the BIST synthesis ILPs.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Transistor cost model (defaults to the paper's 8-bit Table 1).
    pub cost: CostModel,
    /// Number of data path registers; `None` uses the minimum (the maximal
    /// horizontal crossing), which is what the paper's experiments do.
    pub num_registers: Option<usize>,
    /// When primary inputs are loaded into registers.
    pub input_timing: InputTiming,
    /// Apply the Section 3.5 search-space reduction (pre-assign a maximum
    /// clique of mutually incompatible variables to distinct registers).
    pub search_space_reduction: bool,
    /// Model pseudo-input-port swapping for commutative operations
    /// (Eq. (3)); operations with a constant operand are never swapped.
    pub commutative_swapping: bool,
    /// How module binding is handled.
    pub binding_mode: ModuleBindingMode,
    /// Solve the register-assignment-only ILP first and use its solution to
    /// warm-start the full concurrent model. Guarantees a feasible design
    /// even when the time limit is too small to explore the joint space.
    pub warm_start: bool,
    /// Run the RTL back-end's simulated validation
    /// ([`bist_rtl::validate_simulated`]) on every extracted design: emit
    /// the netlist, simulate each sub-test session cycle by cycle and fail
    /// unless every module under test is provably exercised and observed.
    /// Purely observational — it runs after extraction and never perturbs
    /// the ILP search. Off by default (it costs a few simulation passes per
    /// design).
    pub rtl_validation: bool,
    /// Branch-and-bound configuration for the underlying solver.
    pub solver: SolverConfig,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::eight_bit(),
            num_registers: None,
            input_timing: InputTiming::JustInTime,
            search_space_reduction: true,
            commutative_swapping: false,
            binding_mode: ModuleBindingMode::Fixed,
            warm_start: true,
            rtl_validation: false,
            solver: SolverConfig {
                budget: Budget::time(Duration::from_secs(30)),
                bound_mode: BoundMode::Hybrid { lp_depth: 2 },
                ..SolverConfig::default()
            },
        }
    }
}

impl SynthesisConfig {
    /// A configuration that solves small models exactly (no time limit, LP
    /// bounds everywhere). Use only for circuits of the size of the paper's
    /// Figure 1 example or in tests.
    pub fn exact() -> Self {
        Self {
            solver: SolverConfig::exact(),
            ..Self::default()
        }
    }

    /// A configuration with the given wall-clock budget per ILP solve; this
    /// mirrors the paper's 24-CPU-hour cap, scaled to interactive runs.
    pub fn time_boxed(limit: Duration) -> Self {
        Self::budgeted(Budget::time(limit))
    }

    /// A configuration under an arbitrary [`Budget`] per ILP solve — the
    /// preset the job service builds on (node limits for deterministic
    /// sweeps, wall-clock limits for interactive runs, deadlines for
    /// batches).
    pub fn budgeted(budget: Budget) -> Self {
        Self {
            solver: SolverConfig {
                budget,
                bound_mode: BoundMode::Hybrid { lp_depth: 1 },
                ..SolverConfig::default()
            },
            ..Self::default()
        }
    }

    /// Builder-style setter for the register count.
    pub fn with_registers(mut self, registers: usize) -> Self {
        self.num_registers = Some(registers);
        self
    }

    /// Builder-style setter for the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style toggle for the search-space reduction.
    pub fn with_search_space_reduction(mut self, enabled: bool) -> Self {
        self.search_space_reduction = enabled;
        self
    }

    /// Builder-style toggle for commutative-port swapping.
    pub fn with_commutative_swapping(mut self, enabled: bool) -> Self {
        self.commutative_swapping = enabled;
        self
    }

    /// Builder-style setter for the solver configuration.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Builder-style toggle for the simulated RTL validation pass.
    pub fn with_rtl_validation(mut self, enabled: bool) -> Self {
        self.rtl_validation = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let config = SynthesisConfig::default();
        assert_eq!(config.cost.width(), 8);
        assert!(config.num_registers.is_none());
        assert!(config.search_space_reduction);
        assert_eq!(config.binding_mode, ModuleBindingMode::Fixed);
    }

    #[test]
    fn builders_compose() {
        let config = SynthesisConfig::exact()
            .with_registers(6)
            .with_search_space_reduction(false)
            .with_commutative_swapping(true);
        assert_eq!(config.num_registers, Some(6));
        assert!(!config.search_space_reduction);
        assert!(config.commutative_swapping);
        assert!(config.solver.budget.is_unlimited());
        let boxed = SynthesisConfig::time_boxed(Duration::from_secs(5));
        assert_eq!(boxed.solver.budget.time_limit, Some(Duration::from_secs(5)));
        let budgeted = SynthesisConfig::budgeted(Budget::nodes(50));
        assert_eq!(budgeted.solver.budget.node_limit, Some(50));
        assert!(budgeted.solver.budget.time_limit.is_none());
    }
}
