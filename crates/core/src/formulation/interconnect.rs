//! Interconnection assignment: Section 3.1 of the paper, Eqs. (1)–(3).
//!
//! Two families of constraints govern every potential wire:
//!
//! * **required connections** — if variable `v` is assigned to register `r`
//!   and the operation reading `v` on port `l` runs on module `m`, the wire
//!   `r → (m, l)` must exist (otherwise the data path cannot execute the
//!   schedule). With the module binding fixed (`x_{om} = 1`), the paper's
//!   linearisation `z ≥ x_{vr} + x_{om} − 1` reduces to `z ≥ x_{vr}`.
//! * **no adverse paths** — Eqs. (1)–(2): a wire may exist *only if* some DFG
//!   edge justifies it under the chosen assignment, so the BIST constraints
//!   can never smuggle in test-only interconnect. With the binding fixed, the
//!   auxiliary `z_{vroml}` variables of Eq. (2) collapse to `x_{vr}` and
//!   Eq. (1) aggregates to `z_{rml} ≤ Σ_v x_{vr}` over the edges of that
//!   port; the two forms are equivalent for 0-1 variables.
//!
//! Commutative operations (Eq. (3)) may swap their two input ports; we model
//! the pseudo-input-port permutation with one swap variable per eligible
//! operation. Operations with a constant operand keep their ports fixed so
//! that the hard-wired constant stays on its declared port.

use std::collections::BTreeMap;

use bist_ilp::LinExpr;

use super::BistFormulation;

impl BistFormulation<'_> {
    /// Adds the interconnection variables and constraints.
    pub fn add_interconnect(&mut self) {
        let dfg = self.input.dfg();
        let num_modules = self.input.binding().num_modules();

        // Classify ports: register-fed vs constant-only, and count distinct
        // constants per port for the multiplexer sizing.
        let mut has_var_edge: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        for (_, o, l) in dfg.input_edges() {
            let m = self.input.module_of(o).index();
            has_var_edge.insert((m, l), true);
        }
        let mut constants: BTreeMap<(usize, usize), Vec<i64>> = BTreeMap::new();
        for (v, o, l) in dfg.constant_edges() {
            let m = self.input.module_of(o).index();
            if let bist_dfg::VarSource::Constant(value) = dfg.var(v).source {
                let list = constants.entry((m, l)).or_default();
                if !list.contains(&value) {
                    list.push(value);
                }
            }
        }
        for m in 0..num_modules {
            let ports = self.input.binding().modules()[m].num_inputs;
            for l in 0..ports {
                let key = (m, l);
                let fed = has_var_edge.get(&key).copied().unwrap_or(false);
                let n_const = constants.get(&key).map_or(0, |c| c.len());
                self.constants_on_port.insert(key, n_const);
                if fed {
                    self.register_fed_ports.push(key);
                } else if n_const > 0 {
                    self.constant_only_ports.push(key);
                }
            }
        }

        // Swap variables for eligible commutative operations.
        if self.config.commutative_swapping {
            for o in dfg.op_ids() {
                let op = dfg.op(o);
                let class = self.input.binding().module(self.input.module_of(o)).class;
                let all_variable = op.inputs.iter().all(|&v| !dfg.var(v).is_constant());
                if op.kind.is_commutative() && class.is_commutative() && all_variable {
                    let w = self.model.add_binary(format!("swap[{}]", op.name));
                    self.swap.insert(o.index(), w);
                }
            }
        }

        // z_{rml}: register -> module input port.
        for &(m, l) in &self.register_fed_ports.clone() {
            for r in 0..self.num_registers {
                let z = self.model.add_binary(format!("z[R{r},M{m},p{l}]"));
                self.z_in.insert((r, m, l), z);
            }
        }

        // Required connections and adverse-path upper bounds for input wires.
        // reachable[(m, l, r)] collects the x variables that can justify the
        // wire r -> (m, l), i.e. the right-hand side of aggregated Eq. (1).
        let mut reachable: BTreeMap<(usize, usize, usize), LinExpr> = BTreeMap::new();
        for (v, o, l) in dfg.input_edges() {
            let m = self.input.module_of(o).index();
            let swap_var = self.swap.get(&o.index()).copied();
            for r in 0..self.num_registers {
                let x = self.x[&(v.index(), r)];
                match swap_var {
                    None => {
                        let z = self.z_in[&(r, m, l)];
                        // z >= x  (required connection)
                        self.model.add_geq(
                            [(z, 1.0), (x, -1.0)],
                            0.0,
                            format!("req[{},R{r},M{m},p{l}]", dfg.var(v).name),
                        );
                        reachable.entry((m, l, r)).or_default().add_term(x, 1.0);
                    }
                    Some(w) => {
                        // Unswapped: connection needed on the declared port.
                        let z_same = self.z_in[&(r, m, l)];
                        self.model.add_geq(
                            [(z_same, 1.0), (x, -1.0), (w, 1.0)],
                            0.0,
                            format!("req_ns[{},R{r},M{m},p{l}]", dfg.var(v).name),
                        );
                        // Swapped: connection needed on the other port.
                        let other = 1 - l;
                        let z_other = self.z_in[&(r, m, other)];
                        self.model.add_geq(
                            [(z_other, 1.0), (x, -1.0), (w, -1.0)],
                            -1.0,
                            format!("req_sw[{},R{r},M{m},p{other}]", dfg.var(v).name),
                        );
                        // The edge can justify a wire on either port.
                        reachable.entry((m, l, r)).or_default().add_term(x, 1.0);
                        reachable.entry((m, other, r)).or_default().add_term(x, 1.0);
                    }
                }
            }
        }
        for (&(m, l, r), justification) in &reachable {
            let z = self.z_in[&(r, m, l)];
            // Aggregated Eq. (1)/(2): z <= sum of justifying x variables.
            let mut expr = LinExpr::term(z, 1.0);
            expr -= justification.clone();
            self.model
                .add_leq(expr, 0.0, format!("adverse_in[R{r},M{m},p{l}]"));
        }
        // Ports with no justification at all keep their z variables at zero.
        for (&(r, m, l), &z) in &self.z_in {
            if !reachable.contains_key(&(m, l, r)) {
                self.model
                    .add_eq([(z, 1.0)], 0.0, format!("unreachable_in[R{r},M{m},p{l}]"));
            }
        }

        // z_{mr}: module output -> register, with the analogous two families.
        let mut out_reachable: BTreeMap<(usize, usize), LinExpr> = BTreeMap::new();
        for m in 0..num_modules {
            for r in 0..self.num_registers {
                let z = self.model.add_binary(format!("z[M{m},R{r}]"));
                self.z_out.insert((m, r), z);
            }
        }
        for (o, v) in dfg.output_edges() {
            let m = self.input.module_of(o).index();
            for r in 0..self.num_registers {
                let x = self.x[&(v.index(), r)];
                let z = self.z_out[&(m, r)];
                self.model.add_geq(
                    [(z, 1.0), (x, -1.0)],
                    0.0,
                    format!("req_out[{},M{m},R{r}]", dfg.var(v).name),
                );
                out_reachable.entry((m, r)).or_default().add_term(x, 1.0);
            }
        }
        for (&(m, r), &z) in &self.z_out {
            match out_reachable.get(&(m, r)) {
                Some(justification) => {
                    let mut expr = LinExpr::term(z, 1.0);
                    expr -= justification.clone();
                    self.model
                        .add_leq(expr, 0.0, format!("adverse_out[M{m},R{r}]"));
                }
                None => {
                    self.model
                        .add_eq([(z, 1.0)], 0.0, format!("unreachable_out[M{m},R{r}]"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_interconnect_variables() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        // 2 modules x 2 ports x 3 registers input wires; 2 x 3 output wires.
        assert_eq!(f.z_in.len(), 12);
        assert_eq!(f.z_out.len(), 6);
        assert!(f.constant_only_ports.is_empty());
        assert_eq!(f.register_fed_ports.len(), 4);
        assert!(f.swap.is_empty(), "swapping disabled by default");
    }

    #[test]
    fn constant_ports_are_classified() {
        let input = benchmarks::fir6();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        // The multiplier coefficient ports are constant-only.
        assert!(!f.constant_only_ports.is_empty());
        for key in &f.constant_only_ports {
            assert!(f.constants_on_port[key] > 0);
        }
        // No z variables exist for constant-only ports.
        for &(m, l) in &f.constant_only_ports {
            for r in 0..f.num_registers() {
                assert!(!f.z_in.contains_key(&(r, m, l)));
            }
        }
    }

    #[test]
    fn swapping_creates_variables_for_commutative_ops() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default().with_commutative_swapping(true);
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        // All four figure1 operations are add/mul with variable operands.
        assert_eq!(f.swap.len(), 4);
    }
}
