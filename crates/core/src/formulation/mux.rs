//! Multiplexer assignment: Section 3.2 of the paper, Eqs. (4)–(5).
//!
//! The fan-in of a register input is the number of module outputs wired to it
//! (Eq. (4)); the fan-in of a module input port is the number of registers
//! wired to it plus its hard-wired constants (Eq. (5)). Because the Table
//! 1(b) multiplexer cost is not linear in the fan-in, each fan-in is linked
//! to a one-hot *size selector*: exactly one selector bit is on, the selected
//! size equals the fan-in, and the objective charges the tabulated cost of
//! that size. Fan-ins of 0 or 1 need no multiplexer and cost nothing.

use bist_ilp::{LinExpr, VarId};

use super::BistFormulation;

/// Where a multiplexer size selector sits.
#[derive(Debug, Clone, Copy)]
enum MuxSite {
    /// The input of a register.
    Register(usize),
    /// An input port of a module.
    Port(usize, usize),
}

impl BistFormulation<'_> {
    /// Adds the multiplexer size selectors for every register input and every
    /// register-fed module port, and records their cost terms for the
    /// objective.
    pub fn add_mux_sizing(&mut self) {
        let num_modules = self.input.binding().num_modules();

        // Register inputs: fan-in = sum over modules of z_{mr}.
        for r in 0..self.num_registers {
            let fanin: LinExpr = (0..num_modules)
                .map(|m| (self.z_out[&(m, r)], 1.0))
                .collect();
            let max_fanin = num_modules;
            self.add_size_selector(MuxSite::Register(r), fanin, max_fanin, 0);
        }

        // Module input ports: fan-in = sum over registers of z_{rml} plus the
        // number of distinct hard-wired constants on the port.
        for &(m, l) in &self.register_fed_ports.clone() {
            let fanin: LinExpr = (0..self.num_registers)
                .map(|r| (self.z_in[&(r, m, l)], 1.0))
                .collect();
            let constants = self.constants_on_port.get(&(m, l)).copied().unwrap_or(0);
            self.add_size_selector(
                MuxSite::Port(m, l),
                fanin,
                self.num_registers + constants,
                constants,
            );
        }
    }

    /// Adds a one-hot selector `sel_0 .. sel_max` with
    /// `Σ sel_j = 1` and `Σ j·sel_j = fanin + offset`, and records
    /// `cost(j)·sel_j` objective terms.
    fn add_size_selector(
        &mut self,
        site: MuxSite,
        fanin: LinExpr,
        max_fanin: usize,
        offset: usize,
    ) {
        let name = match site {
            MuxSite::Register(r) => format!("regmux[R{r}]"),
            MuxSite::Port(m, l) => format!("portmux[M{m},p{l}]"),
        };
        let mut one_hot = LinExpr::new();
        let mut weighted = LinExpr::new();
        let mut selectors: Vec<(usize, VarId)> = Vec::new();
        for j in 0..=max_fanin {
            let sel = self.model.add_binary(format!("{name}_is{j}"));
            one_hot.add_term(sel, 1.0);
            weighted.add_term(sel, j as f64);
            selectors.push((j, sel));
            match site {
                MuxSite::Register(r) => {
                    self.reg_mux_sel.insert((r, j), sel);
                }
                MuxSite::Port(m, l) => {
                    self.port_mux_sel.insert((m, l, j), sel);
                }
            }
        }
        self.model.add_eq(one_hot, 1.0, format!("{name}_onehot"));
        let mut link = weighted;
        link -= fanin;
        self.model
            .add_eq(link, offset as f64, format!("{name}_size"));
        for (j, sel) in selectors {
            let cost = self.config.cost.mux_cost(j) as f64;
            if cost > 0.0 {
                self.mux_cost_terms.push((sel, cost));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;

    #[test]
    fn selectors_cover_every_mux_site() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        let before = f.model.num_vars();
        f.add_mux_sizing();
        // 3 register inputs with fan-in range 0..=2 (3 selectors each) and
        // 4 register-fed ports with fan-in range 0..=3 (4 selectors each).
        assert_eq!(f.model.num_vars() - before, 3 * 3 + 4 * 4);
        assert!(!f.mux_cost_terms.is_empty());
        // Cost terms only exist for fan-in >= 2.
        for (_, cost) in &f.mux_cost_terms {
            assert!(*cost >= 80.0);
        }
    }

    #[test]
    fn constant_offsets_enter_port_fanin() {
        // One adder executes two operations; its right port sees a hard-wired
        // constant from the first operation and a register from the second,
        // so the port is register-fed *and* carries a constant offset of one.
        use bist_dfg::{Binding, DfgBuilder, ModuleClass, OpKind, Schedule, SynthesisInput};
        let mut b = DfgBuilder::new("mixed_port");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let k = b.constant("k5", 5);
        let t1 = b.op(OpKind::Add, "t1", a, k);
        let t2 = b.op(OpKind::Add, "t2", c, d);
        let t3 = b.op(OpKind::Add, "t3", t1, t2);
        b.output(t3);
        let dfg = b.finish();
        let schedule = Schedule::from_steps(vec![0, 1, 2]);
        let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
        let input = SynthesisInput::new(dfg, schedule, binding).unwrap();

        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        let has_offset_row = f
            .model
            .constraints()
            .iter()
            .any(|c| c.name.contains("portmux") && c.name.ends_with("_size") && c.rhs > 0.0);
        assert!(has_offset_row);
    }
}
