//! The objective function of Section 3.4: hardware area in transistors.
//!
//! The cost of each register is expressed incrementally on top of the plain
//! system-register cost, which reproduces the Table 1(a) category costs
//! exactly:
//!
//! ```text
//! cost(r) = w_reg
//!         + (w_tpg    − w_reg)                 · t_r
//!         + (w_sr     − w_reg)                 · s_r
//!         + (w_bilbo  − w_tpg − w_sr + w_reg)  · b_r
//!         + (w_cbilbo − w_bilbo)               · c_r
//! ```
//!
//! (plain 208, TPG-only 256, SR-only 304, BILBO 388, CBILBO 596 at 8 bits).
//! Multiplexer costs come from the one-hot size selectors of Section 3.2, and
//! each constant-only port contributes the large `w_tc` weight of Section
//! 3.3.4 as a constant (the module binding is fixed, so it cannot be
//! optimised away — the weight simply shows up in the objective value as the
//! paper intends).

use bist_datapath::TestRegisterKind;
use bist_ilp::{LinExpr, Sense};

use super::BistFormulation;

impl BistFormulation<'_> {
    /// Sets the objective of the reference (non-BIST) data path ILP: plain
    /// register area (a constant, since the register count is fixed) plus
    /// multiplexer area.
    pub fn set_reference_objective(&mut self) {
        let cost = &self.config.cost;
        let mut objective = LinExpr::constant(
            cost.register_cost(TestRegisterKind::Plain) as f64 * self.num_registers as f64,
        );
        for &(var, c) in &self.mux_cost_terms {
            objective.add_term(var, c);
        }
        self.model.set_objective(objective, Sense::Minimize);
    }

    /// Sets the full ADVBIST objective (Section 3.4).
    ///
    /// # Panics
    ///
    /// Panics if called before [`BistFormulation::add_bist`].
    pub fn set_bist_objective(&mut self) {
        assert!(
            self.num_sessions > 0,
            "add_bist must run before set_bist_objective"
        );
        let cost = &self.config.cost;
        let w_reg = cost.register_cost(TestRegisterKind::Plain) as f64;
        let w_tpg = cost.register_cost(TestRegisterKind::Tpg) as f64;
        let w_sr = cost.register_cost(TestRegisterKind::Sr) as f64;
        let w_bilbo = cost.register_cost(TestRegisterKind::Bilbo) as f64;
        let w_cbilbo = cost.register_cost(TestRegisterKind::Cbilbo) as f64;

        let mut objective = LinExpr::constant(
            w_reg * self.num_registers as f64
                + cost.constant_tpg_cost() as f64 * self.constant_only_ports.len() as f64,
        );
        for r in 0..self.num_registers {
            objective.add_term(self.t_reg[r], w_tpg - w_reg);
            objective.add_term(self.s_reg[r], w_sr - w_reg);
            objective.add_term(self.b_reg[r], w_bilbo - w_tpg - w_sr + w_reg);
            objective.add_term(self.c_reg[r], w_cbilbo - w_bilbo);
        }
        for &(var, c) in &self.mux_cost_terms {
            objective.add_term(var, c);
        }
        self.model.set_objective(objective, Sense::Minimize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;

    #[test]
    fn reference_objective_has_constant_register_area() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.set_reference_objective();
        assert_eq!(f.model.objective().offset(), 3.0 * 208.0);
        assert!(!f.model.objective().is_empty());
    }

    #[test]
    fn bist_objective_reproduces_table1_category_costs() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.add_bist(2).unwrap();
        f.set_bist_objective();
        let obj = f.model.objective();
        // Register 0 incremental weights.
        assert_eq!(obj.coefficient(f.t_reg[0]), 48.0);
        assert_eq!(obj.coefficient(f.s_reg[0]), 96.0);
        assert_eq!(obj.coefficient(f.b_reg[0]), 388.0 - 256.0 - 304.0 + 208.0);
        assert_eq!(obj.coefficient(f.c_reg[0]), 596.0 - 388.0);
        // plain + TPG => 256, plain + SR => 304, BILBO => 388, CBILBO => 596.
        let base = 208.0;
        assert_eq!(base + 48.0, 256.0);
        assert_eq!(base + 96.0, 304.0);
        assert_eq!(base + 48.0 + 96.0 + 36.0, 388.0);
        assert_eq!(base + 48.0 + 96.0 + 36.0 + 208.0, 596.0);
    }

    #[test]
    #[should_panic(expected = "add_bist must run")]
    fn bist_objective_requires_bist_variables() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.set_bist_objective();
    }
}
