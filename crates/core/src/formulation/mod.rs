//! The ILP formulation of the paper, Section 3.
//!
//! [`BistFormulation`] incrementally builds one [`bist_ilp::Model`] per
//! synthesis run:
//!
//! 1. **register assignment** — the `x_{vr}` variables with their assignment
//!    and incompatibility constraints, plus the Section 3.5 search-space
//!    reduction (this module),
//! 2. **interconnection assignment** — the `z_{rml}` / `z_{mr}` variables,
//!    the required-connection constraints and the no-adverse-path
//!    constraints, Eqs. (1)–(3) ([`interconnect`](self)),
//! 3. **multiplexer assignment** — Eqs. (4)–(5) plus the one-hot size
//!    selectors that make the non-linear Table 1(b) cost exact
//!    ([`mux`](self)),
//! 4. **BIST register assignment** — the `s_{mrp}` / `t_{rmlp}` variables and
//!    Eqs. (6)–(23), with the Section 3.3.4 handling of constant-fed ports
//!    ([`bist`](self)),
//! 5. the **objective function** of Section 3.4 ([`objective`](self)).
//!
//! The reference (non-BIST) data path uses steps 1–3 and 5 only.

mod bist;
mod interconnect;
mod mux;
mod objective;
mod warmstart;

use std::collections::BTreeMap;

use bist_dfg::allocate::{left_edge, RegisterAssignment};
use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;
use bist_ilp::{Model, VarId};

use crate::config::SynthesisConfig;
use crate::error::CoreError;

/// Identifier of an input port of a module, by dense indices.
pub(crate) type PortKey = (usize, usize);

/// Incremental builder of the ADVBIST integer linear program.
///
/// Cloning a formulation is cheap relative to rebuilding it and is how the
/// [`crate::engine::SynthesisEngine`] reuses the circuit-level base model
/// (register assignment + interconnect + mux sizing) across every k-test
/// session of a sweep: the base is built once, and each `k` applies its BIST
/// delta ([`BistFormulation::add_bist`]) onto a fresh clone.
#[derive(Debug, Clone)]
pub struct BistFormulation<'a> {
    pub(crate) input: &'a SynthesisInput,
    pub(crate) config: &'a SynthesisConfig,
    pub(crate) lifetimes: LifetimeTable,
    pub(crate) num_registers: usize,
    /// The ILP model under construction.
    pub model: Model,
    /// `(rows, vars)` of the model when the circuit-level base (register
    /// assignment + interconnect + mux sizing) was complete, recorded by the
    /// first [`BistFormulation::add_bist`] call. Everything past the
    /// watermark is the per-k BIST delta, which the solve path replays
    /// through the reduced base's variable map.
    pub(crate) base_dims: Option<(usize, usize)>,

    // Register assignment.
    pub(crate) x: BTreeMap<(usize, usize), VarId>,
    pub(crate) baseline: RegisterAssignment,

    // Interconnect.
    pub(crate) swap: BTreeMap<usize, VarId>,
    pub(crate) z_in: BTreeMap<(usize, usize, usize), VarId>,
    pub(crate) z_out: BTreeMap<(usize, usize), VarId>,
    pub(crate) register_fed_ports: Vec<PortKey>,
    pub(crate) constant_only_ports: Vec<PortKey>,
    pub(crate) constants_on_port: BTreeMap<PortKey, usize>,

    // Multiplexer sizing: objective terms collected while adding selectors,
    // plus the selector variables themselves (used by the warm start).
    pub(crate) mux_cost_terms: Vec<(VarId, f64)>,
    pub(crate) reg_mux_sel: BTreeMap<(usize, usize), VarId>,
    pub(crate) port_mux_sel: BTreeMap<(usize, usize, usize), VarId>,

    // BIST register assignment.
    pub(crate) num_sessions: usize,
    pub(crate) s: BTreeMap<(usize, usize, usize), VarId>,
    pub(crate) t: BTreeMap<(usize, usize, usize, usize), VarId>,
    pub(crate) t_reg: Vec<VarId>,
    pub(crate) s_reg: Vec<VarId>,
    pub(crate) b_reg: Vec<VarId>,
    pub(crate) c_reg: Vec<VarId>,
    pub(crate) t_reg_session: BTreeMap<(usize, usize), VarId>,
    pub(crate) s_reg_session: BTreeMap<(usize, usize), VarId>,
    pub(crate) c_reg_session: BTreeMap<(usize, usize), VarId>,
}

impl<'a> BistFormulation<'a> {
    /// Starts a formulation: creates the register-assignment variables and
    /// constraints (Section 2 semantics plus the Section 3.5 reduction).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooFewRegisters`] when the configured register
    /// count is below the maximal horizontal crossing, or a DFG error when
    /// the synthesis input is inconsistent.
    pub fn new(input: &'a SynthesisInput, config: &'a SynthesisConfig) -> Result<Self, CoreError> {
        let lifetimes = LifetimeTable::with_timing(input, config.input_timing)?;
        let minimum = lifetimes.min_registers();
        let num_registers = config.num_registers.unwrap_or(minimum);
        if num_registers < minimum {
            return Err(CoreError::TooFewRegisters {
                requested: num_registers,
                minimum,
            });
        }
        let baseline = left_edge(&lifetimes);

        let mut this = Self {
            input,
            config,
            lifetimes,
            num_registers,
            model: Model::new(format!("advbist_{}", input.name())),
            base_dims: None,
            x: BTreeMap::new(),
            baseline,
            swap: BTreeMap::new(),
            z_in: BTreeMap::new(),
            z_out: BTreeMap::new(),
            register_fed_ports: Vec::new(),
            constant_only_ports: Vec::new(),
            constants_on_port: BTreeMap::new(),
            mux_cost_terms: Vec::new(),
            reg_mux_sel: BTreeMap::new(),
            port_mux_sel: BTreeMap::new(),
            num_sessions: 0,
            s: BTreeMap::new(),
            t: BTreeMap::new(),
            t_reg: Vec::new(),
            s_reg: Vec::new(),
            b_reg: Vec::new(),
            c_reg: Vec::new(),
            t_reg_session: BTreeMap::new(),
            s_reg_session: BTreeMap::new(),
            c_reg_session: BTreeMap::new(),
        };
        this.add_register_assignment();
        Ok(this)
    }

    /// Number of data path registers of the formulation.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// `(rows, vars)` of the circuit-level base model — the prefix shared by
    /// every k-test session. Before any BIST delta is added the whole model
    /// is the base.
    pub fn base_dims(&self) -> (usize, usize) {
        self.base_dims
            .unwrap_or((self.model.num_constraints(), self.model.num_vars()))
    }

    /// Number of sub-test sessions (0 until [`BistFormulation::add_bist`] is
    /// called).
    pub fn num_sessions(&self) -> usize {
        self.num_sessions
    }

    /// Lifetime table of the synthesis input under the configured timing.
    pub fn lifetimes(&self) -> &LifetimeTable {
        &self.lifetimes
    }

    /// The left-edge register assignment used for the search-space reduction
    /// and as a warm-start / fallback design.
    pub fn baseline_assignment(&self) -> &RegisterAssignment {
        &self.baseline
    }

    /// The `x_{vr}` variable for a (variable, register) pair, if it exists.
    pub fn x_var(&self, var: usize, register: usize) -> Option<VarId> {
        self.x.get(&(var, register)).copied()
    }

    /// The `s_{mrp}` variable for (module, register, session), if it exists.
    pub fn s_var(&self, module: usize, register: usize, session: usize) -> Option<VarId> {
        self.s.get(&(module, register, session)).copied()
    }

    /// The `t_{rmlp}` variable for (register, module, port, session), if it
    /// exists.
    pub fn t_var(
        &self,
        register: usize,
        module: usize,
        port: usize,
        session: usize,
    ) -> Option<VarId> {
        self.t.get(&(register, module, port, session)).copied()
    }

    /// Module input ports that are fed only by constants and therefore need a
    /// dedicated pattern generator during test (Section 3.3.4).
    pub fn constant_only_ports(&self) -> &[PortKey] {
        &self.constant_only_ports
    }

    /// Register assignment variables and constraints.
    ///
    /// * every register variable is assigned to exactly one register,
    /// * variables alive on a common clock boundary occupy distinct registers
    ///   (one clique constraint per boundary and register, which dominates
    ///   the pairwise incompatibility constraints),
    /// * Section 3.5: the variables of one maximum clique are pre-assigned to
    ///   distinct registers — we pin them to the register the left-edge
    ///   baseline gives them, so the baseline remains feasible and can serve
    ///   as a warm start.
    fn add_register_assignment(&mut self) {
        let dfg = self.input.dfg();

        for v in dfg.register_variables() {
            let mut row = Vec::new();
            for r in 0..self.num_registers {
                let var = self
                    .model
                    .add_binary(format!("x[{},R{r}]", dfg.var(v).name));
                self.x.insert((v.index(), r), var);
                row.push((var, 1.0));
            }
            self.model
                .add_eq(row, 1.0, format!("assign_{}", dfg.var(v).name));
        }

        // Incompatibility cliques: one per (boundary, register).
        for boundary in 0..=self.lifetimes.num_boundaries() {
            let alive = self.lifetimes.vars_at_boundary(boundary);
            if alive.len() < 2 {
                continue;
            }
            for r in 0..self.num_registers {
                let terms: Vec<_> = alive
                    .iter()
                    .map(|v| (self.x[&(v.index(), r)], 1.0))
                    .collect();
                self.model
                    .add_leq(terms, 1.0, format!("clique_b{boundary}_R{r}"));
            }
        }

        // Search-space reduction (Section 3.5).
        if self.config.search_space_reduction {
            for v in self.lifetimes.maximum_clique() {
                if let Some(r) = self.baseline.register_of(v) {
                    if r < self.num_registers {
                        let var = self.x[&(v.index(), r)];
                        self.model
                            .add_eq([(var, 1.0)], 1.0, format!("reduce_{}", dfg.var(v).name));
                    }
                }
            }
        }
    }

    /// Equality constraints pinning the complete register assignment to the
    /// left-edge baseline. Used to build the *sequential* warm-start model
    /// (register assignment first, BIST assignment second), which always has
    /// a feasible solution and solves quickly.
    pub fn fix_to_baseline(&mut self) {
        let dfg = self.input.dfg();
        for v in dfg.register_variables() {
            if let Some(r) = self.baseline.register_of(v) {
                let var = self.x[&(v.index(), r)];
                self.model
                    .add_eq([(var, 1.0)], 1.0, format!("warm_{}", dfg.var(v).name));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn register_assignment_variables_and_constraints() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let formulation = BistFormulation::new(&input, &config).unwrap();
        // 8 variables (no constants) x 3 registers.
        assert_eq!(formulation.x.len(), 8 * 3);
        assert_eq!(formulation.num_registers(), 3);
        // One assignment row per variable plus clique and reduction rows.
        assert!(formulation.model.num_constraints() >= 8);
        assert!(formulation.x_var(0, 0).is_some());
        assert!(formulation.x_var(0, 99).is_none());
    }

    #[test]
    fn too_few_registers_is_rejected() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default().with_registers(2);
        assert!(matches!(
            BistFormulation::new(&input, &config),
            Err(CoreError::TooFewRegisters { minimum: 3, .. })
        ));
    }

    #[test]
    fn extra_registers_are_allowed() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default().with_registers(4);
        let formulation = BistFormulation::new(&input, &config).unwrap();
        assert_eq!(formulation.num_registers(), 4);
        assert_eq!(formulation.x.len(), 8 * 4);
    }

    #[test]
    fn reduction_adds_fixing_rows() {
        let input = benchmarks::figure1();
        let with = SynthesisConfig::default();
        let without = SynthesisConfig::default().with_search_space_reduction(false);
        let a = BistFormulation::new(&input, &with).unwrap();
        let b = BistFormulation::new(&input, &without).unwrap();
        assert!(a.model.num_constraints() > b.model.num_constraints());
    }
}
