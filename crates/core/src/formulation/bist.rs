//! BIST register assignment: Section 3.3 of the paper, Eqs. (6)–(23).
//!
//! For a k-test session the binary variables are:
//!
//! * `s_{mrp}` — register `r` is the signature register of module `m` in
//!   sub-test session `p` (Section 3.3.1),
//! * `t_{rmlp}` — register `r` is the test pattern generator of input port
//!   `l` of module `m` in sub-test session `p` (Section 3.3.2),
//! * the OR-reductions `t_r`, `s_r`, `t_{rp}`, `s_{rp}` and the derived
//!   `b_r` (BILBO needed), `c_{rp}`, `c_r` (CBILBO needed) of Section 3.3.3,
//!
//! Constant-only input ports have no register to reconfigure into a TPG, so
//! they receive a dedicated generator instead and are excluded from
//! Eqs. (9)–(13) (Section 3.3.4). Its cost is a constant for a fixed module
//! binding and is added to the objective separately.

use bist_ilp::LinExpr;

use super::BistFormulation;
use crate::error::CoreError;

impl BistFormulation<'_> {
    /// Adds the BIST register assignment variables and constraints for a
    /// k-test session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSessionCount`] if `k` is zero or exceeds
    /// the number of modules.
    pub fn add_bist(&mut self, k: usize) -> Result<(), CoreError> {
        let num_modules = self.input.binding().num_modules();
        if k == 0 || k > num_modules {
            return Err(CoreError::InvalidSessionCount {
                requested: k,
                modules: num_modules,
            });
        }
        // Everything added from here on is the per-k delta; remember where
        // the shared circuit-level base ends.
        if self.base_dims.is_none() {
            self.base_dims = Some((self.model.num_constraints(), self.model.num_vars()));
        }
        self.num_sessions = k;

        // ------------------------------------------------------------------
        // Signature register variables and Eqs. (6)-(8).
        // ------------------------------------------------------------------
        for m in 0..num_modules {
            for r in 0..self.num_registers {
                for p in 0..k {
                    let var = self.model.add_binary(format!("s[M{m},R{r},p{p}]"));
                    self.s.insert((m, r, p), var);
                }
                // Eq. (6): an SR needs the module -> register connection.
                let mut expr: LinExpr = (0..k).map(|p| (self.s[&(m, r, p)], 1.0)).collect();
                expr.add_term(self.z_out[&(m, r)], -1.0);
                self.model.add_leq(expr, 0.0, format!("eq6[M{m},R{r}]"));
            }
            // Eq. (7): each module is tested exactly once.
            let expr: LinExpr = (0..self.num_registers)
                .flat_map(|r| (0..k).map(move |p| (r, p)))
                .map(|(r, p)| (self.s[&(m, r, p)], 1.0))
                .collect();
            self.model.add_eq(expr, 1.0, format!("eq7[M{m}]"));
        }
        // Eq. (8): an SR is not shared within a sub-test session.
        for r in 0..self.num_registers {
            for p in 0..k {
                let expr: LinExpr = (0..num_modules)
                    .map(|m| (self.s[&(m, r, p)], 1.0))
                    .collect();
                self.model.add_leq(expr, 1.0, format!("eq8[R{r},p{p}]"));
            }
        }

        // ------------------------------------------------------------------
        // TPG variables and Eqs. (9)-(13), register-fed ports only.
        // ------------------------------------------------------------------
        let register_fed = self.register_fed_ports.clone();
        for &(m, l) in &register_fed {
            for r in 0..self.num_registers {
                for p in 0..k {
                    let var = self.model.add_binary(format!("t[R{r},M{m},p{l},s{p}]"));
                    self.t.insert((r, m, l, p), var);
                }
                // Eq. (9): a TPG needs the register -> port connection.
                let mut expr: LinExpr = (0..k).map(|p| (self.t[&(r, m, l, p)], 1.0)).collect();
                expr.add_term(self.z_in[&(r, m, l)], -1.0);
                self.model
                    .add_leq(expr, 0.0, format!("eq9[R{r},M{m},p{l}]"));
            }
            // Eq. (10): each register-fed port has exactly one TPG over the
            // whole k-test session.
            let expr: LinExpr = (0..self.num_registers)
                .flat_map(|r| (0..k).map(move |p| (r, p)))
                .map(|(r, p)| (self.t[&(r, m, l, p)], 1.0))
                .collect();
            self.model.add_eq(expr, 1.0, format!("eq10[M{m},p{l}]"));
        }

        for m in 0..num_modules {
            let ports: Vec<usize> = register_fed
                .iter()
                .filter(|&&(mm, _)| mm == m)
                .map(|&(_, l)| l)
                .collect();
            if let Some(&reference_port) = ports.first() {
                for p in 0..k {
                    let ref_sum: LinExpr = (0..self.num_registers)
                        .map(|r| (self.t[&(r, m, reference_port, p)], 1.0))
                        .collect();
                    // Eq. (11): all TPGs of the module are active in the same
                    // sub-test session.
                    for &l in ports.iter().skip(1) {
                        let mut expr: LinExpr = (0..self.num_registers)
                            .map(|r| (self.t[&(r, m, l, p)], 1.0))
                            .collect();
                        expr -= ref_sum.clone();
                        self.model
                            .add_eq(expr, 0.0, format!("eq11[M{m},p{l},s{p}]"));
                    }
                    // Eq. (12): the SR is active in the same sub-test session
                    // as the TPGs.
                    let mut expr: LinExpr = (0..self.num_registers)
                        .map(|r| (self.s[&(m, r, p)], 1.0))
                        .collect();
                    expr -= ref_sum;
                    self.model.add_eq(expr, 0.0, format!("eq12[M{m},s{p}]"));
                }
            }
            // Eq. (13): a register is not the TPG of two ports of the same
            // module in the same sub-test session.
            if ports.len() >= 2 {
                for r in 0..self.num_registers {
                    for p in 0..k {
                        let expr: LinExpr = ports
                            .iter()
                            .map(|&l| (self.t[&(r, m, l, p)], 1.0))
                            .collect();
                        self.model
                            .add_leq(expr, 1.0, format!("eq13[R{r},M{m},s{p}]"));
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // OR reductions and BILBO / CBILBO detection, Eqs. (14)-(23).
        // ------------------------------------------------------------------
        for r in 0..self.num_registers {
            // t_r (Eq. 15) and s_r (Eq. 16).
            let t_terms: Vec<_> = self
                .t
                .iter()
                .filter(|&(&(rr, _, _, _), _)| rr == r)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            let s_terms: Vec<_> = self
                .s
                .iter()
                .filter(|&(&(_, rr, _), _)| rr == r)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            let t_r = self.model.add_binary(format!("t_r[R{r}]"));
            let s_r = self.model.add_binary(format!("s_r[R{r}]"));
            self.add_or_reduction(t_r, &t_terms, format!("eq15[R{r}]"));
            self.add_or_reduction(s_r, &s_terms, format!("eq16[R{r}]"));
            self.t_reg.push(t_r);
            self.s_reg.push(s_r);

            // b_r (Eqs. 17-18): TPG and SR in any (possibly different) sessions.
            let b_r = self.model.add_binary(format!("b_r[R{r}]"));
            self.model.add_leq(
                [(s_r, 1.0), (t_r, 1.0), (b_r, -1.0)],
                1.0,
                format!("eq17[R{r}]"),
            );
            self.model.add_leq(
                [(b_r, 2.0), (s_r, -1.0), (t_r, -1.0)],
                0.0,
                format!("eq18[R{r}]"),
            );
            self.b_reg.push(b_r);

            // Per-session reductions t_rp, s_rp (Eqs. 19-20) and c_rp
            // (Eqs. 21-22).
            let mut c_terms = Vec::new();
            for p in 0..k {
                let t_terms_p: Vec<_> = self
                    .t
                    .iter()
                    .filter(|&(&(rr, _, _, pp), _)| rr == r && pp == p)
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                let s_terms_p: Vec<_> = self
                    .s
                    .iter()
                    .filter(|&(&(_, rr, pp), _)| rr == r && pp == p)
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                let t_rp = self.model.add_binary(format!("t_rp[R{r},s{p}]"));
                let s_rp = self.model.add_binary(format!("s_rp[R{r},s{p}]"));
                self.add_or_reduction(t_rp, &t_terms_p, format!("eq19[R{r},s{p}]"));
                self.add_or_reduction(s_rp, &s_terms_p, format!("eq20[R{r},s{p}]"));
                self.t_reg_session.insert((r, p), t_rp);
                self.s_reg_session.insert((r, p), s_rp);

                let c_rp = self.model.add_binary(format!("c_rp[R{r},s{p}]"));
                self.model.add_leq(
                    [(s_rp, 1.0), (t_rp, 1.0), (c_rp, -1.0)],
                    1.0,
                    format!("eq21[R{r},s{p}]"),
                );
                self.model.add_leq(
                    [(c_rp, 2.0), (s_rp, -1.0), (t_rp, -1.0)],
                    0.0,
                    format!("eq22[R{r},s{p}]"),
                );
                self.c_reg_session.insert((r, p), c_rp);
                c_terms.push((c_rp, 1.0));
            }

            // c_r (Eq. 23): CBILBO needed if required in any sub-session.
            let c_r = self.model.add_binary(format!("c_r[R{r}]"));
            self.add_or_reduction(c_r, &c_terms, format!("eq23[R{r}]"));
            self.c_reg.push(c_r);
        }
        Ok(())
    }

    /// Adds `indicator = OR(terms)` for binary terms: `N·indicator ≥ Σ terms`
    /// (the paper's Eq. (14) form, forcing the indicator up) and
    /// `indicator ≤ Σ terms` (forcing it down so extracted register kinds are
    /// exactly the roles used).
    fn add_or_reduction(
        &mut self,
        indicator: bist_ilp::VarId,
        terms: &[(bist_ilp::VarId, f64)],
        name: String,
    ) {
        if terms.is_empty() {
            self.model
                .add_eq([(indicator, 1.0)], 0.0, format!("{name}_zero"));
            return;
        }
        let n = terms.len() as f64;
        let mut up = LinExpr::term(indicator, n);
        for &(v, c) in terms {
            up.add_term(v, -c);
        }
        self.model.add_geq(up, 0.0, format!("{name}_up"));
        let mut down = LinExpr::term(indicator, 1.0);
        for &(v, c) in terms {
            down.add_term(v, -c);
        }
        self.model.add_leq(down, 0.0, format!("{name}_down"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;

    fn build(k: usize) -> BistFormulation<'static> {
        // Leak the input so the formulation can borrow it in a test helper.
        let input = Box::leak(Box::new(benchmarks::figure1()));
        let config = Box::leak(Box::new(SynthesisConfig::default()));
        let mut f = BistFormulation::new(input, config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.add_bist(k).unwrap();
        f
    }

    #[test]
    fn variable_counts_for_figure1_two_sessions() {
        let f = build(2);
        // s: 2 modules x 3 registers x 2 sessions.
        assert_eq!(f.s.len(), 12);
        // t: 3 registers x 4 register-fed ports x 2 sessions.
        assert_eq!(f.t.len(), 24);
        assert_eq!(f.t_reg.len(), 3);
        assert_eq!(f.s_reg.len(), 3);
        assert_eq!(f.b_reg.len(), 3);
        assert_eq!(f.c_reg.len(), 3);
        assert_eq!(f.t_reg_session.len(), 6);
        assert_eq!(f.num_sessions(), 2);
    }

    #[test]
    fn session_count_is_validated() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::default();
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        assert!(matches!(
            f.add_bist(0),
            Err(CoreError::InvalidSessionCount { .. })
        ));
        let mut f = BistFormulation::new(&input, &config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        assert!(matches!(
            f.add_bist(3),
            Err(CoreError::InvalidSessionCount {
                requested: 3,
                modules: 2
            })
        ));
    }

    #[test]
    fn constraint_families_are_present() {
        let f = build(1);
        let names: Vec<&str> = f
            .model
            .constraints()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        for family in [
            "eq6", "eq7", "eq8", "eq9", "eq10", "eq11", "eq12", "eq13", "eq15", "eq16", "eq17",
            "eq18", "eq19", "eq20", "eq21", "eq22", "eq23",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(family)),
                "missing constraint family {family}"
            );
        }
    }
}
