//! Warm-start construction: a complete feasible assignment of every model
//! variable, built from the left-edge register baseline plus a greedy BIST
//! role assignment.
//!
//! The paper's concurrent ILP explores register assignment and BIST register
//! assignment jointly; under a tight time budget the branch and bound needs a
//! good incumbent to prune against, otherwise it can return a design *worse*
//! than the sequential heuristics it is supposed to dominate. This module
//! hands the solver exactly that incumbent: the design a sequential flow
//! (left-edge registers, greedy test registers) would produce, encoded as
//! values of the concurrent model's variables. The branch and bound can then
//! only improve on it, which preserves the paper's qualitative result
//! (ADVBIST ≤ every baseline) at any budget.

use std::collections::BTreeMap;

use bist_dfg::allocate::RegisterAssignment;
use bist_ilp::VarId;

use super::BistFormulation;

impl BistFormulation<'_> {
    /// Builds a dense, feasible assignment for every variable of the model
    /// from the left-edge baseline. Returns `None` when the greedy BIST role
    /// assignment cannot complete (for example a module whose two ports share
    /// their only driving register), in which case the caller simply runs the
    /// solver cold.
    pub fn baseline_warm_values(&self) -> Option<Vec<f64>> {
        self.warm_values_for_assignment(&self.baseline)
    }

    /// Builds a dense, feasible assignment of every model variable from an
    /// arbitrary complete register assignment: the `x`/`z`/mux-selector
    /// values follow mechanically from the assignment, and the BIST roles
    /// are completed greedily. This is how the synthesis engine chains the
    /// k−1 sweep incumbent into the k solve — the register assignment of the
    /// previous design is re-dressed with a role assignment valid for the
    /// new session count.
    ///
    /// Returns `None` when `assignment` does not cover every register
    /// variable or the greedy role completion fails.
    pub fn warm_values_for_assignment(&self, assignment: &RegisterAssignment) -> Option<Vec<f64>> {
        let dfg = self.input.dfg();
        let num_modules = self.input.binding().num_modules();
        let mut values = vec![0.0f64; self.model.num_vars()];
        let set = |var: VarId, value: f64, values: &mut Vec<f64>| {
            values[var.index()] = value;
        };

        // ------------------------------------------------------------------
        // Register assignment x and derived interconnect z.
        // ------------------------------------------------------------------
        let mut reg_of = vec![usize::MAX; dfg.num_vars()];
        for v in dfg.register_variables() {
            let r = assignment.register_of(v)?;
            reg_of[v.index()] = r;
            set(*self.x.get(&(v.index(), r))?, 1.0, &mut values);
        }

        // z_in: wires required by the input edges under the baseline.
        let mut port_drivers: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (v, o, l) in dfg.input_edges() {
            let m = self.input.module_of(o).index();
            let r = reg_of[v.index()];
            if let Some(&z) = self.z_in.get(&(r, m, l)) {
                set(z, 1.0, &mut values);
            }
            let drivers = port_drivers.entry((m, l)).or_default();
            if !drivers.contains(&r) {
                drivers.push(r);
            }
        }
        // z_out: wires required by the output edges.
        let mut reg_sources: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut module_sinks: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (o, v) in dfg.output_edges() {
            let m = self.input.module_of(o).index();
            let r = reg_of[v.index()];
            if let Some(&z) = self.z_out.get(&(m, r)) {
                set(z, 1.0, &mut values);
            }
            let sources = reg_sources.entry(r).or_default();
            if !sources.contains(&m) {
                sources.push(m);
            }
            let sinks = module_sinks.entry(m).or_default();
            if !sinks.contains(&r) {
                sinks.push(r);
            }
        }

        // Multiplexer size selectors.
        for r in 0..self.num_registers {
            let fanin = reg_sources.get(&r).map_or(0, |s| s.len());
            set(*self.reg_mux_sel.get(&(r, fanin))?, 1.0, &mut values);
        }
        for &(m, l) in &self.register_fed_ports {
            let fanin = port_drivers.get(&(m, l)).map_or(0, |d| d.len())
                + self.constants_on_port.get(&(m, l)).copied().unwrap_or(0);
            set(*self.port_mux_sel.get(&(m, l, fanin))?, 1.0, &mut values);
        }

        // Swap variables (if any) stay at zero: the baseline keeps the
        // declared port order.

        if self.num_sessions == 0 {
            return Some(values);
        }

        // ------------------------------------------------------------------
        // Greedy BIST role assignment over the baseline data path.
        // ------------------------------------------------------------------
        let k = self.num_sessions;
        // role[r] = (used as TPG in sessions, used as SR in sessions)
        let mut tpg_sessions: Vec<Vec<usize>> = vec![Vec::new(); self.num_registers];
        let mut sr_sessions: Vec<Vec<usize>> = vec![Vec::new(); self.num_registers];
        let mut session_load = vec![0usize; k];

        // Assign the most constrained modules (fewest candidate signature
        // registers) first so that a contested register is not grabbed by a
        // module that has alternatives.
        let mut module_order: Vec<usize> = (0..num_modules).collect();
        module_order.sort_by_key(|&m| (module_sinks.get(&m).map_or(0, |s| s.len()), m));

        for &m in &module_order {
            // Signature register and sub-session jointly: the model lets any
            // module test in any session (Eq. 7), so scan every (session,
            // sink register) pair and pick the cheapest — reuse a register
            // already compacting, avoid upgrading a TPG to a BILBO, and
            // break ties toward the emptier session so later modules keep
            // their options.
            let sinks = module_sinks.get(&m)?.clone();
            let mut best: Option<(usize, usize)> = None;
            let mut best_key: Option<(usize, usize, usize, usize)> = None;
            for (p, &load) in session_load.iter().enumerate() {
                for &r in &sinks {
                    if sr_sessions[r].contains(&p) {
                        continue;
                    }
                    let class = if !sr_sessions[r].is_empty() {
                        0
                    } else if tpg_sessions[r].is_empty() {
                        1
                    } else {
                        2
                    };
                    let key = (class, load, r, p);
                    if best_key.map(|k0| key < k0).unwrap_or(true) {
                        best = Some((p, r));
                        best_key = Some(key);
                    }
                }
            }
            let (p, sr) = best?;
            session_load[p] += 1;
            sr_sessions[sr].push(p);
            set(self.s[&(m, sr, p)], 1.0, &mut values);

            // TPGs for the register-fed ports of this module.
            let ports: Vec<usize> = self
                .register_fed_ports
                .iter()
                .filter(|&&(mm, _)| mm == m)
                .map(|&(_, l)| l)
                .collect();
            let mut used_here: Vec<usize> = Vec::new();
            for l in ports {
                let drivers = port_drivers.get(&(m, l))?.clone();
                let tpg = drivers
                    .iter()
                    .copied()
                    .filter(|r| !used_here.contains(r))
                    .min_by_key(|&r| {
                        // Avoid the module's own SR (CBILBO), then SRs of other
                        // modules (BILBO), prefer existing TPGs, then fresh.
                        let class = if r == sr {
                            4
                        } else if !sr_sessions[r].is_empty() {
                            3
                        } else if !tpg_sessions[r].is_empty() {
                            0
                        } else {
                            1
                        };
                        (class, r)
                    })?;
                used_here.push(tpg);
                tpg_sessions[tpg].push(p);
                set(self.t[&(tpg, m, l, p)], 1.0, &mut values);
            }
        }

        // OR-reduction and BILBO/CBILBO indicator values.
        for r in 0..self.num_registers {
            let generates = !tpg_sessions[r].is_empty();
            let compacts = !sr_sessions[r].is_empty();
            if generates {
                set(self.t_reg[r], 1.0, &mut values);
            }
            if compacts {
                set(self.s_reg[r], 1.0, &mut values);
            }
            if generates && compacts {
                set(self.b_reg[r], 1.0, &mut values);
            }
            let mut concurrent = false;
            for p in 0..k {
                let t_here = tpg_sessions[r].contains(&p);
                let s_here = sr_sessions[r].contains(&p);
                if t_here {
                    set(self.t_reg_session[&(r, p)], 1.0, &mut values);
                }
                if s_here {
                    set(self.s_reg_session[&(r, p)], 1.0, &mut values);
                }
                if t_here && s_here {
                    set(self.c_reg_session[&(r, p)], 1.0, &mut values);
                    concurrent = true;
                }
            }
            if concurrent {
                set(self.c_reg[r], 1.0, &mut values);
            }
        }

        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use bist_dfg::benchmarks;

    fn formulation_with_bist(
        input: &'static bist_dfg::SynthesisInput,
        config: &'static SynthesisConfig,
        k: usize,
    ) -> BistFormulation<'static> {
        let mut f = BistFormulation::new(input, config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.add_bist(k).unwrap();
        f.set_bist_objective();
        f
    }

    #[test]
    fn warm_values_are_feasible_for_every_benchmark_and_every_k() {
        // The construction may legitimately give up for small k when the
        // left-edge baseline leaves a sub-test session without enough
        // distinct signature registers (the concurrent ILP can still find a
        // design by *changing* the register assignment). Whenever it does
        // produce values, they must be feasible; and at the maximal k (one
        // module per session) it must always succeed.
        let config: &'static SynthesisConfig = Box::leak(Box::new(SynthesisConfig::default()));
        for (name, input) in benchmarks::all() {
            let input: &'static bist_dfg::SynthesisInput = Box::leak(Box::new(input));
            let n = input.binding().num_modules();
            for k in 1..=n {
                let f = formulation_with_bist(input, config, k);
                match f.baseline_warm_values() {
                    Some(values) => assert!(
                        f.model.is_feasible(&values, 1e-6),
                        "warm start infeasible for {name} k={k}"
                    ),
                    None => assert!(
                        k < n,
                        "warm start construction must succeed at maximal k ({name})"
                    ),
                }
            }
        }
    }

    #[test]
    fn warm_values_are_feasible_for_the_reference_model() {
        let config: &'static SynthesisConfig = Box::leak(Box::new(SynthesisConfig::default()));
        let input: &'static bist_dfg::SynthesisInput = Box::leak(Box::new(benchmarks::paulin()));
        let mut f = BistFormulation::new(input, config).unwrap();
        f.add_interconnect();
        f.add_mux_sizing();
        f.set_reference_objective();
        let values = f.baseline_warm_values().expect("baseline always exists");
        assert!(f.model.is_feasible(&values, 1e-6));
    }
}
