//! Error type for the ADVBIST synthesis flow.

use std::fmt;

use bist_datapath::DatapathError;
use bist_dfg::DfgError;
use bist_ilp::IlpError;

/// Errors produced by the ILP-based synthesis flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The scheduled DFG input is inconsistent.
    Dfg(DfgError),
    /// The underlying ILP model could not be built or solved.
    Ilp(IlpError),
    /// The extracted design failed structural or BIST validation — this
    /// indicates a bug in the formulation and should never happen for a
    /// solution the solver reports as feasible.
    Validation(DatapathError),
    /// The extracted design failed the simulated RTL validation
    /// ([`bist_rtl::validate_simulated`], enabled via
    /// [`crate::SynthesisConfig::rtl_validation`]): the emitted netlist did
    /// not demonstrably test every module of the plan.
    RtlValidation(bist_rtl::RtlError),
    /// The ILP is infeasible: no BIST design exists for the requested number
    /// of registers and sub-test sessions.
    Infeasible {
        /// Requested number of sub-test sessions.
        sessions: usize,
    },
    /// The solver hit its limits before finding any feasible design.
    NoSolutionWithinLimits,
    /// The solve was cancelled (via a [`bist_ilp::CancelToken`]) before any
    /// feasible design was found. A cancellation *after* an incumbent was
    /// found is not an error — the best design found so far is returned,
    /// marked non-optimal.
    Interrupted,
    /// The requested number of sub-test sessions is outside `1..=N`.
    InvalidSessionCount {
        /// Requested k.
        requested: usize,
        /// Number of modules N.
        modules: usize,
    },
    /// The requested register count is below the minimum required.
    TooFewRegisters {
        /// Requested count.
        requested: usize,
        /// Minimum required (maximal horizontal crossing).
        minimum: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dfg(e) => write!(f, "invalid synthesis input: {e}"),
            CoreError::Ilp(e) => write!(f, "ilp failure: {e}"),
            CoreError::Validation(e) => write!(f, "extracted design failed validation: {e}"),
            CoreError::RtlValidation(e) => {
                write!(f, "extracted design failed simulated RTL validation: {e}")
            }
            CoreError::Infeasible { sessions } => {
                write!(f, "no feasible BIST design for a {sessions}-test session")
            }
            CoreError::NoSolutionWithinLimits => {
                write!(
                    f,
                    "solver limits expired before a feasible design was found"
                )
            }
            CoreError::Interrupted => {
                write!(f, "solve cancelled before a feasible design was found")
            }
            CoreError::InvalidSessionCount { requested, modules } => write!(
                f,
                "requested {requested} sub-test sessions but the design has {modules} modules"
            ),
            CoreError::TooFewRegisters { requested, minimum } => write!(
                f,
                "requested {requested} registers but the schedule needs at least {minimum}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DfgError> for CoreError {
    fn from(e: DfgError) -> Self {
        CoreError::Dfg(e)
    }
}

impl From<IlpError> for CoreError {
    fn from(e: IlpError) -> Self {
        CoreError::Ilp(e)
    }
}

impl From<DatapathError> for CoreError {
    fn from(e: DatapathError) -> Self {
        CoreError::Validation(e)
    }
}

impl From<bist_rtl::RtlError> for CoreError {
    fn from(e: bist_rtl::RtlError) -> Self {
        CoreError::RtlValidation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DfgError::Cyclic.into();
        assert!(e.to_string().contains("cycle"));
        let e: CoreError = IlpError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        let e = CoreError::InvalidSessionCount {
            requested: 9,
            modules: 3,
        };
        assert!(e.to_string().contains('9'));
        let e = CoreError::TooFewRegisters {
            requested: 2,
            minimum: 5,
        };
        assert!(e.to_string().contains("at least 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
