//! Reproduction of Table 3: ADVBIST vs ADVAN vs RALLOC vs BITS at the
//! maximal test-session count of each circuit.

use bist_baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use bist_core::{reference, synthesis, SynthesisConfig};
use bist_datapath::report::DesignReport;
use bist_datapath::AreaBreakdown;
use bist_dfg::SynthesisInput;

use crate::report::MethodRow;
use crate::workload;

fn method_row(
    circuit: &str,
    method: &str,
    sessions: usize,
    area: &AreaBreakdown,
    reference: u64,
) -> MethodRow {
    use bist_datapath::TestRegisterKind as K;
    MethodRow {
        circuit: circuit.to_string(),
        method: method.to_string(),
        sessions,
        registers: area.total_registers(),
        tpgs: area.count(K::Tpg),
        srs: area.count(K::Sr),
        bilbos: area.count(K::Bilbo),
        cbilbos: area.count(K::Cbilbo),
        mux_inputs: area.mux_inputs,
        area: area.total(),
        overhead_percent: area.overhead_percent(reference),
    }
}

/// Runs all four methods (plus the reference) on one circuit at its maximal
/// test-session count and returns one row per method.
///
/// # Errors
///
/// Propagates synthesis errors from any of the methods.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<Vec<MethodRow>, Box<dyn std::error::Error + Send + Sync>> {
    let k = input.binding().num_modules();
    let reference_design = reference::synthesize_reference(input, config)?;
    let reference_area = reference_design.area.total();

    let mut rows = vec![method_row(
        name,
        "Ref.",
        k,
        &reference_design.area,
        reference_area,
    )];

    let advbist = synthesis::synthesize_bist(input, k, config)?;
    rows.push(method_row(
        name,
        "ADVBIST",
        k,
        &advbist.area,
        reference_area,
    ));

    let advan = synthesize_advan(input, k, &config.cost)?;
    rows.push(method_row(name, "ADVAN", k, &advan.area, reference_area));

    let ralloc = synthesize_ralloc(input, k, &config.cost)?;
    rows.push(method_row(name, "RALLOC", k, &ralloc.area, reference_area));

    let bits = synthesize_bits(input, k, &config.cost)?;
    rows.push(method_row(name, "BITS", k, &bits.area, reference_area));

    Ok(rows)
}

/// Runs the full Table 3 comparison over all six circuits, one circuit per
/// worker thread. Row order is circuit order, independent of scheduling.
///
/// # Errors
///
/// Propagates the first synthesis error (in circuit order).
pub fn run_all(
    budget: bist_ilp::Budget,
) -> Result<Vec<MethodRow>, Box<dyn std::error::Error + Send + Sync>> {
    let config = workload::quick_config_budget(budget);
    let circuits = workload::circuits();
    let results =
        workload::par_map_circuits(&circuits, |name, input| run_circuit(name, input, &config));
    let mut rows = Vec::new();
    for result in results {
        rows.extend(result?);
    }
    Ok(rows)
}

/// Renders rows in the layout of the paper's Table 3.
pub fn render(rows: &[MethodRow]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Performance of various high level BIST synthesis systems\n");
    out.push_str(&DesignReport::table3_header());
    out.push('\n');
    let mut last_circuit = "";
    for row in rows {
        if row.circuit != last_circuit && !last_circuit.is_empty() {
            out.push('\n');
        }
        last_circuit = &row.circuit;
        out.push_str(&format!(
            "{:<10} {:<9} {:>2} {:>2} {:>2} {:>2} {:>2} {:>3} {:>6} {:>7.1}\n",
            row.circuit,
            row.method,
            row.registers,
            row.tpgs,
            row.srs,
            row.bilbos,
            row.cbilbos,
            row.mux_inputs,
            row.area,
            row.overhead_percent
        ));
    }
    out
}

/// Checks the paper's headline qualitative claim on a set of rows: for every
/// circuit, the ADVBIST area is no larger than the area of any heuristic
/// baseline. Returns the list of violations (empty when the claim holds).
pub fn advbist_wins(rows: &[MethodRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let circuits: Vec<&str> = {
        let mut seen = Vec::new();
        for row in rows {
            if !seen.contains(&row.circuit.as_str()) {
                seen.push(row.circuit.as_str());
            }
        }
        seen
    };
    for circuit in circuits {
        let area_of = |method: &str| {
            rows.iter()
                .find(|r| r.circuit == circuit && r.method == method)
                .map(|r| r.area)
        };
        let Some(advbist) = area_of("ADVBIST") else {
            continue;
        };
        for baseline in ["ADVAN", "RALLOC", "BITS"] {
            if let Some(area) = area_of(baseline) {
                if advbist > area {
                    violations.push(format!(
                        "{circuit}: ADVBIST area {advbist} exceeds {baseline} area {area}"
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;
    use std::time::Duration;

    #[test]
    fn figure1_comparison_produces_five_rows() {
        let input = benchmarks::figure1();
        let config = workload::quick_config(Duration::from_millis(300));
        let rows = run_circuit("figure1", &input, &config).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].method, "Ref.");
        assert_eq!(rows[1].method, "ADVBIST");
        let text = render(&rows);
        assert!(text.contains("ADVBIST"));
        assert!(text.contains("RALLOC"));
    }

    #[test]
    fn advbist_beats_or_ties_baselines_on_tseng() {
        let input = benchmarks::tseng();
        // Enough budget for the small tseng model to reach a good solution.
        let config = workload::quick_config(Duration::from_secs(2));
        let rows = run_circuit("tseng", &input, &config).unwrap();
        let violations = advbist_wins(&rows);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
