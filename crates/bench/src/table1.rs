//! Reproduction of Table 1: transistor counts of 8-bit test registers and
//! n-input multiplexers.

use bist_datapath::{CostModel, TestRegisterKind};

/// The rows of Table 1(a): `(label, transistors)` for each register kind.
pub fn register_rows(cost: &CostModel) -> Vec<(&'static str, u64)> {
    vec![
        ("Reg.", cost.register_cost(TestRegisterKind::Plain)),
        ("TPG", cost.register_cost(TestRegisterKind::Tpg)),
        ("SR", cost.register_cost(TestRegisterKind::Sr)),
        ("BILBO", cost.register_cost(TestRegisterKind::Bilbo)),
        ("CBILBO", cost.register_cost(TestRegisterKind::Cbilbo)),
    ]
}

/// The rows of Table 1(b): `(mux inputs, transistors)` for n = 2..=7.
pub fn mux_rows(cost: &CostModel) -> Vec<(usize, u64)> {
    (2..=7).map(|n| (n, cost.mux_cost(n))).collect()
}

/// Renders both halves of Table 1 as plain text.
pub fn render(cost: &CostModel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1. Number of transistors of {}-bit test registers and multiplexers\n",
        cost.width()
    ));
    out.push_str("a) Test registers\n");
    out.push_str("  Type  ");
    for (label, _) in register_rows(cost) {
        out.push_str(&format!("{label:>8}"));
    }
    out.push_str("\n  #Trs  ");
    for (_, transistors) in register_rows(cost) {
        out.push_str(&format!("{transistors:>8}"));
    }
    out.push_str("\nb) Multiplexers\n  #MuxIn");
    for (n, _) in mux_rows(cost) {
        out.push_str(&format!("{n:>8}"));
    }
    out.push_str("\n  #Trs  ");
    for (_, transistors) in mux_rows(cost) {
        out.push_str(&format!("{transistors:>8}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_table_matches_the_paper() {
        let cost = CostModel::eight_bit();
        assert_eq!(
            register_rows(&cost)
                .iter()
                .map(|(_, t)| *t)
                .collect::<Vec<_>>(),
            vec![208, 256, 304, 388, 596]
        );
        assert_eq!(
            mux_rows(&cost).iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![80, 176, 208, 300, 320, 350]
        );
        let text = render(&cost);
        assert!(text.contains("CBILBO"));
        assert!(text.contains("596"));
        assert!(text.contains("350"));
    }
}
