//! Reproduction of the paper's figures.
//!
//! * **Figure 1** — the example DFG and its three-register / two-module data
//!   path. We regenerate the DFG (Graphviz), synthesise the reference data
//!   path with the ILP and print its structure.
//! * **Figure 2** — a partial data path illustrating signature-register
//!   assignment (which registers can compact which modules' responses).
//! * **Figure 3** — a partial data path illustrating TPG assignment (which
//!   registers can feed which module input ports).

use std::fmt::Write as _;

use bist_core::{reference, synthesis, SynthesisConfig};
use bist_datapath::interconnect::ModulePort;
use bist_datapath::test_plan::TpgSource;
use bist_dfg::{benchmarks, dot};

/// Regenerates Figure 1: the example DFG (as Graphviz DOT) and a description
/// of the synthesised data path.
///
/// # Errors
///
/// Propagates synthesis errors (not expected for the Figure 1 example).
pub fn render_figure1(config: &SynthesisConfig) -> Result<String, bist_core::CoreError> {
    let input = benchmarks::figure1();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1(a): data flow graph (Graphviz DOT)\n");
    out.push_str(&dot::to_dot_scheduled(&input));

    let design = reference::synthesize_reference(&input, config)?;
    let _ = writeln!(out, "\nFigure 1(b): synthesised data path");
    let _ = writeln!(
        out,
        "  registers: {}   modules: {}   area: {} transistors",
        design.datapath.num_registers(),
        design.datapath.num_modules(),
        design.area.total()
    );
    for (r, reg) in design.datapath.registers().iter().enumerate() {
        let vars: Vec<&str> = reg
            .variables
            .iter()
            .map(|&v| input.dfg().var(v).name.as_str())
            .collect();
        let _ = writeln!(out, "  R{r} = {{{}}}", vars.join(", "));
    }
    for (m, module) in design.datapath.modules().iter().enumerate() {
        let sources: Vec<String> = (0..module.num_inputs)
            .map(|port| {
                let regs = design
                    .datapath
                    .interconnect()
                    .registers_driving_port(ModulePort { module: m, port });
                format!(
                    "p{port}<-{{{}}}",
                    regs.iter()
                        .map(|r| format!("R{r}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "  {} ({}): {}",
            module.name,
            module.class,
            sources.join("  ")
        );
    }
    Ok(out)
}

/// Regenerates the content of Figures 2 and 3: for each module of the
/// Figure 1 data path, which registers could serve as its signature register
/// (Figure 2) and which registers could serve as TPGs for each input port
/// (Figure 3), plus the assignment actually chosen by the ILP for a 2-test
/// session.
///
/// # Errors
///
/// Propagates synthesis errors (not expected for the Figure 1 example).
pub fn render_fig2_fig3(config: &SynthesisConfig) -> Result<String, bist_core::CoreError> {
    let input = benchmarks::figure1();
    let design = synthesis::synthesize_bist(&input, 2, config)?;
    let dp = &design.datapath;
    let mut out = String::new();

    let _ = writeln!(out, "Figure 2: signature register assignment candidates");
    for m in 0..dp.num_modules() {
        let candidates: Vec<String> = dp
            .interconnect()
            .registers_driven_by_module(m)
            .iter()
            .map(|r| format!("R{r}"))
            .collect();
        let chosen = design
            .plan
            .sessions
            .iter()
            .find_map(|s| s.sr.get(&m))
            .map(|r| format!("R{r}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  module {} ({}): candidates {{{}}}, chosen SR = {}",
            dp.modules()[m].name,
            dp.modules()[m].class,
            candidates.join(", "),
            chosen
        );
    }

    let _ = writeln!(out, "\nFigure 3: TPG assignment candidates");
    for m in 0..dp.num_modules() {
        for port in 0..dp.modules()[m].num_inputs {
            let candidates: Vec<String> = dp
                .interconnect()
                .registers_driving_port(ModulePort { module: m, port })
                .iter()
                .map(|r| format!("R{r}"))
                .collect();
            let chosen = design
                .plan
                .sessions
                .iter()
                .find_map(|s| s.tpg.get(&(m, port)))
                .map(|src| match src {
                    TpgSource::Register(r) => format!("R{r}"),
                    TpgSource::ConstantGenerator => "dedicated generator".into(),
                })
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  module {} port {}: candidates {{{}}}, chosen TPG = {}",
                dp.modules()[m].name,
                port,
                candidates.join(", "),
                chosen
            );
        }
    }

    let _ = writeln!(
        out,
        "\nRegister reconfiguration for the 2-test session (area {} transistors):",
        design.area.total()
    );
    for r in 0..dp.num_registers() {
        let _ = writeln!(out, "  R{r}: {}", dp.register_kind(r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick() -> SynthesisConfig {
        crate::workload::quick_config(Duration::from_millis(300))
    }

    #[test]
    fn figure1_rendering_mentions_every_register_and_module() {
        let text = render_figure1(&quick()).unwrap();
        assert!(text.contains("digraph"));
        assert!(text.contains("R0"));
        assert!(text.contains("R2"));
        assert!(text.contains("registers: 3"));
        assert!(text.contains("modules: 2"));
    }

    #[test]
    fn fig2_fig3_rendering_shows_candidates_and_choices() {
        let text = render_fig2_fig3(&quick()).unwrap();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("chosen SR"));
        assert!(text.contains("chosen TPG"));
        assert!(text.contains("Register reconfiguration"));
    }
}
