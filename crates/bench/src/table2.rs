//! Reproduction of Table 2: ADVBIST area overhead and solve time for every
//! k-test session of every circuit.

use bist_core::{SynthesisConfig, SynthesisEngine};
use bist_dfg::SynthesisInput;

use crate::report::SessionRow;
use crate::workload;

/// Runs ADVBIST for every `k = 1..=N` of one circuit and returns one row per
/// test session.
///
/// The circuit runs on one [`SynthesisEngine`]: the base model is shared
/// between the reference solve and every k-solve, and each k chains the
/// previous incumbent as a warm start. Per-solve [`bist_ilp::SolveStats`]
/// are threaded into the rows.
///
/// # Errors
///
/// Propagates synthesis errors (none are expected for the bundled
/// benchmarks).
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<Vec<SessionRow>, bist_core::CoreError> {
    let engine = SynthesisEngine::new(input, config)?;
    let reference = engine.synthesize_reference()?;
    let rows = engine
        .sweep_chained()?
        .into_iter()
        .map(|outcome| {
            let design = outcome.design;
            SessionRow {
                circuit: name.to_string(),
                sessions: design.sessions,
                overhead_percent: design.overhead_percent(reference.area.total()),
                time_seconds: design.stats.time.as_secs_f64(),
                optimal: design.optimal,
                area: design.area.total(),
                reference_area: reference.area.total(),
                nodes: design.stats.nodes,
                lp_solves: design.stats.lp_solves,
            }
        })
        .collect();
    Ok(rows)
}

/// Runs the full Table 2 sweep over all six circuits, one circuit per worker
/// thread. Row order is circuit order, independent of scheduling.
///
/// # Errors
///
/// Propagates the first synthesis error (in circuit order).
pub fn run_all(budget: bist_ilp::Budget) -> Result<Vec<SessionRow>, bist_core::CoreError> {
    let config = workload::quick_config_budget(budget);
    let circuits = workload::circuits();
    let results =
        workload::par_map_circuits(&circuits, |name, input| run_circuit(name, input, &config));
    let mut rows = Vec::new();
    for result in results {
        rows.extend(result?);
    }
    Ok(rows)
}

/// Renders rows in the layout of the paper's Table 2 (one circuit per block,
/// one column per k). Rows whose optimality was not proven are marked with
/// `*`, matching the paper's convention.
pub fn render(rows: &[SessionRow]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Performance of the proposed method ADVBIST\n");
    out.push_str(&format!(
        "{:<10} {:>4} {:>12} {:>12} {:>10} {:>10}\n",
        "Ckt", "k", "overhead(%)", "time(s)", "area", "ref.area"
    ));
    let mut last_circuit = "";
    for row in rows {
        if row.circuit != last_circuit && !last_circuit.is_empty() {
            out.push('\n');
        }
        last_circuit = &row.circuit;
        let marker = if row.optimal { "" } else { "*" };
        out.push_str(&format!(
            "{:<10} {:>4} {:>11.1}{} {:>12.2} {:>10} {:>10}\n",
            row.circuit,
            row.sessions,
            row.overhead_percent,
            if marker.is_empty() { " " } else { marker },
            row.time_seconds,
            row.area,
            row.reference_area
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;
    use std::time::Duration;

    #[test]
    fn figure1_rows_have_nonnegative_overhead() {
        let input = benchmarks::figure1();
        let config = workload::quick_config(Duration::from_millis(300));
        let rows = run_circuit("figure1", &input, &config).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.overhead_percent >= 0.0);
            assert!(row.area >= row.reference_area);
        }
        let text = render(&rows);
        assert!(text.contains("figure1"));
        assert!(text.contains("overhead"));
    }

    #[test]
    fn tseng_sweep_produces_reasonable_overheads() {
        // The paper's Table 2 shows overheads shrinking as k grows (more
        // sub-test sessions relax the concurrency constraints). Under the
        // small time budgets used in tests the solver is heuristic, so we
        // only check the sweep structure and that overheads stay in a sane
        // band; the strict trend is checked by the harness run recorded in
        // EXPERIMENTS.md.
        let input = benchmarks::tseng();
        let config = workload::quick_config(Duration::from_millis(600));
        let rows = run_circuit("tseng", &input, &config).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.overhead_percent >= 0.0, "{row:?}");
            assert!(row.overhead_percent <= 120.0, "{row:?}");
            assert!(row.area >= row.reference_area, "{row:?}");
        }
        assert_eq!(rows[0].sessions, 1);
        assert_eq!(rows[2].sessions, 3);
    }
}
