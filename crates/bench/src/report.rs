//! Serialisable result records for the experiment harness.

use serde::{Deserialize, Serialize};

/// One row of the Table 2 reproduction: ADVBIST for one circuit and one
/// k-test session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRow {
    /// Circuit name.
    pub circuit: String,
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Area overhead over the reference circuit, in percent.
    pub overhead_percent: f64,
    /// Wall-clock solve time in seconds.
    pub time_seconds: f64,
    /// Whether the solver proved optimality within its budget (rows the paper
    /// marks with `*` are the non-proven ones).
    pub optimal: bool,
    /// Total area (registers + multiplexers) in transistors.
    pub area: u64,
    /// Reference area in transistors.
    pub reference_area: u64,
}

/// One row of the Table 3 reproduction: one method on one circuit at the
/// maximal test-session count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Circuit name.
    pub circuit: String,
    /// Method name (`Ref.`, `ADVBIST`, `ADVAN`, `RALLOC`, `BITS`).
    pub method: String,
    /// Number of sub-test sessions.
    pub sessions: usize,
    /// Total registers (column R).
    pub registers: usize,
    /// TPG-only registers (column T).
    pub tpgs: usize,
    /// SR-only registers (column S).
    pub srs: usize,
    /// BILBOs (column B).
    pub bilbos: usize,
    /// CBILBOs (column C).
    pub cbilbos: usize,
    /// Total multiplexer inputs (column M).
    pub mux_inputs: usize,
    /// Total area in transistors (column Area).
    pub area: u64,
    /// Area overhead in percent (column OH).
    pub overhead_percent: f64,
}

/// A complete harness run, serialisable to JSON for EXPERIMENTS.md.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Per-instance ILP budget in seconds.
    pub time_limit_seconds: f64,
    /// Table 2 rows.
    pub table2: Vec<SessionRow>,
    /// Table 3 rows.
    pub table3: Vec<MethodRow>,
}

impl ExperimentReport {
    /// Serialises the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serde serialisation failures (not expected for these
    /// plain-data types).
    pub fn to_json(&self) -> Result<String, serde_json_error::Error> {
        serde_json_error::to_string_pretty(self)
    }
}

/// Minimal JSON writer so the harness does not need `serde_json` (which is
/// not on the approved dependency list). Only the subset needed by
/// [`ExperimentReport`] is supported.
pub mod serde_json_error {
    //! Tiny JSON serialisation shim (see the module-level note).
    use serde::ser::{self, Serialize};
    use std::fmt;

    /// Serialisation error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json serialisation error: {}", self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    /// Serialises a value to a pretty-printed JSON string.
    ///
    /// # Errors
    ///
    /// Returns an error for value shapes the shim does not support (maps with
    /// non-string keys, bytes, etc.), none of which occur in the harness
    /// reports.
    pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
        let mut out = String::new();
        value.serialize(JsonSer { out: &mut out, indent: 0 })?;
        Ok(out)
    }

    struct JsonSer<'a> {
        out: &'a mut String,
        indent: usize,
    }

    impl JsonSer<'_> {
        fn pad(&mut self) {
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    }

    macro_rules! forward_num {
        ($method:ident, $ty:ty) => {
            fn $method(self, v: $ty) -> Result<(), Error> {
                self.out.push_str(&v.to_string());
                Ok(())
            }
        };
    }

    impl<'a> ser::Serializer for JsonSer<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = SeqSer<'a>;
        type SerializeTuple = SeqSer<'a>;
        type SerializeTupleStruct = SeqSer<'a>;
        type SerializeTupleVariant = SeqSer<'a>;
        type SerializeMap = StructSer<'a>;
        type SerializeStruct = StructSer<'a>;
        type SerializeStructVariant = StructSer<'a>;

        forward_num!(serialize_i8, i8);
        forward_num!(serialize_i16, i16);
        forward_num!(serialize_i32, i32);
        forward_num!(serialize_i64, i64);
        forward_num!(serialize_u8, u8);
        forward_num!(serialize_u16, u16);
        forward_num!(serialize_u32, u32);
        forward_num!(serialize_u64, u64);

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(f64::from(v))
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                self.out.push_str(&format!("{v:.4}"));
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.serialize_str(&v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.out.push('"');
            self.out.push_str(&escape(v));
            self.out.push('"');
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
            Err(ser::Error::custom("bytes not supported"))
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _index: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            _index: u32,
            _variant: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Error> {
            self.out.push('[');
            Ok(SeqSer {
                out: self.out,
                indent: self.indent,
                first: true,
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _index: u32,
            _variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Error> {
            self.out.push('{');
            Ok(StructSer {
                out: self.out,
                indent: self.indent + 1,
                first: true,
            })
        }
        fn serialize_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Error> {
            self.serialize_map(Some(len))
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _index: u32,
            _variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Error> {
            self.serialize_map(Some(len))
        }
    }

    /// Sequence serialiser.
    pub struct SeqSer<'a> {
        out: &'a mut String,
        indent: usize,
        first: bool,
    }

    impl SeqSer<'_> {
        fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            if !self.first {
                self.out.push_str(", ");
            }
            self.first = false;
            value.serialize(JsonSer {
                out: self.out,
                indent: self.indent,
            })
        }
    }

    macro_rules! impl_seq {
        ($trait:path, $method:ident) => {
            impl $trait for SeqSer<'_> {
                type Ok = ();
                type Error = Error;
                fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
                    self.element(value)
                }
                fn end(self) -> Result<(), Error> {
                    self.out.push(']');
                    Ok(())
                }
            }
        };
    }
    impl_seq!(ser::SerializeSeq, serialize_element);
    impl_seq!(ser::SerializeTuple, serialize_element);
    impl_seq!(ser::SerializeTupleStruct, serialize_field);
    impl_seq!(ser::SerializeTupleVariant, serialize_field);

    /// Struct / map serialiser.
    pub struct StructSer<'a> {
        out: &'a mut String,
        indent: usize,
        first: bool,
    }

    impl StructSer<'_> {
        fn entry<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> Result<(), Error> {
            if !self.first {
                self.out.push(',');
            }
            self.first = false;
            self.out.push('\n');
            let mut ser = JsonSer {
                out: self.out,
                indent: self.indent,
            };
            ser.pad();
            self.out.push('"');
            self.out.push_str(&escape(key));
            self.out.push_str("\": ");
            value.serialize(JsonSer {
                out: self.out,
                indent: self.indent,
            })
        }
        fn finish(self) -> Result<(), Error> {
            self.out.push('\n');
            let mut ser = JsonSer {
                out: self.out,
                indent: self.indent.saturating_sub(1),
            };
            ser.pad();
            self.out.push('}');
            Ok(())
        }
    }

    impl ser::SerializeStruct for StructSer<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.entry(key, value)
        }
        fn end(self) -> Result<(), Error> {
            self.finish()
        }
    }
    impl ser::SerializeStructVariant for StructSer<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.entry(key, value)
        }
        fn end(self) -> Result<(), Error> {
            self.finish()
        }
    }
    impl ser::SerializeMap for StructSer<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, _key: &T) -> Result<(), Error> {
            Err(ser::Error::custom("maps with dynamic keys not supported"))
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, _value: &T) -> Result<(), Error> {
            Err(ser::Error::custom("maps with dynamic keys not supported"))
        }
        fn end(self) -> Result<(), Error> {
            self.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_to_json() {
        let report = ExperimentReport {
            time_limit_seconds: 5.0,
            table2: vec![SessionRow {
                circuit: "tseng".into(),
                sessions: 3,
                overhead_percent: 25.7,
                time_seconds: 1.5,
                optimal: true,
                area: 2152,
                reference_area: 1600,
            }],
            table3: vec![MethodRow {
                circuit: "tseng".into(),
                method: "ADVBIST".into(),
                sessions: 3,
                registers: 5,
                tpgs: 2,
                srs: 1,
                bilbos: 2,
                cbilbos: 0,
                mux_inputs: 14,
                area: 2152,
                overhead_percent: 25.7,
            }],
        };
        let json = report.to_json().unwrap();
        assert!(json.contains("\"tseng\""));
        assert!(json.contains("\"overhead_percent\": 25.7"));
        assert!(json.contains("\"optimal\": true"));
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn special_floats_become_null() {
        let row = SessionRow {
            circuit: "x".into(),
            sessions: 1,
            overhead_percent: f64::NAN,
            time_seconds: 0.0,
            optimal: false,
            area: 0,
            reference_area: 0,
        };
        let report = ExperimentReport {
            time_limit_seconds: 1.0,
            table2: vec![row],
            table3: vec![],
        };
        let json = report.to_json().unwrap();
        assert!(json.contains("null"));
    }
}
