//! Serialisable result records for the experiment harness.
//!
//! The records are written as JSON by a small hand-rolled writer (the build
//! environment has no crate registry, so `serde`/`serde_json` are not
//! available); only the exact shapes below need to serialise, which keeps
//! the writer tiny and the output stable for diffing across runs.

use crate::sweep::CircuitSweep;

/// One row of the Table 2 reproduction: ADVBIST for one circuit and one
/// k-test session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRow {
    /// Circuit name.
    pub circuit: String,
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Area overhead over the reference circuit, in percent.
    pub overhead_percent: f64,
    /// Wall-clock solve time in seconds.
    pub time_seconds: f64,
    /// Whether the solver proved optimality within its budget (rows the paper
    /// marks with `*` are the non-proven ones).
    pub optimal: bool,
    /// Total area (registers + multiplexers) in transistors.
    pub area: u64,
    /// Reference area in transistors.
    pub reference_area: u64,
    /// Branch-and-bound nodes explored by the main solve.
    pub nodes: u64,
    /// LP relaxations solved by the main solve.
    pub lp_solves: u64,
}

impl SessionRow {
    /// Serialises the row as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .u64("sessions", self.sessions as u64)
            .f64("overhead_percent", self.overhead_percent)
            .f64("time_seconds", self.time_seconds)
            .bool("optimal", self.optimal)
            .u64("area", self.area)
            .u64("reference_area", self.reference_area)
            .u64("nodes", self.nodes)
            .u64("lp_solves", self.lp_solves)
            .finish()
    }
}

/// One row of the Table 3 reproduction: one method on one circuit at the
/// maximal test-session count.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Circuit name.
    pub circuit: String,
    /// Method name (`Ref.`, `ADVBIST`, `ADVAN`, `RALLOC`, `BITS`).
    pub method: String,
    /// Number of sub-test sessions.
    pub sessions: usize,
    /// Total registers (column R).
    pub registers: usize,
    /// TPG-only registers (column T).
    pub tpgs: usize,
    /// SR-only registers (column S).
    pub srs: usize,
    /// BILBOs (column B).
    pub bilbos: usize,
    /// CBILBOs (column C).
    pub cbilbos: usize,
    /// Total multiplexer inputs (column M).
    pub mux_inputs: usize,
    /// Total area in transistors (column Area).
    pub area: u64,
    /// Area overhead in percent (column OH).
    pub overhead_percent: f64,
}

impl MethodRow {
    /// Serialises the row as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .str("method", &self.method)
            .u64("sessions", self.sessions as u64)
            .u64("registers", self.registers as u64)
            .u64("tpgs", self.tpgs as u64)
            .u64("srs", self.srs as u64)
            .u64("bilbos", self.bilbos as u64)
            .u64("cbilbos", self.cbilbos as u64)
            .u64("mux_inputs", self.mux_inputs as u64)
            .u64("area", self.area)
            .f64("overhead_percent", self.overhead_percent)
            .finish()
    }
}

/// Serialises a per-kind cut counter block ([`bist_ilp::CutCounts`]) as a
/// nested JSON object — shared by the sweep and search artifact rows.
pub fn cut_counts_json(counts: &bist_ilp::CutCounts) -> String {
    json::Obj::new()
        .u64("cover", counts.cover)
        .u64("clique", counts.clique)
        .u64("gomory", counts.gomory)
        .u64("lifted_cover", counts.lifted_cover)
        .u64("nogood", counts.nogood)
        .finish()
}

/// A complete harness run, serialisable to JSON for EXPERIMENTS.md.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentReport {
    /// Per-instance ILP budget in seconds.
    pub time_limit_seconds: f64,
    /// Table 2 rows.
    pub table2: Vec<SessionRow>,
    /// Table 3 rows.
    pub table3: Vec<MethodRow>,
    /// Per-circuit k-sweep comparison (rebuild baseline vs the layered
    /// engine), empty when the sweep benchmark did not run.
    pub sweep: Vec<CircuitSweep>,
}

impl ExperimentReport {
    /// Serialises the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Infallible in practice; the `Result` is kept so call sites do not
    /// change if a richer serialiser is swapped back in.
    pub fn to_json(&self) -> Result<String, std::fmt::Error> {
        Ok(json::Obj::new()
            .f64("time_limit_seconds", self.time_limit_seconds)
            .array("table2", self.table2.iter().map(SessionRow::to_json))
            .array("table3", self.table3.iter().map(MethodRow::to_json))
            .array("sweep", self.sweep.iter().map(CircuitSweep::to_json))
            .finish())
    }
}

/// Minimal JSON writing helpers shared by the harness reports: a tiny JSON
/// object/array writer covering string keys, the scalar types used by the
/// reports, and pre-serialised nested values. Non-finite floats are written
/// as `null` (JSON has no NaN/Inf).
pub mod json {
    /// Escapes a string for inclusion in a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a float as JSON (4 decimal places, `null` for non-finite).
    pub fn fmt_f64(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "null".to_string()
        }
    }

    /// Incremental JSON object writer.
    #[derive(Debug, Default)]
    pub struct Obj {
        fields: Vec<(String, String)>,
    }

    impl Obj {
        /// Starts an empty object.
        pub fn new() -> Self {
            Self::default()
        }

        fn push(mut self, key: &str, raw: String) -> Self {
            self.fields.push((key.to_string(), raw));
            self
        }

        /// Adds a string field.
        pub fn str(self, key: &str, value: &str) -> Self {
            let raw = format!("\"{}\"", escape(value));
            self.push(key, raw)
        }

        /// Adds an unsigned integer field.
        pub fn u64(self, key: &str, value: u64) -> Self {
            self.push(key, value.to_string())
        }

        /// Adds a float field (`null` when non-finite).
        pub fn f64(self, key: &str, value: f64) -> Self {
            self.push(key, fmt_f64(value))
        }

        /// Adds an optional unsigned integer field (`null` when absent).
        pub fn opt_u64(self, key: &str, value: Option<u64>) -> Self {
            match value {
                Some(v) => self.u64(key, v),
                None => self.push(key, "null".to_string()),
            }
        }

        /// Adds a boolean field.
        pub fn bool(self, key: &str, value: bool) -> Self {
            self.push(key, value.to_string())
        }

        /// Adds a field from a pre-serialised JSON value (nested objects).
        pub fn raw(self, key: &str, value: String) -> Self {
            self.push(key, value)
        }

        /// Adds an array field from pre-serialised JSON elements.
        pub fn array(self, key: &str, items: impl Iterator<Item = String>) -> Self {
            let body = items.collect::<Vec<_>>().join(", ");
            self.push(key, format!("[{body}]"))
        }

        /// Closes the object and returns its JSON text.
        pub fn finish(self) -> String {
            let mut out = String::from("{");
            for (i, (key, raw)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n  \"{}\": {}", escape(key), raw));
            }
            out.push_str("\n}");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_to_json() {
        let report = ExperimentReport {
            time_limit_seconds: 5.0,
            table2: vec![SessionRow {
                circuit: "tseng".into(),
                sessions: 3,
                overhead_percent: 25.7,
                time_seconds: 1.5,
                optimal: true,
                area: 2152,
                reference_area: 1600,
                nodes: 42,
                lp_solves: 7,
            }],
            table3: vec![MethodRow {
                circuit: "tseng".into(),
                method: "ADVBIST".into(),
                sessions: 3,
                registers: 5,
                tpgs: 2,
                srs: 1,
                bilbos: 2,
                cbilbos: 0,
                mux_inputs: 14,
                area: 2152,
                overhead_percent: 25.7,
            }],
            sweep: Vec::new(),
        };
        let json = report.to_json().unwrap();
        assert!(json.contains("\"tseng\""));
        assert!(json.contains("\"overhead_percent\": 25.7000"));
        assert!(json.contains("\"optimal\": true"));
        assert!(json.contains("\"nodes\": 42"));
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn special_floats_become_null() {
        let row = SessionRow {
            circuit: "x".into(),
            sessions: 1,
            overhead_percent: f64::NAN,
            time_seconds: 0.0,
            optimal: false,
            area: 0,
            reference_area: 0,
            nodes: 0,
            lp_solves: 0,
        };
        let report = ExperimentReport {
            time_limit_seconds: 1.0,
            table2: vec![row],
            table3: vec![],
            sweep: vec![],
        };
        let json = report.to_json().unwrap();
        assert!(json.contains("null"));
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
        assert_eq!(json::fmt_f64(f64::INFINITY), "null");
    }
}
