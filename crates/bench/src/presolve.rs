//! Presolve/cuts ablation: the reducing pipeline + cut pool against the
//! PR-1 solver (no model reduction, no cuts), per circuit × k × bound mode.
//!
//! This is the machine-readable perf trail for the reduce layer
//! (`BENCH_presolve.json`), the companion of the k-sweep comparison in
//! [`crate::sweep`]. Every instance is solved three ways under the *same
//! deterministic node budget* and the same [`bist_ilp::BoundMode`]:
//!
//! * **baseline** — presolve and cuts off (the PR-1 engine),
//! * **reduced** — the reducing presolve on, cuts off,
//! * **cuts** — presolve and the cut pool on (the default configuration).
//!
//! A fourth solve runs the `cuts` configuration through the layered
//! [`SynthesisEngine`], which reduces the circuit base *once* and replays
//! each per-k BIST delta through the variable map — it must reproduce the
//! rebuild path's search exactly (`engine_matches`), which is what pins down
//! that the shared reduced base loses nothing.
//!
//! All comparisons are quoted in branch-and-bound node counts: this
//! container is single-core with no crate registry, so wall-clock numbers
//! are noisy and unportable, while node counts are bit-reproducible.
//!
//! Reading the artifact: on the paper circuits the `reduced` and `cuts`
//! columns coincide (their root LPs violate no cover/clique inequality, so
//! `cuts_added` is 0 and the node win is the reduce pipeline's, chiefly the
//! implication disaggregation); the `cuts` column is still the one gated,
//! because it is the default solver configuration.

use bist_core::engine::SynthesisEngine;
use bist_core::formulation::BistFormulation;
use bist_core::{synthesis, CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_ilp::{BoundMode, SolveStats, SolverConfig};

use crate::report::json;

/// The bound modes the ablation sweeps.
pub fn modes() -> Vec<(&'static str, BoundMode)> {
    vec![
        ("lp", BoundMode::LpRelaxation),
        ("prop", BoundMode::Propagation),
    ]
}

/// A deterministic, node-limited configuration for one ablation variant.
pub fn ablation_config(
    mode: BoundMode,
    node_limit: u64,
    presolve: bool,
    cuts: bool,
) -> SynthesisConfig {
    SynthesisConfig {
        solver: SolverConfig {
            budget: bist_ilp::Budget::nodes(node_limit),
            bound_mode: mode,
            presolve,
            cuts,
            ..SolverConfig::default()
        },
        ..SynthesisConfig::default()
    }
}

/// One circuit × k × mode ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PresolveRow {
    /// Circuit name.
    pub circuit: String,
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Bound-mode label (`lp` or `prop`).
    pub mode: String,
    /// Nodes explored with presolve and cuts off (PR-1 behaviour).
    pub baseline_nodes: u64,
    /// Nodes explored with the reducing presolve only.
    pub reduced_nodes: u64,
    /// Nodes explored with presolve + cut pool (the default).
    pub cuts_nodes: u64,
    /// Nodes explored by the engine path (shared reduced base per circuit).
    pub engine_nodes: u64,
    /// Final objective of the baseline solve.
    pub baseline_objective: f64,
    /// Final objective of the presolve+cuts solve.
    pub cuts_objective: f64,
    /// Whether the engine solve reproduced the rebuild cuts solve exactly
    /// (same objective and same node count).
    pub engine_matches: bool,
    /// Variables the reduction eliminated from the full per-k model.
    pub vars_removed: u64,
    /// Rows the reduction removed from the full per-k model.
    pub rows_removed: u64,
    /// `vars_removed` over the full per-k variable count.
    pub var_reduction: f64,
    /// `rows_removed` over the full per-k row count.
    pub row_reduction: f64,
    /// Cutting planes the default solve added.
    pub cuts_added: u64,
    /// Nodes until the baseline first reached the best objective any
    /// variant found (`None` when it never did within the budget).
    pub nodes_to_target_baseline: Option<u64>,
    /// Nodes until the presolve+cuts solve first reached that objective.
    pub nodes_to_target_cuts: Option<u64>,
}

impl PresolveRow {
    /// Serialises the row as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .u64("sessions", self.sessions as u64)
            .str("mode", &self.mode)
            .u64("baseline_nodes", self.baseline_nodes)
            .u64("reduced_nodes", self.reduced_nodes)
            .u64("cuts_nodes", self.cuts_nodes)
            .u64("engine_nodes", self.engine_nodes)
            .f64("baseline_objective", self.baseline_objective)
            .f64("cuts_objective", self.cuts_objective)
            .bool("engine_matches", self.engine_matches)
            .u64("vars_removed", self.vars_removed)
            .u64("rows_removed", self.rows_removed)
            .f64("var_reduction", self.var_reduction)
            .f64("row_reduction", self.row_reduction)
            .u64("cuts_added", self.cuts_added)
            .opt_u64("nodes_to_target_baseline", self.nodes_to_target_baseline)
            .opt_u64("nodes_to_target_cuts", self.nodes_to_target_cuts)
            .finish()
    }
}

/// Per-circuit record of the one-time base reduction the engine shares
/// across its sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseReduction {
    /// Circuit name.
    pub circuit: String,
    /// Variables of the raw circuit base model.
    pub base_vars: u64,
    /// Rows of the raw circuit base model.
    pub base_rows: u64,
    /// Fraction of base variables eliminated.
    pub var_reduction: f64,
    /// Fraction of base rows removed.
    pub row_reduction: f64,
    /// Measured number of base (prefix) reductions performed for one whole
    /// engine sweep — construction plus every per-k solve — via the
    /// thread-local counter in `bist_ilp::reduce`. Must be exactly 1:
    /// [`SynthesisEngine::new`] reduces once and every k clones the result;
    /// the gate trips if a regression makes the sweep re-reduce per k.
    pub builds: u64,
}

impl BaseReduction {
    /// Serialises the record as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .u64("base_vars", self.base_vars)
            .u64("base_rows", self.base_rows)
            .f64("var_reduction", self.var_reduction)
            .f64("row_reduction", self.row_reduction)
            .u64("builds", self.builds)
            .finish()
    }
}

/// The full ablation result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PresolveAblation {
    /// Per-solve node budget.
    pub node_limit: u64,
    /// One row per circuit × k × mode.
    pub rows: Vec<PresolveRow>,
    /// One base-reduction record per circuit.
    pub bases: Vec<BaseReduction>,
}

impl PresolveAblation {
    /// Serialises the ablation as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("node_limit", self.node_limit)
            .array("bases", self.bases.iter().map(BaseReduction::to_json))
            .array("rows", self.rows.iter().map(PresolveRow::to_json))
            .finish()
    }

    /// Regressions of the default (reduce+cuts) solver against the PR-1
    /// baseline on the exactly-solvable `figure1` circuit. The node gate is
    /// evaluated at the LP bound mode — the mode of the deterministic sweep
    /// benchmark, and the one the reduction targets (the disaggregated rows
    /// tighten the LP relaxation; under propagation-only bounds they can
    /// only perturb the branching order). Any `lp` instance where
    /// reduce+cuts explored more nodes is a violation, the `lp` total must
    /// strictly drop, and the engine path must reproduce the rebuild path
    /// exactly in every mode. Empty means the gate passes.
    pub fn figure1_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for base in &self.bases {
            if base.builds != 1 {
                violations.push(format!(
                    "{}: the engine sweep reduced the base {} times (expected exactly once)",
                    base.circuit, base.builds
                ));
            }
        }
        let mut total_baseline = 0u64;
        let mut total_cuts = 0u64;
        let mut seen = false;
        for row in self.rows.iter().filter(|r| r.circuit == "figure1") {
            if !row.engine_matches {
                violations.push(format!(
                    "figure1 k={} mode={}: engine path diverged from the rebuild path",
                    row.sessions, row.mode
                ));
            }
            if row.mode != "lp" {
                continue;
            }
            seen = true;
            total_baseline += row.baseline_nodes;
            total_cuts += row.cuts_nodes;
            if row.cuts_nodes > row.baseline_nodes {
                violations.push(format!(
                    "figure1 k={} mode={}: reduce+cuts explored {} nodes vs baseline {}",
                    row.sessions, row.mode, row.cuts_nodes, row.baseline_nodes
                ));
            }
        }
        if seen && total_cuts >= total_baseline {
            violations.push(format!(
                "figure1: reduce+cuts total {total_cuts} nodes is not strictly below the \
                 baseline total {total_baseline}"
            ));
        }
        violations
    }
}

/// Dimensions of the full per-k model, for the reduction ratios.
fn model_dims(input: &SynthesisInput, k: usize) -> Result<(usize, usize), CoreError> {
    let config = SynthesisConfig::default();
    let mut formulation = BistFormulation::new(input, &config)?;
    formulation.add_interconnect();
    formulation.add_mux_sizing();
    formulation.add_bist(k)?;
    formulation.set_bist_objective();
    Ok((
        formulation.model.num_vars(),
        formulation.model.num_constraints(),
    ))
}

fn nodes_to(stats: &SolveStats, target: f64) -> Option<u64> {
    stats.nodes_to_target(target, 1e-6)
}

/// Runs the ablation for one circuit over every `k` and every bound mode.
///
/// # Errors
///
/// Propagates the first synthesis error of any variant.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    node_limit: u64,
) -> Result<(Vec<PresolveRow>, BaseReduction), CoreError> {
    let num_sessions = input.binding().num_modules();
    let mut rows = Vec::new();
    let mut base_record = None;

    // The per-k model dimensions are bound-mode independent; compute them
    // once per circuit instead of once per mode.
    let dims: Vec<(usize, usize)> = (1..=num_sessions)
        .map(|k| model_dims(input, k))
        .collect::<Result<_, _>>()?;

    for (mode_name, mode) in modes() {
        let baseline_config = ablation_config(mode, node_limit, false, false);
        let reduced_config = ablation_config(mode, node_limit, true, false);
        let cuts_config = ablation_config(mode, node_limit, true, true);
        // One engine per mode: run its entire k-sweep first, with the
        // thread-local prefix-reduction counter around it, so the
        // "base reduced once per sweep" claim is *measured* — the engine's
        // construction reduces the base and the per-k solves must add zero
        // further prefix reductions.
        let before = bist_ilp::reduce::prefix_reductions_on_thread();
        let engine = SynthesisEngine::new(input, &cuts_config)?;
        let engine_designs = (1..=num_sessions)
            .map(|k| engine.synthesize(k))
            .collect::<Result<Vec<_>, _>>()?;
        let builds = (bist_ilp::reduce::prefix_reductions_on_thread() - before) as u64;
        let replace = base_record
            .as_ref()
            .map(|b: &BaseReduction| builds > b.builds)
            .unwrap_or(true);
        if replace {
            // Record the worst (highest) measured build count across modes,
            // so a rebuild-per-k regression in any mode trips the gate.
            let report = engine
                .base_reduce_report()
                .expect("presolve is on in the cuts configuration");
            base_record = Some(BaseReduction {
                circuit: name.to_string(),
                base_vars: report.original_vars as u64,
                base_rows: report.original_rows as u64,
                var_reduction: report.var_reduction_ratio(),
                row_reduction: report.row_reduction_ratio(),
                builds,
            });
        }

        for k in 1..=num_sessions {
            let baseline = synthesis::synthesize_bist(input, k, &baseline_config)?;
            let reduced = synthesis::synthesize_bist(input, k, &reduced_config)?;
            let cuts = synthesis::synthesize_bist(input, k, &cuts_config)?;
            let engine_design = &engine_designs[k - 1];

            let (num_vars, num_rows) = dims[k - 1];
            let target = baseline
                .objective
                .min(reduced.objective)
                .min(cuts.objective);
            let engine_matches = (engine_design.objective - cuts.objective).abs() < 1e-6
                && engine_design.stats.nodes == cuts.stats.nodes;

            rows.push(PresolveRow {
                circuit: name.to_string(),
                sessions: k,
                mode: mode_name.to_string(),
                baseline_nodes: baseline.stats.nodes,
                reduced_nodes: reduced.stats.nodes,
                cuts_nodes: cuts.stats.nodes,
                engine_nodes: engine_design.stats.nodes,
                baseline_objective: baseline.objective,
                cuts_objective: cuts.objective,
                engine_matches,
                vars_removed: cuts.stats.presolve_vars_removed,
                rows_removed: cuts.stats.presolve_rows_removed,
                var_reduction: cuts.stats.presolve_vars_removed as f64 / num_vars.max(1) as f64,
                row_reduction: cuts.stats.presolve_rows_removed as f64 / num_rows.max(1) as f64,
                cuts_added: cuts.stats.cuts,
                nodes_to_target_baseline: nodes_to(&baseline.stats, target),
                nodes_to_target_cuts: nodes_to(&cuts.stats, target),
            });
        }
    }

    Ok((
        rows,
        base_record.expect("at least one mode ran for the circuit"),
    ))
}

/// Runs the ablation over the given circuits.
///
/// # Errors
///
/// Propagates the first synthesis error.
pub fn run_all(
    circuits: &[(&str, SynthesisInput)],
    node_limit: u64,
) -> Result<PresolveAblation, CoreError> {
    let mut ablation = PresolveAblation {
        node_limit,
        ..PresolveAblation::default()
    };
    for (name, input) in circuits {
        let (rows, base) = run_circuit(name, input, node_limit)?;
        ablation.rows.extend(rows);
        ablation.bases.push(base);
    }
    Ok(ablation)
}

/// Renders the ablation as a plain-text table.
pub fn render(ablation: &PresolveAblation) -> String {
    let mut out = String::new();
    out.push_str("presolve/cuts ablation: nodes per circuit x k x bound mode\n");
    out.push_str(&format!(
        "{:<10} {:>2} {:>5} {:>10} {:>10} {:>10} {:>7} {:>7} {:>6}  engine\n",
        "Ckt", "k", "mode", "baseline", "reduced", "cuts", "var-rm", "row-rm", "#cuts"
    ));
    for row in &ablation.rows {
        out.push_str(&format!(
            "{:<10} {:>2} {:>5} {:>10} {:>10} {:>10} {:>6.0}% {:>6.0}% {:>6}  {}\n",
            row.circuit,
            row.sessions,
            row.mode,
            row.baseline_nodes,
            row.reduced_nodes,
            row.cuts_nodes,
            100.0 * row.var_reduction,
            100.0 * row.row_reduction,
            row.cuts_added,
            if row.engine_matches {
                "match"
            } else {
                "MISMATCH"
            }
        ));
    }
    for base in &ablation.bases {
        out.push_str(&format!(
            "base {}: {} vars / {} rows, reduced once per sweep ({:.0}% vars, {:.0}% rows)\n",
            base.circuit,
            base.base_vars,
            base.base_rows,
            100.0 * base.var_reduction,
            100.0 * base.row_reduction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_reduce_and_cuts_strictly_lower_node_counts() {
        let input = benchmarks::figure1();
        let (rows, base) = run_circuit("figure1", &input, 20_000).unwrap();
        assert_eq!(rows.len(), 2 * 2); // 2 modes x k in {1, 2}
        let ablation = PresolveAblation {
            node_limit: 20_000,
            rows,
            bases: vec![base],
        };
        let violations = ablation.figure1_violations();
        assert!(
            violations.is_empty(),
            "{violations:?}\n{}",
            render(&ablation)
        );
        // The base reduction must actually shrink the model, and happen once.
        assert_eq!(ablation.bases[0].builds, 1);
        assert!(ablation.bases[0].var_reduction > 0.0);
        for row in &ablation.rows {
            assert!(row.engine_matches, "{row:?}");
            assert!(row.vars_removed > 0, "{row:?}");
            // Exactly solvable: every variant must agree on the optimum.
            assert!((row.baseline_objective - row.cuts_objective).abs() < 1e-6);
        }
        let json = ablation.to_json();
        assert!(json.contains("\"figure1\""));
        assert!(json.contains("\"node_limit\": 20000"));
        let text = render(&ablation);
        assert!(text.contains("figure1"));
    }
}
