//! Repeated-submission benchmark for the `advbist::service` front door and
//! its fingerprint-keyed [`SolveCache`].
//!
//! Three phases, all under deterministic node budgets so the artifact
//! (`BENCH_service.json`) is comparable across machines:
//!
//! 1. **Cold batch** — one node-budgeted sweep job per circuit on a fresh
//!    shared cache: every probe misses, every solve runs.
//! 2. **Warm resubmission** — the same circuits resubmitted with *jittered*
//!    k-ranges (staggered sub-ranges of the sweep, as an interactive client
//!    exploring a design space would issue them) against the same cache:
//!    every row replays from the cache, so the warm wall-clock must land
//!    below the cold batch's.
//! 3. **Interrupt → resume** — `tseng` k=1 is solved cold once to find its
//!    tree size N, interrupted at N/2 with snapshot capture on, and then
//!    resubmitted under an open budget: the service finds the snapshot and
//!    *continues* the tree. The resumed job's total node count must be
//!    strictly below interrupt + cold-restart (N/2 + N) — i.e. resuming
//!    must beat throwing the frontier away — and its objective must be
//!    bit-identical to the cold solve's ("the cache changes performance,
//!    never results").

use std::sync::Arc;
use std::time::Instant;

use advbist::service::{JobService, SolveCache, SynthesisJob};
use advbist::Budget;
use bist_dfg::SynthesisInput;

use crate::report::json;
use crate::workload::sweep_config;

/// Aggregate of one service batch (cold or warm phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Rows reported across the batch.
    pub rows: u64,
    /// Cache hits across the batch.
    pub hits: u64,
    /// Cache misses across the batch.
    pub misses: u64,
    /// Wall-clock seconds of `JobService::run`.
    pub seconds: f64,
}

impl PhaseStats {
    fn to_json(self) -> String {
        json::Obj::new()
            .u64("jobs", self.jobs)
            .u64("rows", self.rows)
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .f64("seconds", self.seconds)
            .finish()
    }
}

/// The interrupt-at-N/2 resume comparison on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeStats {
    /// Circuit of the comparison.
    pub circuit: String,
    /// k-test session solved.
    pub sessions: usize,
    /// Node count of the uninterrupted cold solve (its tree size N).
    pub cold_nodes: u64,
    /// Nodes explored before the interrupt (N/2).
    pub interrupt_nodes: u64,
    /// Whether the interrupted job reported a captured snapshot.
    pub snapshot_captured: bool,
    /// Total node count of the resumed job (continues the interrupted
    /// count, so this is the whole tree as the resumed search saw it).
    pub resumed_total_nodes: u64,
    /// What a cold restart after the interrupt would cost in total:
    /// `interrupt_nodes + cold_nodes`.
    pub cold_restart_total_nodes: u64,
    /// Whether the resumed objective is bit-identical to the cold solve's.
    pub objective_matches: bool,
    /// Wall-clock seconds of the cold solve job.
    pub cold_seconds: f64,
    /// Wall-clock seconds of the resumed job.
    pub resumed_seconds: f64,
}

impl ResumeStats {
    fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .u64("sessions", self.sessions as u64)
            .u64("cold_nodes", self.cold_nodes)
            .u64("interrupt_nodes", self.interrupt_nodes)
            .bool("snapshot_captured", self.snapshot_captured)
            .u64("resumed_total_nodes", self.resumed_total_nodes)
            .u64("cold_restart_total_nodes", self.cold_restart_total_nodes)
            .bool("objective_matches", self.objective_matches)
            .f64("cold_seconds", self.cold_seconds)
            .f64("resumed_seconds", self.resumed_seconds)
            .finish()
    }
}

/// The whole service benchmark: both batch phases, the resume comparison
/// and the final cache counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBench {
    /// Per-solve node budget of the batch phases.
    pub node_limit: u64,
    /// Cold batch (fresh cache).
    pub cold: PhaseStats,
    /// Warm jittered resubmission (same cache).
    pub warm: PhaseStats,
    /// Interrupt-at-N/2 resume comparison.
    pub resume: ResumeStats,
    /// Final counters of the shared batch cache.
    pub cache_hits: u64,
    /// Final miss counter of the shared batch cache.
    pub cache_misses: u64,
    /// Final eviction counter of the shared batch cache.
    pub cache_evictions: u64,
    /// Approximate bytes held by the shared batch cache at the end.
    pub cache_bytes: u64,
}

impl ServiceBench {
    /// Serialises the whole benchmark as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("node_limit", self.node_limit)
            .raw("cold", self.cold.to_json())
            .raw("warm", self.warm.to_json())
            .raw("resume", self.resume.to_json())
            .u64("cache_hits", self.cache_hits)
            .u64("cache_misses", self.cache_misses)
            .u64("cache_evictions", self.cache_evictions)
            .u64("cache_bytes", self.cache_bytes)
            .finish()
    }

    /// The CI gates: empty when the cache and the resume path hold their
    /// contract, one human-readable violation per broken gate otherwise.
    pub fn violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.warm.hits == 0 {
            violations.push("warm resubmission produced no cache hits".to_string());
        }
        if self.warm.misses != 0 {
            violations.push(format!(
                "warm resubmission missed the cache {} times (expected 0)",
                self.warm.misses
            ));
        }
        if self.warm.seconds >= self.cold.seconds {
            violations.push(format!(
                "warm resubmission took {:.4}s, not below the cold batch's {:.4}s",
                self.warm.seconds, self.cold.seconds
            ));
        }
        if !self.resume.snapshot_captured {
            violations.push("interrupted job captured no snapshot".to_string());
        }
        if self.resume.resumed_total_nodes >= self.resume.cold_restart_total_nodes {
            violations.push(format!(
                "resume explored {} total nodes, not strictly below the {} of \
                 interrupt + cold restart",
                self.resume.resumed_total_nodes, self.resume.cold_restart_total_nodes
            ));
        }
        if !self.resume.objective_matches {
            violations.push("resumed objective diverged from the cold solve".to_string());
        }
        violations
    }
}

fn phase_stats(reports: &[advbist::service::JobReport], seconds: f64) -> PhaseStats {
    PhaseStats {
        jobs: reports.len() as u64,
        rows: reports.iter().map(|r| r.rows.len() as u64).sum(),
        hits: reports.iter().map(|r| r.cache_hits).sum(),
        misses: reports.iter().map(|r| r.cache_misses).sum(),
        seconds,
    }
}

fn completed(reports: &[advbist::service::JobReport], phase: &str) -> Result<(), String> {
    for report in reports {
        if !report.outcome.is_completed() {
            return Err(format!(
                "{phase}: job {} did not complete: {:?}",
                report.name, report.outcome
            ));
        }
    }
    Ok(())
}

/// Runs the benchmark: batch phases over `circuits`, resume comparison on
/// `resume_circuit`. The node limit budgets each batch solve; the resume
/// comparison derives its own interrupt point from the cold tree size.
///
/// # Errors
///
/// Returns a human-readable description of the first failed job.
pub fn run(
    circuits: &[(&str, SynthesisInput)],
    node_limit: u64,
    resume_circuit: (&str, SynthesisInput),
) -> Result<ServiceBench, String> {
    let cache = Arc::new(SolveCache::new(SolveCache::DEFAULT_CAPACITY_MB));

    // Phase 1: cold batch — full sweeps, fresh cache.
    let mut service = JobService::new().with_cache(cache.clone());
    for (name, input) in circuits {
        service.submit(
            SynthesisJob::new(format!("cold-{name}"), input.clone())
                .with_config(sweep_config(node_limit)),
        );
    }
    let started = Instant::now();
    let cold_reports = service.run();
    let cold = phase_stats(&cold_reports, started.elapsed().as_secs_f64());
    completed(&cold_reports, "cold batch")?;

    // Phase 2: warm resubmission with jittered k-ranges — staggered
    // sub-ranges of the sweep (start alternates 1/2 by submission index),
    // every k of which phase 1 already solved under the same budget.
    let mut service = JobService::new().with_cache(cache.clone());
    let mut expected_rows = 0u64;
    for (index, (name, input)) in circuits.iter().enumerate() {
        let n = input.binding().num_modules();
        let start = 1 + (index % 2).min(n - 1);
        expected_rows += (n - start + 1) as u64;
        service.submit(
            SynthesisJob::new(format!("warm-{name}"), input.clone())
                .with_config(sweep_config(node_limit))
                .with_sessions(start..=n),
        );
    }
    let started = Instant::now();
    let warm_reports = service.run();
    let warm = phase_stats(&warm_reports, started.elapsed().as_secs_f64());
    completed(&warm_reports, "warm resubmission")?;
    if warm.rows != expected_rows {
        return Err(format!(
            "warm resubmission reported {} rows, expected {expected_rows}",
            warm.rows
        ));
    }

    // Phase 3: interrupt at N/2, then resume through the snapshot cache.
    let (resume_name, resume_input) = resume_circuit;
    let exact = advbist::core::SynthesisConfig::exact();
    let resume_cache = Arc::new(SolveCache::new(SolveCache::DEFAULT_CAPACITY_MB));

    let mut service = JobService::new().with_cache(resume_cache.clone());
    service.submit(
        SynthesisJob::new(format!("{resume_name}-cold"), resume_input.clone())
            .with_config(exact.clone())
            .with_sessions(1..=1)
            .with_budget(Budget::unlimited().with_cache_mb(0)),
    );
    let cold_solo = service.run();
    completed(&cold_solo, "resume baseline")?;
    let cold_row = &cold_solo[0].rows[0];
    let cold_nodes = cold_row.nodes;
    let interrupt_nodes = (cold_nodes / 2).max(1);

    let mut service = JobService::new().with_cache(resume_cache.clone());
    service.submit(
        SynthesisJob::new(format!("{resume_name}-interrupt"), resume_input.clone())
            .with_config(exact.clone())
            .with_sessions(1..=1)
            .with_budget(Budget::nodes(interrupt_nodes).with_snapshot(true)),
    );
    let interrupted = service.run();
    completed(&interrupted, "interrupted solve")?;

    let mut service = JobService::new().with_cache(resume_cache.clone());
    service.submit(
        SynthesisJob::new(format!("{resume_name}-resume"), resume_input.clone())
            .with_config(exact.clone())
            .with_sessions(1..=1),
    );
    let resumed = service.run();
    completed(&resumed, "resumed solve")?;
    let resumed_row = &resumed[0].rows[0];
    if resumed[0].cache_hits == 0 {
        return Err("resumed job did not hit the snapshot cache".to_string());
    }

    let resume = ResumeStats {
        circuit: resume_name.to_string(),
        sessions: 1,
        cold_nodes,
        interrupt_nodes,
        snapshot_captured: interrupted[0].snapshot_captured,
        resumed_total_nodes: resumed_row.nodes,
        cold_restart_total_nodes: interrupt_nodes + cold_nodes,
        objective_matches: resumed_row.objective.to_bits() == cold_row.objective.to_bits(),
        cold_seconds: cold_solo[0].seconds,
        resumed_seconds: resumed[0].seconds,
    };

    let stats = cache.stats();
    Ok(ServiceBench {
        node_limit,
        cold,
        warm,
        resume,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_bytes: stats.bytes,
    })
}

/// Renders the benchmark as an aligned text table.
pub fn render(bench: &ServiceBench) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "service cache: {} nodes/solve budget\n",
        bench.node_limit
    ));
    out.push_str(&format!(
        "  cold batch:  {:>3} jobs {:>3} rows  {:>4} hits {:>4} misses  {:>8.3}s\n",
        bench.cold.jobs, bench.cold.rows, bench.cold.hits, bench.cold.misses, bench.cold.seconds
    ));
    out.push_str(&format!(
        "  warm batch:  {:>3} jobs {:>3} rows  {:>4} hits {:>4} misses  {:>8.3}s\n",
        bench.warm.jobs, bench.warm.rows, bench.warm.hits, bench.warm.misses, bench.warm.seconds
    ));
    let r = &bench.resume;
    out.push_str(&format!(
        "  resume {} k={}: cold {} nodes | interrupt {} | resumed total {} \
         (cold restart would be {}) | objective match: {}\n",
        r.circuit,
        r.sessions,
        r.cold_nodes,
        r.interrupt_nodes,
        r.resumed_total_nodes,
        r.cold_restart_total_nodes,
        r.objective_matches
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_service_bench_passes_its_own_gates() {
        let circuits = [("figure1", benchmarks::figure1())];
        let bench = run(&circuits, 400, ("figure1", benchmarks::figure1())).unwrap();
        assert_eq!(bench.violations(), Vec::<String>::new());
        assert_eq!(bench.warm.misses, 0);
        assert!(bench.warm.hits > 0);
        assert!(bench.resume.resumed_total_nodes < bench.resume.cold_restart_total_nodes);
        let json = bench.to_json();
        assert!(json.contains("\"resume\""));
        assert!(json.contains("\"cold\""));
    }
}
