//! Search-layer ablation: warm-started dual-simplex node LPs, pseudo-cost
//! branching and reduced-cost fixing against the PR-2 search, per circuit ×
//! k × bound mode.
//!
//! This is the machine-readable perf trail for the search layer
//! (`BENCH_search.json`), the companion of `BENCH_presolve.json`. Every
//! instance is solved three ways under the *same deterministic node budget*
//! and the same [`bist_ilp::BoundMode`]:
//!
//! * **baseline** — the PR-2 search: cold two-phase primal at every LP node,
//!   most-constrained branching, no reduced-cost fixing (presolve + cuts
//!   stay on, as they were the PR-2 default),
//! * **warm** — dual-simplex warm starts + reduced-cost fixing, branching
//!   unchanged (isolates the LP-path win from the branching change),
//! * **search** — warm starts + reduced-cost fixing + pseudo-cost
//!   (reliability) branching: the new default configuration.
//!
//! A fourth solve runs the `search` configuration through the layered
//! [`SynthesisEngine`]; it must reproduce the rebuild path bit-identically
//! (`engine_matches`: same objective, same node count, same simplex
//! iteration count), which pins down that basis reuse inside the per-k
//! solves loses nothing when the base model is shared across the sweep.
//!
//! All comparisons are quoted in branch-and-bound node counts and simplex
//! pivot counts: this container is single-core with no crate registry,
//! so wall-clock numbers are noisy and unportable, while node and pivot
//! counts are bit-reproducible. Each row still *reports* the `search`
//! variant's wall-clock (`wall_ms`) and the revised kernel's total basis
//! refactorizations (`kernel_refactorizations`) so the artifact carries a
//! perf trail, but the CI gate ([`SearchAblation::figure1_violations`])
//! never reads either — it is evaluated on nodes/pivots at the LP bound
//! mode only, since propagation-only search solves no LPs, so there is
//! nothing to warm-start and the branching falls back to the baseline rule
//! there.

use bist_core::engine::SynthesisEngine;
use bist_core::{synthesis, CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_ilp::{BoundMode, BranchRule, SolveStats, SolverConfig};

use crate::report::json;

/// The bound modes the ablation sweeps.
pub fn modes() -> Vec<(&'static str, BoundMode)> {
    vec![
        ("lp", BoundMode::LpRelaxation),
        ("prop", BoundMode::Propagation),
    ]
}

/// A deterministic, node-limited configuration for one ablation variant.
pub fn search_config(
    mode: BoundMode,
    node_limit: u64,
    warm: bool,
    branching: BranchRule,
) -> SynthesisConfig {
    SynthesisConfig {
        solver: SolverConfig {
            budget: bist_ilp::Budget::nodes(node_limit),
            bound_mode: mode,
            lp_warm_start: warm,
            rc_fixing: warm,
            branching,
            ..SolverConfig::default()
        },
        ..SynthesisConfig::default()
    }
}

/// One circuit × k × mode search-layer measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Circuit name.
    pub circuit: String,
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Bound-mode label (`lp` or `prop`).
    pub mode: String,
    /// Nodes explored by the PR-2 search (cold LPs, most-constrained).
    pub baseline_nodes: u64,
    /// Simplex iterations of the PR-2 search.
    pub baseline_pivots: u64,
    /// Nodes with warm starts + reduced-cost fixing, PR-2 branching.
    pub warm_nodes: u64,
    /// Simplex iterations of the warm variant.
    pub warm_pivots: u64,
    /// Nodes with the full new default (warm + rc fixing + pseudo-cost).
    pub search_nodes: u64,
    /// Simplex iterations of the full new default.
    pub search_pivots: u64,
    /// Node LPs the `search` variant re-solved with the dual simplex.
    pub warm_lp_solves: u64,
    /// Cold factorisations of the `search` variant (node-level: the basis
    /// was missing, stale or aged out).
    pub refactorizations: u64,
    /// Basis refactorizations inside the LP kernel of the `search` variant
    /// (periodic eta-file collapses), summed over every LP of the solve.
    pub kernel_refactorizations: u64,
    /// Wall-clock milliseconds of the `search` variant's solve. Reported
    /// for the artifact trail only — the CI gate never reads it (this
    /// container's wall clock is noisy; nodes and pivots are the
    /// bit-reproducible signals).
    pub wall_ms: f64,
    /// Pivots of the `search` variant charged under devex pricing.
    pub devex_pivots: u64,
    /// Pivots of the `search` variant charged under Dantzig pricing.
    pub dantzig_pivots: u64,
    /// Pivots of the `search` variant charged under the Bland fallback.
    pub bland_pivots: u64,
    /// Cuts the `search` variant emitted into the pool, by kind.
    pub cuts_emitted: bist_ilp::CutCounts,
    /// Cuts still active in the `search` variant's final row set, by kind.
    pub cuts_active: bist_ilp::CutCounts,
    /// Strong-branching probes of the `search` variant.
    pub strong_branch_solves: u64,
    /// Bounds tightened by reduced-cost fixing in the `search` variant.
    pub rc_fixed_bounds: u64,
    /// Final objective of the baseline solve.
    pub baseline_objective: f64,
    /// Final objective of the `search` solve.
    pub search_objective: f64,
    /// Whether the engine path reproduced the rebuild `search` solve
    /// exactly (same objective, node count and simplex iterations).
    pub engine_matches: bool,
    /// Nodes until the baseline first reached the best objective any
    /// variant found (`None` when it never did within the budget).
    pub nodes_to_target_baseline: Option<u64>,
    /// Nodes until the `search` solve first reached that objective.
    pub nodes_to_target_search: Option<u64>,
}

impl SearchRow {
    /// Serialises the row as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .u64("sessions", self.sessions as u64)
            .str("mode", &self.mode)
            .u64("baseline_nodes", self.baseline_nodes)
            .u64("baseline_pivots", self.baseline_pivots)
            .u64("warm_nodes", self.warm_nodes)
            .u64("warm_pivots", self.warm_pivots)
            .u64("search_nodes", self.search_nodes)
            .u64("search_pivots", self.search_pivots)
            .u64("warm_lp_solves", self.warm_lp_solves)
            .u64("refactorizations", self.refactorizations)
            .u64("kernel_refactorizations", self.kernel_refactorizations)
            .f64("wall_ms", self.wall_ms)
            .u64("devex_pivots", self.devex_pivots)
            .u64("dantzig_pivots", self.dantzig_pivots)
            .u64("bland_pivots", self.bland_pivots)
            .raw(
                "cuts_emitted",
                crate::report::cut_counts_json(&self.cuts_emitted),
            )
            .raw(
                "cuts_active",
                crate::report::cut_counts_json(&self.cuts_active),
            )
            .u64("strong_branch_solves", self.strong_branch_solves)
            .u64("rc_fixed_bounds", self.rc_fixed_bounds)
            .f64("baseline_objective", self.baseline_objective)
            .f64("search_objective", self.search_objective)
            .bool("engine_matches", self.engine_matches)
            .opt_u64("nodes_to_target_baseline", self.nodes_to_target_baseline)
            .opt_u64("nodes_to_target_search", self.nodes_to_target_search)
            .finish()
    }
}

/// The full search-layer ablation result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchAblation {
    /// Per-solve node budget.
    pub node_limit: u64,
    /// One row per circuit × k × mode.
    pub rows: Vec<SearchRow>,
}

impl SearchAblation {
    /// Serialises the ablation as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("node_limit", self.node_limit)
            .array("rows", self.rows.iter().map(SearchRow::to_json))
            .finish()
    }

    /// Regressions of the new default search (warm dual simplex +
    /// pseudo-cost branching + reduced-cost fixing) against the PR-2 search
    /// on the exactly-solvable `figure1` circuit, evaluated at the LP bound
    /// mode — the mode of the deterministic sweep benchmark, and the only
    /// one with LPs to warm-start (under propagation bounds the new layers
    /// are inert by design). Violations:
    ///
    /// * any `lp` instance where the new default explored **more nodes**,
    /// * an `lp` simplex-iteration total that is not **strictly below** the
    ///   baseline total,
    /// * any instance (all modes) where the engine path diverged from the
    ///   rebuild path,
    /// * any `lp` instance where the objectives disagree (figure1 is solved
    ///   to optimality by every variant).
    ///
    /// Empty means the gate passes.
    pub fn figure1_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut total_baseline_pivots = 0u64;
        let mut total_search_pivots = 0u64;
        let mut seen = false;
        for row in self.rows.iter().filter(|r| r.circuit == "figure1") {
            if !row.engine_matches {
                violations.push(format!(
                    "figure1 k={} mode={}: engine path diverged from the rebuild path",
                    row.sessions, row.mode
                ));
            }
            if row.mode != "lp" {
                continue;
            }
            seen = true;
            total_baseline_pivots += row.baseline_pivots;
            total_search_pivots += row.search_pivots;
            if row.search_nodes > row.baseline_nodes {
                violations.push(format!(
                    "figure1 k={} mode={}: new search explored {} nodes vs baseline {}",
                    row.sessions, row.mode, row.search_nodes, row.baseline_nodes
                ));
            }
            if (row.baseline_objective - row.search_objective).abs() > 1e-6 {
                violations.push(format!(
                    "figure1 k={} mode={}: objective {} diverged from baseline {}",
                    row.sessions, row.mode, row.search_objective, row.baseline_objective
                ));
            }
        }
        if seen && total_search_pivots >= total_baseline_pivots {
            violations.push(format!(
                "figure1: new search spent {total_search_pivots} simplex iterations, not \
                 strictly below the baseline total {total_baseline_pivots}"
            ));
        }
        violations
    }
}

fn nodes_to(stats: &SolveStats, target: f64) -> Option<u64> {
    stats.nodes_to_target(target, 1e-6)
}

/// Runs the ablation for one circuit over every `k` and every bound mode.
///
/// # Errors
///
/// Propagates the first synthesis error of any variant.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    node_limit: u64,
) -> Result<Vec<SearchRow>, CoreError> {
    let num_sessions = input.binding().num_modules();
    let mut rows = Vec::new();

    for (mode_name, mode) in modes() {
        let baseline_config = search_config(mode, node_limit, false, BranchRule::MostConstrained);
        let warm_config = search_config(mode, node_limit, true, BranchRule::MostConstrained);
        let full_config = search_config(mode, node_limit, true, BranchRule::PseudoCost);
        let engine = SynthesisEngine::new(input, &full_config)?;

        for k in 1..=num_sessions {
            let baseline = synthesis::synthesize_bist(input, k, &baseline_config)?;
            let warm = synthesis::synthesize_bist(input, k, &warm_config)?;
            let full_start = std::time::Instant::now();
            let full = synthesis::synthesize_bist(input, k, &full_config)?;
            let wall_ms = full_start.elapsed().as_secs_f64() * 1e3;
            let engine_design = engine.synthesize(k)?;

            let target = baseline.objective.min(warm.objective).min(full.objective);
            let engine_matches = (engine_design.objective - full.objective).abs() < 1e-6
                && engine_design.stats.nodes == full.stats.nodes
                && engine_design.stats.lp_pivots == full.stats.lp_pivots;

            rows.push(SearchRow {
                circuit: name.to_string(),
                sessions: k,
                mode: mode_name.to_string(),
                baseline_nodes: baseline.stats.nodes,
                baseline_pivots: baseline.stats.lp_pivots,
                warm_nodes: warm.stats.nodes,
                warm_pivots: warm.stats.lp_pivots,
                search_nodes: full.stats.nodes,
                search_pivots: full.stats.lp_pivots,
                warm_lp_solves: full.stats.warm_lp_solves,
                refactorizations: full.stats.refactorizations,
                kernel_refactorizations: full.stats.lp_basis_refactorizations,
                wall_ms,
                devex_pivots: full.stats.devex_pivots,
                dantzig_pivots: full.stats.dantzig_pivots,
                bland_pivots: full.stats.bland_pivots,
                cuts_emitted: full.stats.cuts_emitted,
                cuts_active: full.stats.cuts_active,
                strong_branch_solves: full.stats.strong_branch_solves,
                rc_fixed_bounds: full.stats.rc_fixed_bounds,
                baseline_objective: baseline.objective,
                search_objective: full.objective,
                engine_matches,
                nodes_to_target_baseline: nodes_to(&baseline.stats, target),
                nodes_to_target_search: nodes_to(&full.stats, target),
            });
        }
    }

    Ok(rows)
}

/// Runs the ablation over the given circuits.
///
/// # Errors
///
/// Propagates the first synthesis error.
pub fn run_all(
    circuits: &[(&str, SynthesisInput)],
    node_limit: u64,
) -> Result<SearchAblation, CoreError> {
    let mut ablation = SearchAblation {
        node_limit,
        ..SearchAblation::default()
    };
    for (name, input) in circuits {
        ablation.rows.extend(run_circuit(name, input, node_limit)?);
    }
    Ok(ablation)
}

/// Renders the ablation as a plain-text table.
pub fn render(ablation: &SearchAblation) -> String {
    let mut out = String::new();
    out.push_str("search ablation: nodes / simplex iterations per circuit x k x bound mode\n");
    out.push_str(&format!(
        "{:<10} {:>2} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5} {:>6}  engine\n",
        "Ckt",
        "k",
        "mode",
        "base-nd",
        "warm-nd",
        "new-nd",
        "base-it",
        "warm-it",
        "new-it",
        "#rcfx",
        "#warm"
    ));
    for row in &ablation.rows {
        out.push_str(&format!(
            "{:<10} {:>2} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5} {:>6}  {}\n",
            row.circuit,
            row.sessions,
            row.mode,
            row.baseline_nodes,
            row.warm_nodes,
            row.search_nodes,
            row.baseline_pivots,
            row.warm_pivots,
            row.search_pivots,
            row.rc_fixed_bounds,
            row.warm_lp_solves,
            if row.engine_matches {
                "match"
            } else {
                "MISMATCH"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_warm_search_cuts_iterations_without_node_regressions() {
        let input = benchmarks::figure1();
        let rows = run_circuit("figure1", &input, 20_000).unwrap();
        assert_eq!(rows.len(), 2 * 2); // 2 modes x k in {1, 2}
        let ablation = SearchAblation {
            node_limit: 20_000,
            rows,
        };
        let violations = ablation.figure1_violations();
        assert!(
            violations.is_empty(),
            "{violations:?}\n{}",
            render(&ablation)
        );
        let lp_rows: Vec<_> = ablation.rows.iter().filter(|r| r.mode == "lp").collect();
        // The warm-start machinery must actually engage at LP mode...
        assert!(lp_rows.iter().any(|r| r.warm_lp_solves > 0), "{lp_rows:?}");
        // ...and the full k-sweep must spend strictly fewer simplex
        // iterations warm than cold (the headline satellite assertion).
        let baseline_pivots: u64 = lp_rows.iter().map(|r| r.baseline_pivots).sum();
        let search_pivots: u64 = lp_rows.iter().map(|r| r.search_pivots).sum();
        assert!(
            search_pivots < baseline_pivots,
            "warm sweep spent {search_pivots} iterations vs cold {baseline_pivots}\n{}",
            render(&ablation)
        );
        // Exactly solvable: every variant agrees on every optimum.
        for row in &ablation.rows {
            assert!(
                (row.baseline_objective - row.search_objective).abs() < 1e-6,
                "{row:?}"
            );
        }
        // Every pivot of the `search` variant is attributed to exactly one
        // pricing rule (the default configuration prices with devex).
        for row in &ablation.rows {
            assert_eq!(
                row.devex_pivots + row.dantzig_pivots + row.bland_pivots,
                row.search_pivots,
                "{row:?}"
            );
        }
        let json = ablation.to_json();
        assert!(json.contains("\"figure1\""));
        assert!(json.contains("\"node_limit\": 20000"));
        assert!(json.contains("\"kernel_refactorizations\""));
        assert!(json.contains("\"wall_ms\""));
        assert!(json.contains("\"devex_pivots\""));
        assert!(json.contains("\"cuts_emitted\""));
        assert!(json.contains("\"nogood\""));
        let text = render(&ablation);
        assert!(text.contains("figure1"));
    }
}
