//! RTL back-end benchmark: golden netlists and BIST signatures per circuit
//! and per k (`BENCH_rtl.json` + `goldens/rtl/*.netlist`).
//!
//! For every circuit the canonical chained engine sweep is run under the
//! deterministic node budget (the same rows `BENCH_sweep.json` tracks), and
//! each extracted design is pushed through the full RTL pipeline:
//! [`bist_rtl::emit_bist_netlist`] → [`bist_rtl::validate_simulated`]. The
//! record keeps the canonical netlist text (committed as a golden file by
//! `repro_rtl`), its fingerprint, and every sub-test session's final MISR
//! signatures — all bit-deterministic, so CI can diff them across PRs. A
//! record only exists if simulated validation *passed*: every module of
//! every test plan was provably exercised and observed.

use bist_core::engine::SynthesisEngine;
use bist_core::{CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_rtl::{to_verilog, validate_simulated, SimConfig};

use crate::report::json;

/// The RTL artifacts of one synthesised design (one circuit at one k).
#[derive(Debug, Clone, PartialEq)]
pub struct RtlKRow {
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Total design area in transistors (ties the row to the sweep record).
    pub area: u64,
    /// [`bist_rtl::Netlist::fingerprint`] of the emitted netlist.
    pub fingerprint: u64,
    /// Register / module / mux / dedicated-generator cell counts.
    pub cells: (usize, usize, usize, usize),
    /// Smallest distinct-input-pattern count over all modules under test —
    /// the weakest link of the coverage claim (cycles per session is 64).
    pub min_distinct_patterns: u64,
    /// Total modules tested across all sub-sessions (must equal the module
    /// count: the plan tests everything exactly once).
    pub modules_tested: usize,
    /// Final MISR signatures, one `(session, register, signature)` triple
    /// per module under test, in session-then-register order.
    pub signatures: Vec<(usize, usize, u64)>,
    /// The canonical netlist text (committed under `goldens/rtl/`).
    pub netlist_text: String,
    /// Line count of the generated Verilog (the text itself is derivable
    /// from the golden netlist, so only its size is tracked here).
    pub verilog_lines: usize,
}

impl RtlKRow {
    /// Serialises the row as a JSON object (without the netlist text — that
    /// lives in the golden file).
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("sessions", self.sessions as u64)
            .u64("area", self.area)
            .str("fingerprint", &format!("{:#018x}", self.fingerprint))
            .u64("registers", self.cells.0 as u64)
            .u64("modules", self.cells.1 as u64)
            .u64("muxes", self.cells.2 as u64)
            .u64("generators", self.cells.3 as u64)
            .u64("min_distinct_patterns", self.min_distinct_patterns)
            .u64("modules_tested", self.modules_tested as u64)
            .u64("verilog_lines", self.verilog_lines as u64)
            .array(
                "signatures",
                self.signatures.iter().map(|&(session, register, value)| {
                    json::Obj::new()
                        .u64("session", session as u64)
                        .u64("register", register as u64)
                        .str("signature", &format!("{value:#x}"))
                        .finish()
                }),
            )
            .finish()
    }
}

/// The RTL artifacts of one circuit across its full k-sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitRtl {
    /// Circuit name.
    pub circuit: String,
    /// One row per k, ascending.
    pub rows: Vec<RtlKRow>,
}

impl CircuitRtl {
    /// Serialises the record as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .array("rows", self.rows.iter().map(RtlKRow::to_json))
            .finish()
    }
}

/// Runs the chained engine sweep on one circuit and lowers every extracted
/// design through netlist emission and simulated validation.
///
/// # Errors
///
/// Propagates synthesis errors, plus [`CoreError::RtlValidation`] when any
/// design's test plan fails the simulated coverage/observability proof — the
/// condition this benchmark exists to gate on.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<CircuitRtl, CoreError> {
    let engine = SynthesisEngine::new(input, config)?;
    let outcomes = engine.sweep_chained()?;
    let sim_config = SimConfig::default();

    let mut rows = Vec::with_capacity(outcomes.len());
    for outcome in &outcomes {
        let design = &outcome.design;
        let netlist = bist_rtl::emit_bist_netlist(&design.datapath, &design.plan)?;
        let report = validate_simulated(&design.datapath, &design.plan, &sim_config)?;

        let mut signatures = Vec::new();
        let mut min_distinct = u64::MAX;
        let mut modules_tested = 0;
        for session in &report.sessions {
            for coverage in &session.coverage {
                modules_tested += 1;
                min_distinct = min_distinct.min(coverage.distinct_patterns);
                signatures.push((
                    session.session,
                    coverage.signature_register,
                    session.signatures[&coverage.signature_register],
                ));
            }
        }
        if modules_tested != design.datapath.num_modules() {
            // validate_simulated proves every *scheduled* module is tested;
            // the plan validator guarantees everything is scheduled. Catch
            // any drift between the two here rather than in a stale golden.
            return Err(CoreError::RtlValidation(
                bist_rtl::RtlError::TestPathNotRoutable {
                    description: format!(
                        "{name} k={}: {modules_tested} modules tested but the data path has {}",
                        design.sessions,
                        design.datapath.num_modules()
                    ),
                },
            ));
        }

        rows.push(RtlKRow {
            sessions: design.sessions,
            area: design.area.total(),
            fingerprint: netlist.fingerprint(),
            cells: (
                netlist.registers().len(),
                netlist.modules().len(),
                netlist.muxes().len(),
                netlist.generators().len(),
            ),
            min_distinct_patterns: if min_distinct == u64::MAX {
                0
            } else {
                min_distinct
            },
            modules_tested,
            signatures,
            netlist_text: netlist.to_text(),
            verilog_lines: to_verilog(&netlist).lines().count(),
        });
    }
    Ok(CircuitRtl {
        circuit: name.to_string(),
        rows,
    })
}

/// Runs the RTL benchmark over the given circuits.
///
/// # Errors
///
/// Propagates the first synthesis or validation error.
pub fn run_all(
    circuits: &[(&str, SynthesisInput)],
    config: &SynthesisConfig,
) -> Result<Vec<CircuitRtl>, CoreError> {
    circuits
        .iter()
        .map(|(name, input)| run_circuit(name, input, config))
        .collect()
}

/// Renders a human-readable summary.
pub fn render(results: &[CircuitRtl]) -> String {
    let mut out = String::new();
    out.push_str("RTL back-end: netlists + simulated BIST coverage per k\n");
    out.push_str(&format!(
        "{:<10} {:>3} {:>7} {:>19} {:>5} {:>5} {:>5} {:>4} {:>12} {:>8}\n",
        "Ckt", "k", "area", "fingerprint", "regs", "mods", "mux", "gen", "min-distinct", "verilog"
    ));
    for circuit in results {
        for row in &circuit.rows {
            out.push_str(&format!(
                "{:<10} {:>3} {:>7} {:>#19x} {:>5} {:>5} {:>5} {:>4} {:>12} {:>8}\n",
                circuit.circuit,
                row.sessions,
                row.area,
                row.fingerprint,
                row.cells.0,
                row.cells.1,
                row.cells.2,
                row.cells.3,
                row.min_distinct_patterns,
                row.verilog_lines,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_rtl_rows_are_deterministic_and_fully_covered() {
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let first = run_circuit("figure1", &input, &config).unwrap();
        assert_eq!(first.rows.len(), 2);
        for row in &first.rows {
            assert_eq!(row.modules_tested, 2);
            assert!(row.min_distinct_patterns > 32);
            assert!(!row.signatures.is_empty());
            assert!(row.netlist_text.starts_with("netlist figure1"));
            assert!(row.verilog_lines > 10);
        }
        // Bit-stable: a second full run reproduces fingerprints, signatures
        // and the golden text exactly.
        let second = run_circuit("figure1", &input, &config).unwrap();
        assert_eq!(first, second);
        let json = first.to_json();
        assert!(json.contains("\"circuit\": \"figure1\""));
        assert!(json.contains("\"fingerprint\": \"0x"));
        let text = render(&[first]);
        assert!(text.contains("figure1"));
    }
}
