//! k-sweep benchmark: the layered [`SynthesisEngine`] against the
//! rebuild-per-k baseline, per circuit.
//!
//! This is the machine-readable perf trail the repository tracks across PRs
//! (`BENCH_sweep.json`). For every circuit the sweep is run three ways under
//! the *same deterministic node budget* (see
//! [`crate::workload::sweep_config`]):
//!
//! * **rebuild** — a fresh formulation per `k`, solved sequentially with the
//!   left-edge warm start (the seed behaviour),
//! * **chained** — the shared-base engine, sequentially, with the k−1
//!   incumbent chained in as an extra warm start,
//! * **parallel** — the shared-base engine across a scoped thread pool.
//!
//! The parallel variant runs bit-identical searches to the rebuild variant,
//! so its objectives must match exactly — that hard invariant is
//! [`CircuitSweep::objectives_match`]. The chained variant starts every
//! solve from an equal-or-better incumbent; on instances solved to proven
//! optimality its objectives are identical, but under a node cap the
//! stronger initial pruning redirects the search, and the capped incumbent
//! can land either side of the baseline's — that soft signal is reported
//! separately as [`CircuitSweep::chained_not_worse`], not folded into the
//! invariant. Two wall-clock comparisons are recorded: the raw sweep times,
//! and the *time-to-quality* — how long each variant needed to reach the
//! rebuild baseline's final objective for every `k`. The latter is where
//! warm-start chaining shows up even on a single-core machine: for `k ≥ 2`
//! the chained incumbent usually meets the baseline's final quality before
//! the tree search even starts.

use std::time::Instant;

use bist_core::engine::{SweepOutcome, SynthesisEngine};
use bist_core::{synthesis, BistDesign, CoreError, SynthesisConfig};
use bist_dfg::SynthesisInput;

use crate::report::json;

/// Per-k record of one sweep variant.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepKRow {
    /// Number of sub-test sessions `k`.
    pub sessions: usize,
    /// Objective value reported by the solver.
    pub objective: f64,
    /// Total design area in transistors.
    pub area: u64,
    /// Wall-clock seconds of the solve (including extraction).
    pub seconds: f64,
    /// Seconds until the final incumbent was found (0 when it came from a
    /// warm start).
    pub seconds_to_best: f64,
    /// Nodes explored until the final incumbent was found.
    pub nodes_to_best: u64,
    /// Seconds until the incumbent first matched the rebuild baseline's
    /// final objective for this `k` (`None` for the baseline itself and for
    /// solves that never got there).
    pub seconds_to_baseline: Option<f64>,
    /// Nodes explored until the incumbent first matched the rebuild
    /// baseline's final objective for this `k`.
    pub nodes_to_baseline: Option<u64>,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots across all LP relaxations.
    pub lp_pivots: u64,
    /// Pivots charged under devex pricing (the default rule).
    pub devex_pivots: u64,
    /// Pivots charged under Dantzig pricing (the differential baseline).
    pub dantzig_pivots: u64,
    /// Pivots charged under the Bland anti-cycling fallback.
    pub bland_pivots: u64,
    /// Cutting planes emitted into the pool, by kind.
    pub cuts_emitted: bist_ilp::CutCounts,
    /// Cutting planes still active in the final row set, by kind.
    pub cuts_active: bist_ilp::CutCounts,
    /// Where the final incumbent came from (`""` when there was none):
    /// warm start, tree search, or one of the scheduled heuristics.
    pub incumbent_source: String,
    /// Whether the k−1 incumbent was chained in as a warm start.
    pub chained: bool,
    /// Whether optimality was proven.
    pub optimal: bool,
}

impl SweepKRow {
    fn from_design(design: &BistDesign, seconds: f64, chained: bool) -> Self {
        Self {
            sessions: design.sessions,
            objective: design.objective,
            area: design.area.total(),
            seconds,
            seconds_to_best: design.stats.seconds_to_best().unwrap_or(0.0),
            nodes_to_best: design.stats.nodes_to_best().unwrap_or(0),
            seconds_to_baseline: None,
            nodes_to_baseline: None,
            nodes: design.stats.nodes,
            lp_pivots: design.stats.lp_pivots,
            devex_pivots: design.stats.devex_pivots,
            dantzig_pivots: design.stats.dantzig_pivots,
            bland_pivots: design.stats.bland_pivots,
            cuts_emitted: design.stats.cuts_emitted,
            cuts_active: design.stats.cuts_active,
            incumbent_source: design
                .stats
                .improvements
                .last()
                .map(|i| i.source.to_string())
                .unwrap_or_default(),
            chained,
            optimal: design.optimal,
        }
    }

    /// Serialises the row as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("sessions", self.sessions as u64)
            .f64("objective", self.objective)
            .u64("area", self.area)
            .f64("seconds", self.seconds)
            .f64("seconds_to_best", self.seconds_to_best)
            .u64("nodes_to_best", self.nodes_to_best)
            .f64(
                "seconds_to_baseline",
                self.seconds_to_baseline.unwrap_or(f64::NAN),
            )
            .opt_u64("nodes_to_baseline", self.nodes_to_baseline)
            .u64("nodes", self.nodes)
            .u64("lp_pivots", self.lp_pivots)
            .u64("devex_pivots", self.devex_pivots)
            .u64("dantzig_pivots", self.dantzig_pivots)
            .u64("bland_pivots", self.bland_pivots)
            .raw(
                "cuts_emitted",
                crate::report::cut_counts_json(&self.cuts_emitted),
            )
            .raw(
                "cuts_active",
                crate::report::cut_counts_json(&self.cuts_active),
            )
            .str("incumbent_source", &self.incumbent_source)
            .bool("chained", self.chained)
            .bool("optimal", self.optimal)
            .finish()
    }
}

/// The three sweep variants compared for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSweep {
    /// Circuit name.
    pub circuit: String,
    /// Wall-clock of the rebuild-per-k baseline sweep.
    pub rebuild_seconds: f64,
    /// Wall-clock of the engine sweep with chained warm starts.
    pub chained_seconds: f64,
    /// Wall-clock of the engine sweep across the thread pool.
    pub parallel_seconds: f64,
    /// Time the rebuild baseline needed to find its own final incumbents
    /// (summed over k).
    pub rebuild_quality_seconds: f64,
    /// Time the chained engine sweep needed to reach the rebuild baseline's
    /// final objective for every k (summed; this is the headline engine win).
    pub chained_quality_seconds: f64,
    /// Node count behind [`CircuitSweep::rebuild_quality_seconds`]
    /// (deterministic, unlike wall-clock).
    pub rebuild_quality_nodes: u64,
    /// Node count behind [`CircuitSweep::chained_quality_seconds`].
    pub chained_quality_nodes: u64,
    /// Whether the parallel objectives are identical to the rebuild
    /// objectives — the engine-vs-rebuild bit-identical cross-check. Must
    /// always hold.
    pub objectives_match: bool,
    /// Whether every chained objective is equal-or-better than the rebuild
    /// baseline's. Guaranteed on instances solved to proven optimality;
    /// under a node cap the chained incumbent's redirected search may end
    /// slightly worse, so this is a soft quality signal, not an invariant.
    pub chained_not_worse: bool,
    /// Per-k rows of the rebuild baseline.
    pub rebuild: Vec<SweepKRow>,
    /// Per-k rows of the chained engine sweep.
    pub chained: Vec<SweepKRow>,
    /// Per-k rows of the parallel engine sweep.
    pub parallel: Vec<SweepKRow>,
}

impl CircuitSweep {
    /// Serialises the record as a JSON object.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("circuit", &self.circuit)
            .f64("rebuild_seconds", self.rebuild_seconds)
            .f64("chained_seconds", self.chained_seconds)
            .f64("parallel_seconds", self.parallel_seconds)
            .f64("rebuild_quality_seconds", self.rebuild_quality_seconds)
            .f64("chained_quality_seconds", self.chained_quality_seconds)
            .u64("rebuild_quality_nodes", self.rebuild_quality_nodes)
            .u64("chained_quality_nodes", self.chained_quality_nodes)
            // Reported for the artifact trail only — never gated, matching
            // the `wall_ms` precedent in the search ablation: it is a ratio
            // of two wall-clock sums, and wall-clock is noisy on shared
            // runners. The deterministic twin the gates may read is the
            // `*_quality_nodes` pair above.
            .f64(
                "quality_speedup",
                self.rebuild_quality_seconds / self.chained_quality_seconds.max(1e-9),
            )
            .bool("objectives_match", self.objectives_match)
            .bool("chained_not_worse", self.chained_not_worse)
            .array("rebuild", self.rebuild.iter().map(SweepKRow::to_json))
            .array("chained", self.chained.iter().map(SweepKRow::to_json))
            .array("parallel", self.parallel.iter().map(SweepKRow::to_json))
            .finish()
    }
}

fn rows_from_outcomes(outcomes: &[SweepOutcome]) -> Vec<SweepKRow> {
    outcomes
        .iter()
        .map(|o| SweepKRow::from_design(&o.design, o.seconds, o.chained))
        .collect()
}

/// Runs the three sweep variants on one circuit, cross-checks objectives and
/// computes the time-to-quality comparison.
///
/// # Errors
///
/// Propagates the first synthesis error of any variant.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    config: &SynthesisConfig,
) -> Result<CircuitSweep, CoreError> {
    // Rebuild baseline: a fresh formulation per k, solved sequentially.
    // Each k is timed end-to-end (formulation build + solve + extraction),
    // the same timebase the engine rows use.
    let start = Instant::now();
    let num_sessions = input.binding().num_modules();
    let mut rebuild_designs = Vec::with_capacity(num_sessions);
    let mut rebuild = Vec::with_capacity(num_sessions);
    for k in 1..=num_sessions {
        let solve_start = Instant::now();
        let design = synthesis::synthesize_bist(input, k, config)?;
        rebuild.push(SweepKRow::from_design(
            &design,
            solve_start.elapsed().as_secs_f64(),
            false,
        ));
        rebuild_designs.push(design);
    }
    let rebuild_seconds = start.elapsed().as_secs_f64();

    // Engine, chained warm starts.
    let start = Instant::now();
    let engine = SynthesisEngine::new(input, config)?;
    let chained_outcomes = engine.sweep_chained()?;
    let chained_seconds = start.elapsed().as_secs_f64();
    let mut chained = rows_from_outcomes(&chained_outcomes);

    // Engine, parallel across k.
    let start = Instant::now();
    let engine = SynthesisEngine::new(input, config)?;
    let parallel_outcomes = engine.sweep_parallel()?;
    let parallel_seconds = start.elapsed().as_secs_f64();
    let parallel = rows_from_outcomes(&parallel_outcomes);

    // Time-to-quality: when did each chained solve first reach the rebuild
    // baseline's final objective for the same k?
    for (row, (outcome, baseline)) in chained
        .iter_mut()
        .zip(chained_outcomes.iter().zip(&rebuild_designs))
    {
        row.seconds_to_baseline = outcome
            .design
            .stats
            .seconds_to_target(baseline.objective, 1e-6);
        row.nodes_to_baseline = outcome
            .design
            .stats
            .nodes_to_target(baseline.objective, 1e-6);
    }
    let rebuild_quality_seconds = rebuild.iter().map(|r| r.seconds_to_best).sum();
    let chained_quality_seconds = chained
        .iter()
        .map(|r| r.seconds_to_baseline.unwrap_or(r.seconds))
        .sum();
    let rebuild_quality_nodes = rebuild.iter().map(|r| r.nodes_to_best).sum();
    let chained_quality_nodes = chained
        .iter()
        .map(|r| r.nodes_to_baseline.unwrap_or(r.nodes))
        .sum();

    // The parallel variant repeats the rebuild searches exactly (the hard
    // cross-check); the chained variant usually improves on them but may
    // end worse under a node cap (soft signal, reported separately).
    let objectives_match = rebuild.len() == chained.len()
        && rebuild.len() == parallel.len()
        && rebuild
            .iter()
            .zip(&parallel)
            .all(|(r, p)| (r.objective - p.objective).abs() < 1e-6);
    let chained_not_worse = rebuild.len() == chained.len()
        && rebuild
            .iter()
            .zip(&chained)
            .all(|(r, c)| c.objective <= r.objective + 1e-6);

    Ok(CircuitSweep {
        circuit: name.to_string(),
        rebuild_seconds,
        chained_seconds,
        parallel_seconds,
        rebuild_quality_seconds,
        chained_quality_seconds,
        rebuild_quality_nodes,
        chained_quality_nodes,
        objectives_match,
        chained_not_worse,
        rebuild,
        chained,
        parallel,
    })
}

/// Runs the sweep comparison over the given circuits.
///
/// # Errors
///
/// Propagates the first synthesis error.
pub fn run_all(
    circuits: &[(&str, SynthesisInput)],
    config: &SynthesisConfig,
) -> Result<Vec<CircuitSweep>, CoreError> {
    circuits
        .iter()
        .map(|(name, input)| run_circuit(name, input, config))
        .collect()
}

/// The committed capped objectives of every chained sweep row that the
/// 1000-node LP budget could **not** solve to proven optimality before the
/// pricing/cuts/heuristics layer landed (from `BENCH_sweep.json` as of
/// PR 6). The exactness gate measures progress against exactly these rows.
const CAPPED_BASELINES: &[(&str, usize, f64)] = &[
    ("tseng", 2, 1936.0),
    ("tseng", 3, 1936.0),
    ("paulin", 1, 2864.0),
    ("paulin", 2, 2768.0),
    ("paulin", 3, 2768.0),
    ("paulin", 4, 2768.0),
];

/// The tseng/paulin exactness-gap gate, evaluated on the chained sweep rows
/// at the canonical 1000-node LP budget (any other budget returns no
/// violations — the committed baselines are only meaningful at the budget
/// they were recorded under). The gate passes when either
///
/// * `tseng k=2` is solved to **proven optimality** for the first time, or
/// * every previously-capped row ends **strictly below** its committed
///   capped objective (the search got measurably closer everywhere).
///
/// Empty means the gate passes.
pub fn exactness_violations(sweeps: &[CircuitSweep], node_limit: u64) -> Vec<String> {
    if node_limit != crate::workload::DEFAULT_SWEEP_NODES {
        return Vec::new();
    }
    let chained_row = |circuit: &str, k: usize| -> Option<&SweepKRow> {
        sweeps
            .iter()
            .find(|s| s.circuit == circuit)
            .and_then(|s| s.chained.iter().find(|r| r.sessions == k))
    };
    if let Some(row) = chained_row("tseng", 2) {
        if row.optimal {
            return Vec::new();
        }
    }
    let mut violations = Vec::new();
    for &(circuit, k, capped) in CAPPED_BASELINES {
        let Some(row) = chained_row(circuit, k) else {
            violations.push(format!("{circuit} k={k}: missing from the sweep"));
            continue;
        };
        if row.optimal {
            continue;
        }
        if row.objective >= capped - 1e-6 {
            violations.push(format!(
                "{circuit} k={k}: capped objective {} did not improve on the \
                 committed baseline {capped} (and tseng k=2 was not proven optimal)",
                row.objective
            ));
        }
    }
    violations
}

/// Re-runs the sweep through the `advbist::service` job queue — one
/// node-budgeted [`SynthesisJob`](advbist::service::SynthesisJob) per
/// circuit — and verifies the reported rows against the engine sweep:
/// identical objectives and areas per k, every solve within the per-job
/// node budget, every job completed. This is the front-door acceptance
/// gate: the service must *serve* exactly what the engine computes.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence.
pub fn service_cross_check(
    circuits: &[(&str, SynthesisInput)],
    sweeps: &[CircuitSweep],
    node_limit: u64,
) -> Result<(), String> {
    use advbist::service::{JobService, SynthesisJob};
    use bist_ilp::Budget;

    if circuits.len() != sweeps.len() {
        return Err(format!(
            "{} circuits but {} sweep records",
            circuits.len(),
            sweeps.len()
        ));
    }
    let mut service = JobService::new();
    for (name, input) in circuits {
        service.submit(
            SynthesisJob::new(*name, input.clone())
                .with_config(crate::workload::sweep_config(node_limit))
                .with_budget(Budget::nodes(node_limit)),
        );
    }
    let reports = service.run();
    for (report, sweep) in reports.iter().zip(sweeps) {
        if report.name != sweep.circuit {
            return Err(format!(
                "report order diverged: job {} vs sweep {}",
                report.name, sweep.circuit
            ));
        }
        if !report.outcome.is_completed() {
            return Err(format!(
                "job {} did not complete: {:?}",
                report.name, report.outcome
            ));
        }
        if report.rows.len() != sweep.parallel.len() {
            return Err(format!(
                "job {}: {} rows vs {} engine rows",
                report.name,
                report.rows.len(),
                sweep.parallel.len()
            ));
        }
        for (row, engine) in report.rows.iter().zip(&sweep.parallel) {
            if row.k != engine.sessions
                || (row.objective - engine.objective).abs() > 1e-9
                || row.area != engine.area
            {
                return Err(format!(
                    "job {} k={}: service objective {} / area {} vs engine objective {} / area {}",
                    report.name, row.k, row.objective, row.area, engine.objective, engine.area
                ));
            }
            if row.nodes > node_limit {
                return Err(format!(
                    "job {} k={}: {} nodes exceed the per-job budget of {}",
                    report.name, row.k, row.nodes, node_limit
                ));
            }
        }
    }
    Ok(())
}

/// Renders a human-readable summary of the sweep comparison.
pub fn render(sweeps: &[CircuitSweep]) -> String {
    let mut out = String::new();
    out.push_str("k-sweep: rebuild-per-k baseline vs layered engine\n");
    out.push_str(&format!(
        "{:<10} {:>11} {:>11} {:>11} {:>12} {:>12} {:>10}  objectives\n",
        "Ckt", "rebuild(s)", "chained(s)", "parallel(s)", "rb-q(nodes)", "ch-q(nodes)", "q-speedup"
    ));
    for s in sweeps {
        // The quality speedup is quoted on the deterministic node counts:
        // how much less search the chained engine needed to reach the
        // rebuild baseline's final objectives (wall-clock twins of these
        // numbers are in the JSON).
        out.push_str(&format!(
            "{:<10} {:>11.3} {:>11.3} {:>11.3} {:>12} {:>12} {:>9.2}x  {}{}\n",
            s.circuit,
            s.rebuild_seconds,
            s.chained_seconds,
            s.parallel_seconds,
            s.rebuild_quality_nodes,
            s.chained_quality_nodes,
            s.rebuild_quality_nodes as f64 / s.chained_quality_nodes.max(1) as f64,
            if s.objectives_match {
                "match"
            } else {
                "MISMATCH"
            },
            if s.chained_not_worse {
                ""
            } else {
                " (chained worse under cap)"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use bist_dfg::benchmarks;

    #[test]
    fn figure1_sweep_objectives_identical_across_variants() {
        // figure1 is solved to proven optimality, so all three variants must
        // report exactly the same objectives.
        let input = benchmarks::figure1();
        let config = SynthesisConfig::exact();
        let sweep = run_circuit("figure1", &input, &config).unwrap();
        assert!(sweep.objectives_match, "{sweep:?}");
        assert!(sweep.chained_not_worse, "{sweep:?}");
        assert_eq!(sweep.rebuild.len(), 2);
        for ((r, c), p) in sweep
            .rebuild
            .iter()
            .zip(&sweep.chained)
            .zip(&sweep.parallel)
        {
            assert!(r.optimal && c.optimal && p.optimal);
            assert!((r.objective - c.objective).abs() < 1e-6);
            assert!((r.objective - p.objective).abs() < 1e-6);
        }
        // Chaining must be exercised for every k >= 2.
        for row in sweep.chained.iter().filter(|r| r.sessions >= 2) {
            assert!(row.chained, "k={} not chained", row.sessions);
        }
        let json = sweep.to_json();
        assert!(json.contains("\"objectives_match\": true"));
        let text = render(&[sweep]);
        assert!(text.contains("figure1"));
    }

    #[test]
    fn service_batch_matches_the_engine_sweep_rows() {
        let circuits = vec![("figure1", benchmarks::figure1())];
        let config = workload::sweep_config(80);
        let sweeps = run_all(&circuits, &config).unwrap();
        service_cross_check(&circuits, &sweeps, 80).unwrap();
        // A diverging expectation must be caught, not silently accepted.
        let mut broken = sweeps.clone();
        broken[0].parallel[0].objective += 1.0;
        assert!(service_cross_check(&circuits, &broken, 80).is_err());
    }

    #[test]
    fn node_limited_sweep_is_deterministic_and_chained_reaches_quality_fast() {
        let input = benchmarks::tseng();
        let config = workload::sweep_config(60);
        let sweep = run_circuit("tseng", &input, &config).unwrap();
        assert_eq!(sweep.rebuild.len(), 3);
        assert_eq!(sweep.chained.len(), 3);
        assert_eq!(sweep.parallel.len(), 3);
        // Node-limited searches are deterministic: parallel must equal the
        // rebuild baseline exactly; at this budget the chained variant also
        // holds its equal-or-better property on tseng.
        assert!(sweep.objectives_match, "{sweep:?}");
        assert!(sweep.chained_not_worse, "{sweep:?}");
        for row in sweep.chained.iter().filter(|r| r.sessions >= 2) {
            assert!(row.chained, "k={} not chained", row.sessions);
            assert!(
                row.seconds_to_baseline.is_some(),
                "k={} never reached baseline quality",
                row.sessions
            );
        }
        // The headline claim: the chained engine sweep reaches the rebuild
        // baseline's quality with no more search effort than the baseline
        // needed to find it (asserted on the deterministic node counts; the
        // wall-clock twin of this number is what BENCH_sweep.json reports).
        assert!(
            sweep.chained_quality_nodes <= sweep.rebuild_quality_nodes,
            "chained {} nodes vs rebuild {} nodes",
            sweep.chained_quality_nodes,
            sweep.rebuild_quality_nodes
        );
    }
}
