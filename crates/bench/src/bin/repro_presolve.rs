//! Runs the presolve/cuts ablation (reducing pipeline + cut pool vs the
//! PR-1 solver) over the small circuits, writes `BENCH_presolve.json` and
//! exits non-zero if the default solver regresses against the no-reduce
//! baseline on `figure1` — CI uses this as the perf gate for the reduce
//! layer.

fn main() {
    // Canonical BIST_NODE_LIMIT first, legacy BIST_PRESOLVE_NODES second.
    let node_limit = bist_bench::workload::ablation_nodes("BIST_PRESOLVE_NODES", 300);
    eprintln!(
        "# presolve ablation node budget: {node_limit} nodes/solve \
         (set BIST_NODE_LIMIT to change)"
    );

    let circuits = bist_bench::small_circuits();
    let ablation = match bist_bench::presolve::run_all(&circuits, node_limit) {
        Ok(ablation) => ablation,
        Err(e) => {
            eprintln!("presolve ablation failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", bist_bench::presolve::render(&ablation));

    let json = ablation.to_json();
    match std::fs::write("BENCH_presolve.json", format!("{json}\n")) {
        Ok(()) => eprintln!("# wrote BENCH_presolve.json"),
        Err(e) => eprintln!("could not write BENCH_presolve.json: {e}"),
    }

    let violations = ablation.figure1_violations();
    if !violations.is_empty() {
        for violation in &violations {
            eprintln!("presolve regression: {violation}");
        }
        std::process::exit(1);
    }
    println!("figure1 gate: reduce+cuts strictly below the no-reduce baseline.");
}
