//! Regenerates Table 3 of the paper: ADVBIST vs ADVAN vs RALLOC vs BITS at
//! the maximal test-session count of each circuit.

fn main() {
    let budget = bist_bench::workload::table_budget();
    let limit = budget.time_limit.expect("or_time fills the limit");
    eprintln!(
        "# per-instance ILP budget: {:.1}s (set BIST_TIME_LIMIT_SECS to change)",
        limit.as_secs_f64()
    );
    match bist_bench::table3::run_all(budget) {
        Ok(rows) => {
            print!("{}", bist_bench::table3::render(&rows));
            let violations = bist_bench::table3::advbist_wins(&rows);
            if violations.is_empty() {
                println!(
                    "\nADVBIST is never worse than any baseline (paper's qualitative claim holds)."
                );
            } else {
                println!("\nViolations of the paper's claim under this time budget:");
                for v in violations {
                    println!("  {v}");
                }
            }
        }
        Err(e) => {
            eprintln!("table 3 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
