//! Runs the search-layer ablation (warm-started dual simplex + pseudo-cost
//! branching + reduced-cost fixing vs the PR-2 search) over the small
//! circuits, writes `BENCH_search.json` and exits non-zero if the new
//! default search regresses the figure1 node counts or fails to cut the
//! figure1 simplex-iteration total at the LP bound mode — CI uses this as
//! the perf gate for the search layer.

fn main() {
    // Canonical BIST_NODE_LIMIT first, legacy BIST_SEARCH_NODES second.
    let node_limit = bist_bench::workload::ablation_nodes("BIST_SEARCH_NODES", 300);
    eprintln!(
        "# search ablation node budget: {node_limit} nodes/solve \
         (set BIST_NODE_LIMIT to change)"
    );

    let circuits = bist_bench::small_circuits();
    let ablation = match bist_bench::search::run_all(&circuits, node_limit) {
        Ok(ablation) => ablation,
        Err(e) => {
            eprintln!("search ablation failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", bist_bench::search::render(&ablation));

    let json = ablation.to_json();
    match std::fs::write("BENCH_search.json", format!("{json}\n")) {
        Ok(()) => eprintln!("# wrote BENCH_search.json"),
        Err(e) => eprintln!("could not write BENCH_search.json: {e}"),
    }

    let violations = ablation.figure1_violations();
    if !violations.is_empty() {
        for violation in &violations {
            eprintln!("search regression: {violation}");
        }
        std::process::exit(1);
    }
    println!(
        "figure1 gate: warm dual simplex + pseudo-cost branching cut the simplex-iteration \
         total without node regressions."
    );
}
