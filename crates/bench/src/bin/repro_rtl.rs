//! Runs the RTL back-end over the canonical k-sweeps (figure1/tseng/paulin
//! under the deterministic node budget), proves every extracted design's
//! test plan in the cycle-level simulator, and writes the bit-stable
//! artifacts:
//!
//! * `goldens/rtl/<circuit>_k<k>.netlist` — the canonical netlist text of
//!   every design (CI diffs these against the committed goldens), and
//! * `BENCH_rtl.json` — fingerprints, cell counts, per-session MISR
//!   signatures and coverage minima.
//!
//! The run itself is the gate: [`bist_bench::rtl::run_all`] fails unless
//! every module of every test plan is demonstrably exercised in its
//! scheduled session and observed in its signature register.

use bist_bench::workload::DEFAULT_SWEEP_NODES;

fn main() {
    let node_limit = bist_bench::budget_from_env()
        .or_nodes(DEFAULT_SWEEP_NODES)
        .node_limit
        .expect("or_nodes fills the limit");
    eprintln!("# rtl node budget: {node_limit} nodes/solve (set BIST_NODE_LIMIT to change)");

    let circuits = bist_bench::small_circuits();
    let config = bist_bench::workload::sweep_config(node_limit);
    let results = match bist_bench::rtl::run_all(&circuits, &config) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("rtl validation failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", bist_bench::rtl::render(&results));

    if let Err(e) = std::fs::create_dir_all("goldens/rtl") {
        eprintln!("could not create goldens/rtl: {e}");
        std::process::exit(1);
    }
    for circuit in &results {
        for row in &circuit.rows {
            let path = format!("goldens/rtl/{}_k{}.netlist", circuit.circuit, row.sessions);
            if let Err(e) = std::fs::write(&path, &row.netlist_text) {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("# wrote goldens/rtl/*.netlist");

    let body = results
        .iter()
        .map(bist_bench::rtl::CircuitRtl::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    match std::fs::write("BENCH_rtl.json", format!("[\n{body}\n]\n")) {
        Ok(()) => eprintln!("# wrote BENCH_rtl.json"),
        Err(e) => {
            eprintln!("could not write BENCH_rtl.json: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "rtl gate: every module of every figure1/tseng/paulin design is exercised in its \
         scheduled session and observed in its MISR signature."
    );
}
