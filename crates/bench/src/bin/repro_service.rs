//! Runs the repeated-submission service benchmark (cold batch → warm
//! jittered resubmission → interrupt-at-N/2 resume on tseng k=1), writes
//! `BENCH_service.json` and exits non-zero if the cross-job cache or the
//! snapshot/resume path breaks its contract — CI uses this as the perf gate
//! for the solve-state cache.

fn main() {
    // Canonical BIST_NODE_LIMIT first, legacy BIST_SERVICE_NODES second.
    let node_limit = bist_bench::workload::ablation_nodes("BIST_SERVICE_NODES", 1000);
    eprintln!(
        "# service benchmark node budget: {node_limit} nodes/solve \
         (set BIST_NODE_LIMIT to change)"
    );

    let circuits = bist_bench::small_circuits();
    let resume_circuit = ("tseng", bist_dfg::benchmarks::tseng());
    let bench = match bist_bench::service::run(&circuits, node_limit, resume_circuit) {
        Ok(bench) => bench,
        Err(e) => {
            eprintln!("service benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", bist_bench::service::render(&bench));

    let json = bench.to_json();
    match std::fs::write("BENCH_service.json", format!("{json}\n")) {
        Ok(()) => eprintln!("# wrote BENCH_service.json"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }

    let violations = bench.violations();
    if !violations.is_empty() {
        for violation in &violations {
            eprintln!("service regression: {violation}");
        }
        std::process::exit(1);
    }
    println!(
        "service gate: warm resubmission replays from the cache and the interrupted solve \
         resumes in strictly fewer nodes than a cold restart."
    );
}
