//! Runs the whole evaluation (Tables 1-3, Figures 1-3, the k-sweep engine
//! comparison) and prints a JSON summary at the end, suitable for pasting
//! into EXPERIMENTS.md. The sweep comparison is also written to
//! `BENCH_sweep.json` so the perf trajectory can be tracked across PRs.

use bist_bench::report::ExperimentReport;
use bist_datapath::CostModel;

fn main() {
    let limit = bist_bench::time_limit_from_env();
    let config = bist_bench::quick_config(limit);
    eprintln!(
        "# per-instance ILP budget: {:.1}s (set BIST_TIME_LIMIT_SECS to change)",
        limit.as_secs_f64()
    );

    println!("{}", bist_bench::table1::render(&CostModel::eight_bit()));

    match bist_bench::figures::render_figure1(&config) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("figure 1 failed: {e}"),
    }
    match bist_bench::figures::render_fig2_fig3(&config) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("figures 2/3 failed: {e}"),
    }

    let table2 = match bist_bench::table2::run_all(limit) {
        Ok(rows) => {
            println!("{}", bist_bench::table2::render(&rows));
            rows
        }
        Err(e) => {
            eprintln!("table 2 failed: {e}");
            Vec::new()
        }
    };
    let table3 = match bist_bench::table3::run_all(limit) {
        Ok(rows) => {
            println!("{}", bist_bench::table3::render(&rows));
            let violations = bist_bench::table3::advbist_wins(&rows);
            if violations.is_empty() {
                println!("ADVBIST is never worse than any baseline under this budget.");
            } else {
                for v in &violations {
                    println!("claim violation: {v}");
                }
            }
            rows
        }
        Err(e) => {
            eprintln!("table 3 failed: {e}");
            Vec::new()
        }
    };

    // The rebuild-vs-engine sweep comparison, under a deterministic node
    // budget so the per-k objectives can be cross-checked.
    let sweep_nodes = bist_bench::workload::sweep_nodes_from_env();
    eprintln!("# sweep node budget: {sweep_nodes} nodes/solve (set BIST_SWEEP_NODES to change)");
    let sweep_config = bist_bench::workload::sweep_config(sweep_nodes);
    let sweep_circuits = bist_bench::small_circuits();
    let sweep = match bist_bench::sweep::run_all(&sweep_circuits, &sweep_config) {
        Ok(sweeps) => {
            println!("{}", bist_bench::sweep::render(&sweeps));
            sweeps
        }
        Err(e) => {
            eprintln!("sweep comparison failed: {e}");
            Vec::new()
        }
    };
    if !sweep.is_empty() {
        let body = sweep
            .iter()
            .map(bist_bench::CircuitSweep::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!("[\n{body}\n]\n");
        match std::fs::write("BENCH_sweep.json", &json) {
            Ok(()) => eprintln!("# wrote BENCH_sweep.json"),
            Err(e) => eprintln!("could not write BENCH_sweep.json: {e}"),
        }
    }

    let report = ExperimentReport {
        time_limit_seconds: limit.as_secs_f64(),
        table2,
        table3,
        sweep,
    };
    match report.to_json() {
        Ok(json) => println!("\n--- machine readable summary ---\n{json}"),
        Err(e) => eprintln!("could not serialise the summary: {e}"),
    }
}
