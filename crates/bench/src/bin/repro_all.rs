//! Runs the whole evaluation (Tables 1-3, Figures 1-3, the k-sweep engine
//! comparison) and prints a JSON summary at the end, suitable for pasting
//! into EXPERIMENTS.md. The sweep comparison is also written to
//! `BENCH_sweep.json` so the perf trajectory can be tracked across PRs, and
//! re-served through the `advbist::service` job queue as the front-door
//! acceptance gate (identical objectives under the per-job budgets).
//!
//! The solve budget comes from one [`bist_ilp::Budget::from_env`] read:
//! `BIST_TIME_LIMIT_SECS` (default 5 s) per table/figure ILP solve,
//! `BIST_NODE_LIMIT` (legacy `BIST_SWEEP_NODES`, default 1000) per sweep
//! solve.

use bist_bench::report::ExperimentReport;
use bist_bench::workload::DEFAULT_SWEEP_NODES;
use bist_datapath::CostModel;

fn main() {
    // One env read covers the whole run: wall-clock (plus any absolute
    // deadline) for the tables/figures, node budget for the sweep.
    let table_budget = bist_bench::workload::table_budget();
    let limit = table_budget.time_limit.expect("or_time fills the limit");
    let config = bist_bench::workload::quick_config_budget(table_budget);
    eprintln!(
        "# per-instance ILP budget: {:.1}s (set BIST_TIME_LIMIT_SECS to change)",
        limit.as_secs_f64()
    );

    println!("{}", bist_bench::table1::render(&CostModel::eight_bit()));

    match bist_bench::figures::render_figure1(&config) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("figure 1 failed: {e}"),
    }
    match bist_bench::figures::render_fig2_fig3(&config) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("figures 2/3 failed: {e}"),
    }

    let table2 = match bist_bench::table2::run_all(table_budget) {
        Ok(rows) => {
            println!("{}", bist_bench::table2::render(&rows));
            rows
        }
        Err(e) => {
            eprintln!("table 2 failed: {e}");
            Vec::new()
        }
    };
    let table3 = match bist_bench::table3::run_all(table_budget) {
        Ok(rows) => {
            println!("{}", bist_bench::table3::render(&rows));
            let violations = bist_bench::table3::advbist_wins(&rows);
            if violations.is_empty() {
                println!("ADVBIST is never worse than any baseline under this budget.");
            } else {
                for v in &violations {
                    println!("claim violation: {v}");
                }
            }
            rows
        }
        Err(e) => {
            eprintln!("table 3 failed: {e}");
            Vec::new()
        }
    };

    // The rebuild-vs-engine sweep comparison, under a deterministic node
    // budget so the per-k objectives can be cross-checked.
    let sweep_nodes = bist_bench::budget_from_env()
        .or_nodes(DEFAULT_SWEEP_NODES)
        .node_limit
        .expect("or_nodes fills the limit");
    eprintln!("# sweep node budget: {sweep_nodes} nodes/solve (set BIST_NODE_LIMIT to change)");
    let sweep_config = bist_bench::workload::sweep_config(sweep_nodes);
    let sweep_circuits = bist_bench::small_circuits();
    let sweep = match bist_bench::sweep::run_all(&sweep_circuits, &sweep_config) {
        Ok(sweeps) => {
            println!("{}", bist_bench::sweep::render(&sweeps));
            sweeps
        }
        Err(e) => {
            // The sweep feeds the service acceptance gate below; a sweep
            // that cannot run must fail the harness, not skip the gate.
            eprintln!("sweep comparison failed: {e}");
            std::process::exit(1);
        }
    };
    if !sweep.is_empty() {
        let body = sweep
            .iter()
            .map(bist_bench::CircuitSweep::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!("[\n{body}\n]\n");
        match std::fs::write("BENCH_sweep.json", &json) {
            Ok(()) => eprintln!("# wrote BENCH_sweep.json"),
            Err(e) => eprintln!("could not write BENCH_sweep.json: {e}"),
        }

        // The tseng/paulin exactness gate (active only at the canonical
        // 1000-node budget the committed baselines were recorded under).
        let violations = bist_bench::sweep::exactness_violations(&sweep, sweep_nodes);
        if !violations.is_empty() {
            for violation in &violations {
                eprintln!("exactness regression: {violation}");
            }
            std::process::exit(1);
        }

        // Front-door gate: a single service batch must reproduce the engine
        // sweep rows with identical objectives under the per-job budgets.
        match bist_bench::sweep::service_cross_check(&sweep_circuits, &sweep, sweep_nodes) {
            Ok(()) => println!(
                "service gate: one job-queue batch reproduced every engine sweep row \
                 (identical objectives, per-job node budgets honoured)."
            ),
            Err(message) => {
                eprintln!("service gate failed: {message}");
                std::process::exit(1);
            }
        }
    }

    let report = ExperimentReport {
        time_limit_seconds: limit.as_secs_f64(),
        table2,
        table3,
        sweep,
    };
    match report.to_json() {
        Ok(json) => println!("\n--- machine readable summary ---\n{json}"),
        Err(e) => eprintln!("could not serialise the summary: {e}"),
    }
}
