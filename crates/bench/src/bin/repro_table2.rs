//! Regenerates Table 2 of the paper: ADVBIST area overhead and solve time for
//! every k-test session of every circuit.
//!
//! The per-instance ILP budget comes from `BIST_TIME_LIMIT_SECS` (default 5s).

fn main() {
    let budget = bist_bench::workload::table_budget();
    let limit = budget.time_limit.expect("or_time fills the limit");
    eprintln!(
        "# per-instance ILP budget: {:.1}s (set BIST_TIME_LIMIT_SECS to change)",
        limit.as_secs_f64()
    );
    match bist_bench::table2::run_all(budget) {
        Ok(rows) => print!("{}", bist_bench::table2::render(&rows)),
        Err(e) => {
            eprintln!("table 2 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
