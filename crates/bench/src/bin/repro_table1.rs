//! Regenerates Table 1 of the paper (the transistor cost model).

use bist_datapath::CostModel;

fn main() {
    print!("{}", bist_bench::table1::render(&CostModel::eight_bit()));
}
