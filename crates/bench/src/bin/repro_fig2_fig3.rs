//! Regenerates Figures 2 and 3 of the paper: signature-register and TPG
//! assignment on the example data path.

fn main() {
    let config = bist_bench::workload::quick_config_budget(bist_bench::workload::table_budget());
    match bist_bench::figures::render_fig2_fig3(&config) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("figures 2/3 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
