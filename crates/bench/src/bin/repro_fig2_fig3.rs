//! Regenerates Figures 2 and 3 of the paper: signature-register and TPG
//! assignment on the example data path.

fn main() {
    let limit = bist_bench::time_limit_from_env();
    let config = bist_bench::quick_config(limit);
    match bist_bench::figures::render_fig2_fig3(&config) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("figures 2/3 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
