//! Regenerates Figure 1 of the paper: the example DFG and its data path.

fn main() {
    let config = bist_bench::workload::quick_config_budget(bist_bench::workload::table_budget());
    match bist_bench::figures::render_figure1(&config) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("figure 1 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
