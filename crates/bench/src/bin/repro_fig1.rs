//! Regenerates Figure 1 of the paper: the example DFG and its data path.

fn main() {
    let limit = bist_bench::time_limit_from_env();
    let config = bist_bench::quick_config(limit);
    match bist_bench::figures::render_figure1(&config) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("figure 1 reproduction failed: {e}");
            std::process::exit(1);
        }
    }
}
