//! Runs the k-sweep comparison (rebuild baseline vs the layered engine) on
//! its own, writes `BENCH_sweep.json`, and applies two gates:
//!
//! * the engine-vs-rebuild cross-check (`objectives_match` must hold for
//!   every circuit — the parallel engine sweep repeats the rebuild searches
//!   bit-identically), and
//! * at the canonical 1000-node LP budget, the tseng/paulin **exactness
//!   gate**: either `tseng k=2` is proven optimal for the first time, or
//!   every previously-capped chained row ends strictly below its committed
//!   capped objective (see [`bist_bench::sweep::exactness_violations`]).
//!
//! CI runs this as the perf gate for the pricing/cuts/heuristics layer.

use bist_bench::workload::DEFAULT_SWEEP_NODES;

fn main() {
    let node_limit = bist_bench::budget_from_env()
        .or_nodes(DEFAULT_SWEEP_NODES)
        .node_limit
        .expect("or_nodes fills the limit");
    eprintln!("# sweep node budget: {node_limit} nodes/solve (set BIST_NODE_LIMIT to change)");

    let circuits = bist_bench::small_circuits();
    let config = bist_bench::workload::sweep_config(node_limit);
    let sweeps = match bist_bench::sweep::run_all(&circuits, &config) {
        Ok(sweeps) => sweeps,
        Err(e) => {
            eprintln!("sweep comparison failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", bist_bench::sweep::render(&sweeps));

    let body = sweeps
        .iter()
        .map(bist_bench::CircuitSweep::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    match std::fs::write("BENCH_sweep.json", format!("[\n{body}\n]\n")) {
        Ok(()) => eprintln!("# wrote BENCH_sweep.json"),
        Err(e) => eprintln!("could not write BENCH_sweep.json: {e}"),
    }

    let mut failed = false;
    for sweep in &sweeps {
        if !sweep.objectives_match {
            eprintln!(
                "sweep regression: {} parallel objectives diverged from the rebuild baseline",
                sweep.circuit
            );
            failed = true;
        }
    }
    let violations = bist_bench::sweep::exactness_violations(&sweeps, node_limit);
    if !violations.is_empty() {
        for violation in &violations {
            eprintln!("exactness regression: {violation}");
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if node_limit == DEFAULT_SWEEP_NODES {
        println!(
            "exactness gate: tseng k=2 proven optimal, or every previously-capped row \
             strictly below its committed capped objective."
        );
    }
}
