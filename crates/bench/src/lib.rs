//! # bist-bench — experiment harness for the DAC'99 ADVBIST reproduction
//!
//! Every table and figure of the paper's evaluation has a regeneration path
//! here:
//!
//! | Paper item | Module | Binary | Criterion bench |
//! |------------|--------|--------|-----------------|
//! | Table 1 (cost model) | [`table1`] | `repro_table1` | `cost_model` |
//! | Table 2 (ADVBIST per k-test session) | [`table2`] | `repro_table2` | `table2_advbist` |
//! | Table 3 (method comparison) | [`table3`] | `repro_table3` | `table3_methods` |
//! | Figure 1 (example DFG / data path) | [`figures`] | `repro_fig1` | `figure1` |
//! | Figures 2–3 (SR / TPG assignment) | [`figures`] | `repro_fig2_fig3` | — |
//! | Ablations (ours) | [`ablation`] | — | `ablation_solver`, `ilp_solver` |
//! | k-sweep engine vs rebuild (ours, `BENCH_sweep.json`) | [`sweep`] | `repro_all` | — |
//! | Service cache + resume (ours, `BENCH_service.json`) | [`service`] | `repro_service` | — |
//! | RTL netlists + simulated BIST coverage (ours, `BENCH_rtl.json`, `goldens/rtl/`) | [`rtl`] | `repro_rtl` | — |
//!
//! Every `repro_*` binary reads its solve budget through one
//! [`bist_ilp::Budget::from_env`] call ([`workload::budget_from_env`]):
//! `BIST_TIME_LIMIT_SECS` caps each table/figure ILP solve (default: 5
//! seconds per instance), `BIST_NODE_LIMIT` caps the deterministic
//! node-budgeted comparisons, and `BIST_DEADLINE_SECS` puts an absolute
//! deadline on the table/figure solves of a run (the node-budgeted
//! comparisons ignore it — they must stay deterministic). The paper used a
//! 24-CPU-hour cap on CPLEX 6.0, so absolute runtimes are not comparable —
//! see EXPERIMENTS.md.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod presolve;
pub mod report;
pub mod rtl;
pub mod search;
pub mod service;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod workload;

pub use report::{ExperimentReport, MethodRow, SessionRow};
pub use sweep::CircuitSweep;
pub use workload::{budget_from_env, circuits, quick_config, small_circuits, table_time_budget};
