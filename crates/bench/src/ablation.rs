//! Ablation experiments (ours, not in the paper): how much the design
//! choices called out in DESIGN.md matter.
//!
//! * search-space reduction (Section 3.5) on vs off,
//! * LP-relaxation bounds vs propagation-only bounds in the branch and bound,
//! * warm-starting the concurrent model from the sequential (left-edge-fixed)
//!   solution vs solving cold.

use std::time::Duration;

use bist_core::{synthesis, SynthesisConfig};
use bist_dfg::SynthesisInput;
use bist_ilp::BoundMode;

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Circuit name.
    pub circuit: String,
    /// Variant label.
    pub variant: String,
    /// Best area found within the budget (transistors).
    pub area: u64,
    /// Whether optimality was proven.
    pub optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Wall-clock time in seconds.
    pub time_seconds: f64,
}

/// The ablation variants, as `(label, configuration factory)` pairs.
pub fn variants(limit: Duration) -> Vec<(String, SynthesisConfig)> {
    let base = SynthesisConfig::time_boxed(limit);
    vec![
        (
            "baseline (hybrid bound, reduction, warm start)".to_string(),
            base.clone(),
        ),
        (
            "no search-space reduction".to_string(),
            base.clone().with_search_space_reduction(false),
        ),
        ("propagation bound only".to_string(), {
            let mut c = base.clone();
            c.solver.bound_mode = BoundMode::Propagation;
            c
        }),
        ("LP bound at every node".to_string(), {
            let mut c = base.clone();
            c.solver.bound_mode = BoundMode::LpRelaxation;
            c
        }),
        ("cold start (no sequential warm start)".to_string(), {
            let mut c = base;
            c.warm_start = false;
            c
        }),
    ]
}

/// Runs every ablation variant on one circuit for a k-test session.
///
/// # Errors
///
/// Propagates synthesis errors; the cold-start variant may legitimately fail
/// to find a solution within a tiny budget, in which case it is skipped
/// rather than reported.
pub fn run_circuit(
    name: &str,
    input: &SynthesisInput,
    k: usize,
    limit: Duration,
) -> Result<Vec<AblationRow>, bist_core::CoreError> {
    let mut rows = Vec::new();
    for (label, config) in variants(limit) {
        match synthesis::synthesize_bist(input, k, &config) {
            Ok(design) => rows.push(AblationRow {
                circuit: name.to_string(),
                variant: label,
                area: design.area.total(),
                optimal: design.optimal,
                nodes: design.stats.nodes,
                time_seconds: design.stats.time.as_secs_f64(),
            }),
            Err(bist_core::CoreError::NoSolutionWithinLimits) => {
                // Expected for the cold-start variant under very small budgets.
            }
            Err(other) => return Err(other),
        }
    }
    Ok(rows)
}

/// Renders ablation rows as a plain-text table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<45} {:>8} {:>8} {:>10} {:>9}\n",
        "Ckt", "Variant", "Area", "Optimal", "Nodes", "Time(s)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:<45} {:>8} {:>8} {:>10} {:>9.2}\n",
            row.circuit,
            row.variant,
            row.area,
            if row.optimal { "yes" } else { "no" },
            row.nodes,
            row.time_seconds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::benchmarks;

    #[test]
    fn all_variants_solve_figure1() {
        let input = benchmarks::figure1();
        let rows = run_circuit("figure1", &input, 2, Duration::from_millis(400)).unwrap();
        // At least the baseline, reduction-off, propagation and LP variants
        // must produce a design (cold start may or may not, depending on the
        // budget).
        assert!(rows.len() >= 4, "{rows:?}");
        let text = render(&rows);
        assert!(text.contains("figure1"));
        assert!(text.contains("Variant"));
        // All produced areas agree within the optimal value when proven.
        let optimal_areas: Vec<u64> = rows.iter().filter(|r| r.optimal).map(|r| r.area).collect();
        if optimal_areas.len() >= 2 {
            assert!(optimal_areas.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn variant_list_is_stable() {
        let v = variants(Duration::from_secs(1));
        assert_eq!(v.len(), 5);
        assert!(v[0].0.contains("baseline"));
    }
}
