//! Workloads and solver budgets shared by the harness binaries and benches.

use std::time::Duration;

use bist_core::SynthesisConfig;
use bist_dfg::{benchmarks, SynthesisInput};
use bist_ilp::{BoundMode, Budget, SolverConfig};

/// Default per-instance wall-clock budget of the table/figure harnesses.
pub const DEFAULT_TABLE_SECS: u64 = 5;
/// Default per-solve node budget of the deterministic sweep comparison.
pub const DEFAULT_SWEEP_NODES: u64 = 1000;

/// The six evaluation circuits of the paper, in table order.
pub fn circuits() -> Vec<(&'static str, SynthesisInput)> {
    benchmarks::all()
}

/// The circuits small enough for exact solving in seconds (used by quick
/// benches and smoke tests).
pub fn small_circuits() -> Vec<(&'static str, SynthesisInput)> {
    benchmarks::small()
}

/// Reads the harness [`Budget`] from the environment (`BIST_NODE_LIMIT`,
/// `BIST_TIME_LIMIT_SECS`, `BIST_DEADLINE_SECS`, legacy `BIST_SWEEP_NODES`
/// — see [`Budget::from_env`] for precedence), exiting with a diagnostic on
/// malformed values so CI never silently runs with the wrong budget.
pub fn budget_from_env() -> Budget {
    match Budget::from_env() {
        Ok(budget) => budget,
        Err(e) => {
            eprintln!("solver budget: {e}");
            std::process::exit(2);
        }
    }
}

/// The per-solve [`Budget`] of the table/figure harnesses: the
/// environment's wall-clock limit (default [`DEFAULT_TABLE_SECS`]) plus
/// any `BIST_DEADLINE_SECS` cap on the whole run. Node limits are *not*
/// carried over — those configure the deterministic comparisons (sweep and
/// ablations), not the wall-clock tables.
pub fn table_budget() -> Budget {
    let mut budget = budget_from_env().or_time(Duration::from_secs(DEFAULT_TABLE_SECS));
    budget.node_limit = None;
    budget
}

/// Wall-clock budget per table/figure ILP solve (the time component of
/// [`table_budget`]).
pub fn table_time_budget() -> Duration {
    table_budget().time_limit.expect("or_time fills the limit")
}

/// Node budget for an ablation binary: the canonical `BIST_NODE_LIMIT`
/// first, then the binary's legacy variable (`legacy_var`), then `default`.
/// The sweep-specific legacy `BIST_SWEEP_NODES` deliberately does *not*
/// apply here — the single [`Budget`] parser runs with the binary's own
/// legacy variable routed into its legacy slot instead. Malformed values
/// exit with a diagnostic.
pub fn ablation_nodes(legacy_var: &str, default: u64) -> u64 {
    let parsed = Budget::from_lookup(|key| {
        let var = if key == "BIST_SWEEP_NODES" {
            legacy_var
        } else {
            key
        };
        std::env::var(var).ok()
    });
    match parsed {
        Ok(budget) => budget.node_limit.unwrap_or(default),
        Err(mut e) => {
            // The parser saw the binary's variable under the legacy slot's
            // name; report the variable the operator actually set.
            if e.var == "BIST_SWEEP_NODES" {
                e.var = legacy_var.to_string();
            }
            eprintln!("solver budget: {e}");
            std::process::exit(2);
        }
    }
}

/// Reads the per-instance ILP budget from `BIST_TIME_LIMIT_SECS`.
#[deprecated(note = "use `budget_from_env` / `table_time_budget` and `Budget`")]
pub fn time_limit_from_env() -> Duration {
    table_time_budget()
}

/// The synthesis configuration used by the harness: the paper's 8-bit cost
/// model with the given time budget per ILP solve.
pub fn quick_config(limit: Duration) -> SynthesisConfig {
    SynthesisConfig::time_boxed(limit)
}

/// [`quick_config`] under a full [`Budget`] (time limit plus any absolute
/// deadline), as the table/figure binaries build from [`table_budget`].
pub fn quick_config_budget(budget: Budget) -> SynthesisConfig {
    SynthesisConfig::budgeted(budget)
}

/// A *deterministic* synthesis configuration for the k-sweep comparison:
/// node-limited instead of time-limited, so repeated runs (and the rebuild
/// vs engine variants) explore bit-identical search trees regardless of
/// machine speed or load.
pub fn sweep_config(node_limit: u64) -> SynthesisConfig {
    SynthesisConfig {
        solver: SolverConfig {
            budget: Budget::nodes(node_limit),
            bound_mode: BoundMode::LpRelaxation,
            ..SolverConfig::default()
        },
        ..SynthesisConfig::default()
    }
}

/// Reads the per-solve node budget of the sweep comparison from the
/// environment (default [`DEFAULT_SWEEP_NODES`]).
#[deprecated(note = "use `budget_from_env` and `Budget`")]
pub fn sweep_nodes_from_env() -> u64 {
    budget_from_env()
        .or_nodes(DEFAULT_SWEEP_NODES)
        .node_limit
        .expect("or_nodes fills the limit")
}

/// Maps a closure over circuits on a scoped thread pool and returns the
/// results in circuit order — the harness tables stay byte-identical no
/// matter how the threads are scheduled.
///
/// The worker count is capped at the machine's available parallelism, so a
/// wall-clock-limited solve never shares its core with more workers than
/// the machine actually has; on a single-core host this degenerates to the
/// sequential loop (and its solve quality) exactly.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn par_map_circuits<R, F>(circuits: &[(&str, SynthesisInput)], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&str, &SynthesisInput) -> R + Sync,
{
    bist_core::engine::par_map_ordered(circuits, |(name, input)| f(name, input))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_circuits_in_table_order() {
        let names: Vec<&str> = circuits().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6"]
        );
        assert_eq!(small_circuits().len(), 3);
    }

    #[test]
    fn env_budget_parsing() {
        // Do not mutate the environment (tests run in parallel); just check
        // the default path and the config construction. The precedence and
        // parse-failure matrix lives in `bist_ilp::session`'s unit tests
        // against `Budget::from_lookup`.
        let limit = table_time_budget();
        assert!(limit >= Duration::from_millis(1));
        let config = quick_config(Duration::from_millis(250));
        assert_eq!(
            config.solver.budget.time_limit,
            Some(Duration::from_millis(250))
        );
        let sweep = sweep_config(42);
        assert_eq!(sweep.solver.budget.node_limit, Some(42));
        assert!(sweep.solver.budget.time_limit.is_none());
    }
}
