//! Workloads and solver budgets shared by the harness binaries and benches.

use std::time::Duration;

use bist_core::SynthesisConfig;
use bist_dfg::{benchmarks, SynthesisInput};
use bist_ilp::{BoundMode, SolverConfig};

/// The six evaluation circuits of the paper, in table order.
pub fn circuits() -> Vec<(&'static str, SynthesisInput)> {
    benchmarks::all()
}

/// The circuits small enough for exact solving in seconds (used by quick
/// benches and smoke tests).
pub fn small_circuits() -> Vec<(&'static str, SynthesisInput)> {
    benchmarks::small()
}

/// Reads the per-instance ILP budget from `BIST_TIME_LIMIT_SECS`
/// (default 5 seconds, minimum 1 millisecond).
pub fn time_limit_from_env() -> Duration {
    std::env::var("BIST_TIME_LIMIT_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|secs| Duration::from_secs_f64(secs.max(0.001)))
        .unwrap_or(Duration::from_secs(5))
}

/// The synthesis configuration used by the harness: the paper's 8-bit cost
/// model with the given time budget per ILP solve.
pub fn quick_config(limit: Duration) -> SynthesisConfig {
    SynthesisConfig::time_boxed(limit)
}

/// A *deterministic* synthesis configuration for the k-sweep comparison:
/// node-limited instead of time-limited, so repeated runs (and the rebuild
/// vs engine variants) explore bit-identical search trees regardless of
/// machine speed or load.
pub fn sweep_config(node_limit: u64) -> SynthesisConfig {
    SynthesisConfig {
        solver: SolverConfig {
            time_limit: None,
            node_limit: Some(node_limit),
            bound_mode: BoundMode::LpRelaxation,
            ..SolverConfig::default()
        },
        ..SynthesisConfig::default()
    }
}

/// Reads the per-solve node budget of the sweep comparison from
/// `BIST_SWEEP_NODES` (default 1000, minimum 1).
pub fn sweep_nodes_from_env() -> u64 {
    std::env::var("BIST_SWEEP_NODES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1000)
}

/// Maps a closure over circuits on a scoped thread pool and returns the
/// results in circuit order — the harness tables stay byte-identical no
/// matter how the threads are scheduled.
///
/// The worker count is capped at the machine's available parallelism, so a
/// wall-clock-limited solve never shares its core with more workers than
/// the machine actually has; on a single-core host this degenerates to the
/// sequential loop (and its solve quality) exactly.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn par_map_circuits<R, F>(circuits: &[(&str, SynthesisInput)], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&str, &SynthesisInput) -> R + Sync,
{
    bist_core::engine::par_map_ordered(circuits, |(name, input)| f(name, input))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_circuits_in_table_order() {
        let names: Vec<&str> = circuits().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6"]
        );
        assert_eq!(small_circuits().len(), 3);
    }

    #[test]
    fn env_budget_parsing() {
        // Do not mutate the environment (tests run in parallel); just check
        // the default path and the config construction.
        let limit = time_limit_from_env();
        assert!(limit >= Duration::from_millis(1));
        let config = quick_config(Duration::from_millis(250));
        assert_eq!(config.solver.time_limit, Some(Duration::from_millis(250)));
    }
}
