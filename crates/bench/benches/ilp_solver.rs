//! Criterion micro benchmarks for the ILP substrate itself: LP relaxation,
//! propagation and branch and bound on classic small models.

use bist_ilp::{BoundMode, Model, Sense, SolverConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A small set-cover instance exercising branching and propagation.
fn set_cover(n_elements: usize, n_sets: usize) -> Model {
    let mut m = Model::new("set_cover");
    let sets: Vec<_> = (0..n_sets).map(|i| m.add_binary(format!("s{i}"))).collect();
    for e in 0..n_elements {
        // Element e is covered by sets e, e+1 and 2e (mod n_sets).
        let covering = [e % n_sets, (e + 1) % n_sets, (2 * e) % n_sets];
        let expr: Vec<_> = covering.iter().map(|&i| (sets[i], 1.0)).collect();
        m.add_geq(expr, 1.0, format!("cover{e}"));
    }
    let obj: Vec<_> = sets
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, 1.0 + (i % 3) as f64))
        .collect();
    m.set_objective(obj, Sense::Minimize);
    m
}

fn bench_ilp(c: &mut Criterion) {
    let model = set_cover(30, 15);
    let mut group = c.benchmark_group("ilp_solver");
    group.sample_size(20);
    group.bench_function("set_cover_propagation_bound", |b| {
        let config = SolverConfig::exact().with_bound_mode(BoundMode::Propagation);
        b.iter(|| black_box(&model).solve(&config).unwrap())
    });
    group.bench_function("set_cover_lp_bound", |b| {
        let config = SolverConfig::exact().with_bound_mode(BoundMode::LpRelaxation);
        b.iter(|| black_box(&model).solve(&config).unwrap())
    });
    group.bench_function("set_cover_hybrid_bound", |b| {
        let config = SolverConfig::exact().with_bound_mode(BoundMode::Hybrid { lp_depth: 3 });
        b.iter(|| black_box(&model).solve(&config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
