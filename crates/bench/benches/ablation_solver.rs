//! Criterion bench for the ablation study: solver / formulation variants on
//! the small circuits.

use std::time::Duration;

use bist_core::synthesis;
use bist_dfg::benchmarks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let limit = Duration::from_millis(200);
    let mut group = c.benchmark_group("ablation_solver");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, input) in benchmarks::small() {
        let k = input.binding().num_modules().min(2);
        for (label, config) in bist_bench::ablation::variants(limit) {
            let short = label.split(' ').next().unwrap_or("variant").to_string();
            group.bench_with_input(BenchmarkId::new(short, name), &input, |b, input| {
                b.iter(|| {
                    // The cold-start variant may time out without a
                    // solution under the tiny bench budget; that is fine.
                    let _ = synthesis::synthesize_bist(black_box(input), k, &config);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
