//! Criterion bench regenerating Table 3: every synthesis method on every
//! circuit at the maximal test-session count.

use std::time::Duration;

use bist_baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use bist_core::synthesis;
use bist_datapath::CostModel;
use bist_dfg::benchmarks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let cost = CostModel::eight_bit();
    let config = bist_bench::quick_config(Duration::from_millis(200));
    let mut group = c.benchmark_group("table3_methods");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, input) in benchmarks::all() {
        let k = input.binding().num_modules();
        group.bench_with_input(BenchmarkId::new("ADVBIST", name), &input, |b, input| {
            b.iter(|| synthesis::synthesize_bist(black_box(input), k, &config).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ADVAN", name), &input, |b, input| {
            b.iter(|| synthesize_advan(black_box(input), k, &cost).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("RALLOC", name), &input, |b, input| {
            b.iter(|| synthesize_ralloc(black_box(input), k, &cost).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("BITS", name), &input, |b, input| {
            b.iter(|| synthesize_bits(black_box(input), k, &cost).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
