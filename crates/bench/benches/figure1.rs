//! Criterion bench for the Figure 1 example: reference and BIST synthesis of
//! the paper's running example.

use std::time::Duration;

use bist_core::{reference, synthesis, SynthesisConfig};
use bist_dfg::benchmarks;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick() -> SynthesisConfig {
    SynthesisConfig::time_boxed(Duration::from_millis(250))
}

fn bench_figure1(c: &mut Criterion) {
    let input = benchmarks::figure1();
    let config = quick();
    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    group.bench_function("reference_ilp", |b| {
        b.iter(|| reference::synthesize_reference(black_box(&input), &config).unwrap())
    });
    group.bench_function("advbist_k1", |b| {
        b.iter(|| synthesis::synthesize_bist(black_box(&input), 1, &config).unwrap())
    });
    group.bench_function("advbist_k2", |b| {
        b.iter(|| synthesis::synthesize_bist(black_box(&input), 2, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
