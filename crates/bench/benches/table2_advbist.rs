//! Criterion bench regenerating Table 2: one measurement per (circuit, k).
//!
//! The solver budget per instance is deliberately small (the bench measures
//! the harness, not CPLEX-6.0-scale optimality proofs); run the
//! `repro_table2` binary with a larger `BIST_TIME_LIMIT_SECS` for the actual
//! table.

use std::time::Duration;

use bist_core::synthesis;
use bist_dfg::benchmarks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let config = bist_bench::quick_config(Duration::from_millis(200));
    let mut group = c.benchmark_group("table2_advbist");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (name, input) in benchmarks::all() {
        for k in 1..=input.binding().num_modules() {
            group.bench_with_input(
                BenchmarkId::new(name, k),
                &(input.clone(), k),
                |b, (input, k)| {
                    b.iter(|| synthesis::synthesize_bist(black_box(input), *k, &config).unwrap())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
