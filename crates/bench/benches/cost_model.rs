//! Criterion bench for the Table 1 cost model (sanity-level micro bench).

use bist_datapath::{CostModel, TestRegisterKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let cost = CostModel::eight_bit();
    c.bench_function("table1/register_costs", |b| {
        b.iter(|| {
            TestRegisterKind::all()
                .iter()
                .map(|&k| cost.register_cost(black_box(k)))
                .sum::<u64>()
        })
    });
    c.bench_function("table1/mux_costs", |b| {
        b.iter(|| (2..=7).map(|n| cost.mux_cost(black_box(n))).sum::<u64>())
    });
    c.bench_function("table1/render", |b| {
        b.iter(|| bist_bench::table1::render(black_box(&cost)))
    });
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
