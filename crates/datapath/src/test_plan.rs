//! Test plans: which modules are tested in which sub-test session, and with
//! which test resources.
//!
//! A *k-test session* (Section 3.3) partitions the modules into `k`
//! sub-test sessions; within a sub-test session every module under test has a
//! TPG on each input port and a signature register on its output, all active
//! simultaneously.

use std::collections::BTreeMap;

use crate::test_register::TestRegisterKind;

/// Where the random patterns for one module input port come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TpgSource {
    /// An existing data path register reconfigured as a TPG.
    Register(usize),
    /// A dedicated pattern generator added for a constant-only port
    /// (Section 3.3.4; heavily penalised by the objective).
    ConstantGenerator,
}

/// One sub-test session: the modules tested concurrently and their resources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TestSession {
    /// Modules under test in this sub-session.
    pub modules: Vec<usize>,
    /// TPG source for every `(module, input port)` of the modules under test.
    pub tpg: BTreeMap<(usize, usize), TpgSource>,
    /// Signature register for every module under test.
    pub sr: BTreeMap<usize, usize>,
}

impl TestSession {
    /// Creates an empty sub-test session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers used as TPGs in this sub-session.
    pub fn tpg_registers(&self) -> Vec<usize> {
        self.tpg
            .values()
            .filter_map(|source| match source {
                TpgSource::Register(r) => Some(*r),
                TpgSource::ConstantGenerator => None,
            })
            .collect()
    }

    /// Registers used as signature registers in this sub-session.
    pub fn sr_registers(&self) -> Vec<usize> {
        self.sr.values().copied().collect()
    }

    /// Number of dedicated constant-port generators in this sub-session.
    pub fn num_constant_generators(&self) -> usize {
        self.tpg
            .values()
            .filter(|s| matches!(s, TpgSource::ConstantGenerator))
            .count()
    }
}

/// A complete k-test-session plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TestPlan {
    /// The sub-test sessions, in execution order.
    pub sessions: Vec<TestSession>,
}

impl TestPlan {
    /// Creates a plan with `k` empty sub-test sessions.
    pub fn with_sessions(k: usize) -> Self {
        Self {
            sessions: vec![TestSession::new(); k],
        }
    }

    /// Number of sub-test sessions (the `k` of a k-test session).
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// All modules tested anywhere in the plan (with repetition, for the
    /// validator to detect double-testing).
    pub fn modules_tested(&self) -> Vec<usize> {
        self.sessions
            .iter()
            .flat_map(|s| s.modules.iter().copied())
            .collect()
    }

    /// The sub-session index in which a module is tested, if any.
    pub fn session_of_module(&self, module: usize) -> Option<usize> {
        self.sessions
            .iter()
            .position(|s| s.modules.contains(&module))
    }

    /// Sub-sessions in which a register acts as a TPG.
    pub fn tpg_sessions(&self, register: usize) -> Vec<usize> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tpg_registers().contains(&register))
            .map(|(i, _)| i)
            .collect()
    }

    /// Sub-sessions in which a register acts as a signature register.
    pub fn sr_sessions(&self, register: usize) -> Vec<usize> {
        self.sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sr_registers().contains(&register))
            .map(|(i, _)| i)
            .collect()
    }

    /// The minimal reconfiguration kind a register needs to play all the
    /// roles this plan gives it (Section 3.3.3).
    pub fn required_kind(&self, register: usize) -> TestRegisterKind {
        let tpg = self.tpg_sessions(register);
        let sr = self.sr_sessions(register);
        let concurrent = tpg.iter().any(|p| sr.contains(p));
        TestRegisterKind::required(!tpg.is_empty(), !sr.is_empty(), concurrent)
    }

    /// Total number of dedicated constant-port generators over all sessions.
    pub fn num_constant_generators(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| s.num_constant_generators())
            .sum()
    }

    /// Applies [`TestPlan::required_kind`] to every register of a data path.
    pub fn apply_register_kinds(&self, datapath: &mut crate::datapath::Datapath) {
        for r in 0..datapath.num_registers() {
            datapath.set_register_kind(r, self.required_kind(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two modules, three registers: module 0 tested in session 0 with TPGs
    /// R0/R1 and SR R2; module 1 tested in session 1 with TPGs R2/R0, SR R1.
    fn sample_plan() -> TestPlan {
        let mut plan = TestPlan::with_sessions(2);
        plan.sessions[0].modules.push(0);
        plan.sessions[0].tpg.insert((0, 0), TpgSource::Register(0));
        plan.sessions[0].tpg.insert((0, 1), TpgSource::Register(1));
        plan.sessions[0].sr.insert(0, 2);
        plan.sessions[1].modules.push(1);
        plan.sessions[1].tpg.insert((1, 0), TpgSource::Register(2));
        plan.sessions[1].tpg.insert((1, 1), TpgSource::Register(0));
        plan.sessions[1].sr.insert(1, 1);
        plan
    }

    #[test]
    fn role_queries() {
        let plan = sample_plan();
        assert_eq!(plan.num_sessions(), 2);
        assert_eq!(plan.modules_tested(), vec![0, 1]);
        assert_eq!(plan.session_of_module(1), Some(1));
        assert_eq!(plan.session_of_module(7), None);
        assert_eq!(plan.tpg_sessions(0), vec![0, 1]);
        assert_eq!(plan.sr_sessions(2), vec![0]);
        assert_eq!(plan.num_constant_generators(), 0);
    }

    #[test]
    fn required_kinds() {
        let plan = sample_plan();
        // R0: TPG in both sessions, never SR => TPG.
        assert_eq!(plan.required_kind(0), TestRegisterKind::Tpg);
        // R1: TPG in session 0, SR in session 1 => BILBO.
        assert_eq!(plan.required_kind(1), TestRegisterKind::Bilbo);
        // R2: SR in session 0, TPG in session 1 => BILBO.
        assert_eq!(plan.required_kind(2), TestRegisterKind::Bilbo);
    }

    #[test]
    fn concurrent_use_requires_cbilbo() {
        let mut plan = TestPlan::with_sessions(1);
        plan.sessions[0].modules.push(0);
        plan.sessions[0].tpg.insert((0, 0), TpgSource::Register(0));
        plan.sessions[0].tpg.insert((0, 1), TpgSource::Register(1));
        plan.sessions[0].sr.insert(0, 0); // register 0 is TPG and SR at once
        assert_eq!(plan.required_kind(0), TestRegisterKind::Cbilbo);
        assert_eq!(plan.required_kind(1), TestRegisterKind::Tpg);
        assert_eq!(plan.required_kind(2), TestRegisterKind::Plain);
    }

    #[test]
    fn constant_generators_are_counted() {
        let mut plan = TestPlan::with_sessions(1);
        plan.sessions[0].modules.push(0);
        plan.sessions[0]
            .tpg
            .insert((0, 0), TpgSource::ConstantGenerator);
        plan.sessions[0].tpg.insert((0, 1), TpgSource::Register(1));
        plan.sessions[0].sr.insert(0, 2);
        assert_eq!(plan.num_constant_generators(), 1);
        assert_eq!(plan.sessions[0].tpg_registers(), vec![1]);
    }
}
