//! The four reconfigurable test register kinds of parallel BIST.
//!
//! Section 2.2 of the paper: a system register may be reconfigured into a
//! test pattern generator (TPG), a multiple-input signature register (SR), a
//! built-in logic block observer (BILBO, usable as TPG *or* SR but not both
//! at once) or a concurrent BILBO (CBILBO, usable as TPG *and* SR in the same
//! sub-test session, at roughly twice the flip-flop cost).

use std::fmt;

/// Reconfiguration kind of a data path register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TestRegisterKind {
    /// Plain system register (no test function).
    #[default]
    Plain,
    /// Test pattern generator only.
    Tpg,
    /// Signature register only.
    Sr,
    /// BILBO: TPG or SR, in different sub-test sessions.
    Bilbo,
    /// Concurrent BILBO: TPG and SR in the same sub-test session.
    Cbilbo,
}

impl TestRegisterKind {
    /// Whether the register can act as a test pattern generator.
    pub fn can_generate(self) -> bool {
        matches!(
            self,
            TestRegisterKind::Tpg | TestRegisterKind::Bilbo | TestRegisterKind::Cbilbo
        )
    }

    /// Whether the register can act as a signature register.
    pub fn can_compact(self) -> bool {
        matches!(
            self,
            TestRegisterKind::Sr | TestRegisterKind::Bilbo | TestRegisterKind::Cbilbo
        )
    }

    /// Whether the register can act as TPG and SR *simultaneously* (only the
    /// CBILBO can, Section 2.2).
    pub fn can_generate_and_compact_concurrently(self) -> bool {
        matches!(self, TestRegisterKind::Cbilbo)
    }

    /// The minimal kind able to satisfy the given usage pattern.
    ///
    /// * `generates` — used as a TPG in at least one sub-test session,
    /// * `compacts` — used as an SR in at least one sub-test session,
    /// * `concurrent` — used as TPG and SR within the same sub-test session.
    pub fn required(generates: bool, compacts: bool, concurrent: bool) -> Self {
        match (generates, compacts, concurrent) {
            (_, _, true) => TestRegisterKind::Cbilbo,
            (true, true, false) => TestRegisterKind::Bilbo,
            (true, false, false) => TestRegisterKind::Tpg,
            (false, true, false) => TestRegisterKind::Sr,
            (false, false, false) => TestRegisterKind::Plain,
        }
    }

    /// Number of flip-flops for a register of the given bit width (the CBILBO
    /// doubles the count, Section 2.2).
    pub fn flip_flops(self, width: u32) -> u32 {
        match self {
            TestRegisterKind::Cbilbo => 2 * width,
            _ => width,
        }
    }

    /// Short column label as used in Table 3 of the paper.
    pub fn column_label(self) -> &'static str {
        match self {
            TestRegisterKind::Plain => "R",
            TestRegisterKind::Tpg => "T",
            TestRegisterKind::Sr => "S",
            TestRegisterKind::Bilbo => "B",
            TestRegisterKind::Cbilbo => "C",
        }
    }

    /// All kinds in ascending cost order.
    pub fn all() -> [TestRegisterKind; 5] {
        [
            TestRegisterKind::Plain,
            TestRegisterKind::Tpg,
            TestRegisterKind::Sr,
            TestRegisterKind::Bilbo,
            TestRegisterKind::Cbilbo,
        ]
    }
}

impl fmt::Display for TestRegisterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TestRegisterKind::Plain => "register",
            TestRegisterKind::Tpg => "TPG",
            TestRegisterKind::Sr => "SR",
            TestRegisterKind::Bilbo => "BILBO",
            TestRegisterKind::Cbilbo => "CBILBO",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        assert!(!TestRegisterKind::Plain.can_generate());
        assert!(!TestRegisterKind::Plain.can_compact());
        assert!(TestRegisterKind::Tpg.can_generate());
        assert!(!TestRegisterKind::Tpg.can_compact());
        assert!(TestRegisterKind::Sr.can_compact());
        assert!(!TestRegisterKind::Sr.can_generate());
        assert!(TestRegisterKind::Bilbo.can_generate());
        assert!(TestRegisterKind::Bilbo.can_compact());
        assert!(!TestRegisterKind::Bilbo.can_generate_and_compact_concurrently());
        assert!(TestRegisterKind::Cbilbo.can_generate_and_compact_concurrently());
    }

    #[test]
    fn required_kind_selection() {
        use TestRegisterKind as K;
        assert_eq!(K::required(false, false, false), K::Plain);
        assert_eq!(K::required(true, false, false), K::Tpg);
        assert_eq!(K::required(false, true, false), K::Sr);
        assert_eq!(K::required(true, true, false), K::Bilbo);
        assert_eq!(K::required(true, true, true), K::Cbilbo);
    }

    #[test]
    fn cbilbo_doubles_flip_flops() {
        assert_eq!(TestRegisterKind::Plain.flip_flops(8), 8);
        assert_eq!(TestRegisterKind::Bilbo.flip_flops(8), 8);
        assert_eq!(TestRegisterKind::Cbilbo.flip_flops(8), 16);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(TestRegisterKind::Bilbo.column_label(), "B");
        assert_eq!(TestRegisterKind::Cbilbo.to_string(), "CBILBO");
        assert_eq!(TestRegisterKind::all().len(), 5);
    }
}
