//! # bist-datapath — RTL data path and BIST structure model
//!
//! This crate models the *output* side of high-level BIST synthesis for the
//! DAC'99 ADVBIST reproduction: registers, functional modules, the
//! register↔module interconnect with its multiplexers, the four kinds of
//! reconfigurable test registers (TPG, signature register, BILBO, CBILBO),
//! the transistor cost model of the paper's Table 1, the k-test-session test
//! plan, and a structural validator that checks a (data path, test plan) pair
//! against the BIST rules of Section 2.2 / 3.3 of the paper.
//!
//! The synthesis algorithms themselves live in `bist-core` (the ILP method)
//! and `bist-baselines` (the heuristic comparison methods); both produce the
//! [`Datapath`] + [`TestPlan`] structures defined here, so a single
//! validator and a single area report serve every method — exactly what the
//! paper's Table 3 comparison needs.
//!
//! ```
//! use bist_datapath::cost::CostModel;
//! use bist_datapath::test_register::TestRegisterKind;
//!
//! let cost = CostModel::eight_bit();
//! // Table 1(a) of the paper.
//! assert_eq!(cost.register_cost(TestRegisterKind::Plain), 208);
//! assert_eq!(cost.register_cost(TestRegisterKind::Cbilbo), 596);
//! // Table 1(b): a 4-input multiplexer costs 208 transistors.
//! assert_eq!(cost.mux_cost(4), 208);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod datapath;
pub mod error;
pub mod interconnect;
pub mod report;
pub mod test_plan;
pub mod test_register;
pub mod validate;

pub use cost::{AreaBreakdown, CostModel};
pub use datapath::{Datapath, DatapathModule, DatapathRegister};
pub use error::DatapathError;
pub use interconnect::{Connection, Interconnect, ModulePort};
pub use report::DesignReport;
pub use test_plan::{TestPlan, TestSession, TpgSource};
pub use test_register::TestRegisterKind;
