//! Register ↔ module interconnect and multiplexer accounting.

use std::collections::BTreeSet;

/// An input port of a functional module, identified by module index and port
/// number (0 = leftmost, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModulePort {
    /// Module index within the data path.
    pub module: usize,
    /// Input port number.
    pub port: usize,
}

/// One wire of the interconnect, as yielded by [`Interconnect::iter`].
///
/// Back-ends (the RTL netlist emitter, the DOT writer, future exporters)
/// walk this typed view instead of poking the individual query methods, so
/// the three internal wire sets can evolve without breaking them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Connection {
    /// A register output drives a module input port.
    RegisterToPort {
        /// Register index.
        register: usize,
        /// The driven port.
        port: ModulePort,
    },
    /// A module output drives a register input.
    ModuleToRegister {
        /// Module index.
        module: usize,
        /// Register index.
        register: usize,
    },
    /// A hard-wired constant drives a module input port.
    ConstantToPort {
        /// The constant value.
        value: i64,
        /// The driven port.
        port: ModulePort,
    },
}

/// The wiring of a data path: which registers drive which module ports,
/// which module outputs drive which registers, and which ports are fed by
/// hard-wired constants.
///
/// Multiplexer sizes follow directly: the fan-in of a register input is the
/// number of module outputs wired to it, the fan-in of a module port is the
/// number of registers plus distinct constants wired to it, and a
/// multiplexer is needed wherever the fan-in is at least two (Eqs. (4)–(5)
/// of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interconnect {
    reg_to_port: BTreeSet<(usize, usize, usize)>,
    module_to_reg: BTreeSet<(usize, usize)>,
    constant_to_port: BTreeSet<(i64, usize, usize)>,
}

impl Interconnect {
    /// Creates an empty interconnect.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the interconnect carries no wires at all.
    pub fn is_empty(&self) -> bool {
        self.reg_to_port.is_empty()
            && self.module_to_reg.is_empty()
            && self.constant_to_port.is_empty()
    }

    /// Iterates over every wire as a typed [`Connection`], in a
    /// deterministic order (register→port wires first, then module→register,
    /// then constant→port, each in its set's sorted order).
    pub fn iter(&self) -> impl Iterator<Item = Connection> + '_ {
        let regs =
            self.reg_to_port
                .iter()
                .map(|&(register, module, port)| Connection::RegisterToPort {
                    register,
                    port: ModulePort { module, port },
                });
        let mods = self
            .module_to_reg
            .iter()
            .map(|&(module, register)| Connection::ModuleToRegister { module, register });
        let consts =
            self.constant_to_port
                .iter()
                .map(|&(value, module, port)| Connection::ConstantToPort {
                    value,
                    port: ModulePort { module, port },
                });
        regs.chain(mods).chain(consts)
    }

    /// Module input ports with *zero* drivers (no register and no constant
    /// wired to them), given the per-module input-port counts. A valid data
    /// path never has one — every DFG input edge creates a wire — so a
    /// non-empty result marks a corrupted structure that back-ends must
    /// reject with a typed error instead of panicking.
    pub fn undriven_ports(&self, module_ports: &[usize]) -> Vec<ModulePort> {
        let mut undriven = Vec::new();
        for (module, &ports) in module_ports.iter().enumerate() {
            for port in 0..ports {
                let p = ModulePort { module, port };
                if self.port_fanin(p) == 0 {
                    undriven.push(p);
                }
            }
        }
        undriven
    }

    /// Adds a wire from register `register` to input `port`.
    pub fn add_register_to_port(&mut self, register: usize, port: ModulePort) {
        self.reg_to_port.insert((register, port.module, port.port));
    }

    /// Adds a wire from the output of `module` to the input of `register`.
    pub fn add_module_to_register(&mut self, module: usize, register: usize) {
        self.module_to_reg.insert((module, register));
    }

    /// Adds a hard-wired constant value feeding an input port.
    pub fn add_constant_to_port(&mut self, value: i64, port: ModulePort) {
        self.constant_to_port
            .insert((value, port.module, port.port));
    }

    /// Whether register `register` drives input `port`.
    pub fn has_register_to_port(&self, register: usize, port: ModulePort) -> bool {
        self.reg_to_port
            .contains(&(register, port.module, port.port))
    }

    /// Whether the output of `module` drives `register`.
    pub fn has_module_to_register(&self, module: usize, register: usize) -> bool {
        self.module_to_reg.contains(&(module, register))
    }

    /// Registers wired to an input port.
    pub fn registers_driving_port(&self, port: ModulePort) -> Vec<usize> {
        self.reg_to_port
            .iter()
            .filter(|&&(_, m, p)| m == port.module && p == port.port)
            .map(|&(r, _, _)| r)
            .collect()
    }

    /// Distinct constant values wired to an input port.
    pub fn constants_driving_port(&self, port: ModulePort) -> Vec<i64> {
        self.constant_to_port
            .iter()
            .filter(|&&(_, m, p)| m == port.module && p == port.port)
            .map(|&(v, _, _)| v)
            .collect()
    }

    /// Modules whose output is wired to a register input.
    pub fn modules_driving_register(&self, register: usize) -> Vec<usize> {
        self.module_to_reg
            .iter()
            .filter(|&&(_, r)| r == register)
            .map(|&(m, _)| m)
            .collect()
    }

    /// Registers driven by a module output.
    pub fn registers_driven_by_module(&self, module: usize) -> Vec<usize> {
        self.module_to_reg
            .iter()
            .filter(|&&(m, _)| m == module)
            .map(|&(_, r)| r)
            .collect()
    }

    /// Ports driven by a register.
    pub fn ports_driven_by_register(&self, register: usize) -> Vec<ModulePort> {
        self.reg_to_port
            .iter()
            .filter(|&&(r, _, _)| r == register)
            .map(|&(_, module, port)| ModulePort { module, port })
            .collect()
    }

    /// Fan-in of a register input (the integer `m_r` of Eq. (4)).
    pub fn register_fanin(&self, register: usize) -> usize {
        self.modules_driving_register(register).len()
    }

    /// Fan-in of a module input port (the integer `m_{ml}` of Eq. (5)),
    /// counting registers and distinct constants.
    pub fn port_fanin(&self, port: ModulePort) -> usize {
        self.registers_driving_port(port).len() + self.constants_driving_port(port).len()
    }

    /// Number of register→port wires.
    pub fn num_register_port_wires(&self) -> usize {
        self.reg_to_port.len()
    }

    /// Number of module→register wires.
    pub fn num_module_register_wires(&self) -> usize {
        self.module_to_reg.len()
    }

    /// All multiplexer fan-ins of the data path: one entry per register input
    /// and module port whose fan-in is at least two.
    pub fn mux_fanins(&self, num_registers: usize, module_ports: &[usize]) -> Vec<usize> {
        let mut fanins = Vec::new();
        for r in 0..num_registers {
            let f = self.register_fanin(r);
            if f >= 2 {
                fanins.push(f);
            }
        }
        for (module, &ports) in module_ports.iter().enumerate() {
            for port in 0..ports {
                let f = self.port_fanin(ModulePort { module, port });
                if f >= 2 {
                    fanins.push(f);
                }
            }
        }
        fanins
    }

    /// Total number of multiplexer inputs (the `M` column of Table 3).
    pub fn total_mux_inputs(&self, num_registers: usize, module_ports: &[usize]) -> usize {
        self.mux_fanins(num_registers, module_ports).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interconnect {
        // Two registers, two modules with two ports each.
        let mut ic = Interconnect::new();
        ic.add_register_to_port(0, ModulePort { module: 0, port: 0 });
        ic.add_register_to_port(1, ModulePort { module: 0, port: 1 });
        ic.add_register_to_port(0, ModulePort { module: 1, port: 0 });
        ic.add_register_to_port(1, ModulePort { module: 1, port: 0 });
        ic.add_constant_to_port(5, ModulePort { module: 1, port: 1 });
        ic.add_module_to_register(0, 0);
        ic.add_module_to_register(1, 0);
        ic.add_module_to_register(1, 1);
        ic
    }

    #[test]
    fn wire_queries() {
        let ic = sample();
        assert!(ic.has_register_to_port(0, ModulePort { module: 0, port: 0 }));
        assert!(!ic.has_register_to_port(1, ModulePort { module: 0, port: 0 }));
        assert!(ic.has_module_to_register(1, 1));
        assert_eq!(
            ic.registers_driving_port(ModulePort { module: 1, port: 0 }),
            vec![0, 1]
        );
        assert_eq!(
            ic.constants_driving_port(ModulePort { module: 1, port: 1 }),
            vec![5]
        );
        assert_eq!(ic.modules_driving_register(0), vec![0, 1]);
        assert_eq!(ic.registers_driven_by_module(1), vec![0, 1]);
        assert_eq!(ic.ports_driven_by_register(1).len(), 2);
        assert_eq!(ic.num_register_port_wires(), 4);
        assert_eq!(ic.num_module_register_wires(), 3);
    }

    #[test]
    fn fanin_and_mux_accounting() {
        let ic = sample();
        // Register 0 is driven by both modules, register 1 by one.
        assert_eq!(ic.register_fanin(0), 2);
        assert_eq!(ic.register_fanin(1), 1);
        // Module 1 port 0 has two register sources; port 1 a single constant.
        assert_eq!(ic.port_fanin(ModulePort { module: 1, port: 0 }), 2);
        assert_eq!(ic.port_fanin(ModulePort { module: 1, port: 1 }), 1);
        let fanins = ic.mux_fanins(2, &[2, 2]);
        assert_eq!(fanins, vec![2, 2]);
        assert_eq!(ic.total_mux_inputs(2, &[2, 2]), 4);
    }

    #[test]
    fn iter_yields_every_wire_exactly_once_in_order() {
        let ic = sample();
        let connections: Vec<Connection> = ic.iter().collect();
        assert_eq!(
            connections.len(),
            ic.num_register_port_wires() + ic.num_module_register_wires() + 1
        );
        // Deterministic order: register wires, module wires, constants.
        assert!(matches!(
            connections.first(),
            Some(Connection::RegisterToPort { register: 0, .. })
        ));
        assert!(matches!(
            connections.last(),
            Some(Connection::ConstantToPort { value: 5, .. })
        ));
        assert!(connections.contains(&Connection::ModuleToRegister {
            module: 1,
            register: 1
        }));
        // Two iterations agree (the order is stable).
        let again: Vec<Connection> = ic.iter().collect();
        assert_eq!(connections, again);
    }

    #[test]
    fn empty_and_undriven_queries() {
        let empty = Interconnect::new();
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
        // Both ports of a 1-module datapath are undriven in an empty
        // interconnect.
        assert_eq!(
            empty.undriven_ports(&[2]),
            vec![
                ModulePort { module: 0, port: 0 },
                ModulePort { module: 0, port: 1 }
            ]
        );
        let ic = sample();
        assert!(!ic.is_empty());
        // Every port of the sample is driven.
        assert!(ic.undriven_ports(&[2, 2]).is_empty());
        // A third module with one port would be undriven.
        assert_eq!(
            ic.undriven_ports(&[2, 2, 1]),
            vec![ModulePort { module: 2, port: 0 }]
        );
    }

    #[test]
    fn duplicate_wires_are_idempotent() {
        let mut ic = Interconnect::new();
        ic.add_module_to_register(0, 0);
        ic.add_module_to_register(0, 0);
        assert_eq!(ic.register_fanin(0), 1);
    }
}
