//! Per-design reports in the format of the paper's Table 3.

use std::fmt;

use crate::cost::AreaBreakdown;
use crate::test_register::TestRegisterKind;

/// Everything Table 3 of the paper reports about one synthesised BIST design:
/// register counts by kind, multiplexer inputs, total area and area overhead
/// against the non-BIST reference circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Synthesis method name (`Ref.`, `ADVBIST`, `ADVAN`, `RALLOC`, `BITS`).
    pub method: String,
    /// Circuit name (`tseng`, `paulin`, ...).
    pub circuit: String,
    /// Number of sub-test sessions of the design (`k`).
    pub test_sessions: usize,
    /// Area breakdown of the design.
    pub breakdown: AreaBreakdown,
    /// Area of the non-BIST reference circuit (transistors).
    pub reference_area: u64,
}

impl DesignReport {
    /// Area overhead in percent against the reference circuit (the `OH`
    /// column of Table 3).
    pub fn overhead_percent(&self) -> f64 {
        self.breakdown.overhead_percent(self.reference_area)
    }

    /// Total number of registers (column `R`).
    pub fn registers(&self) -> usize {
        self.breakdown.total_registers()
    }

    /// Column values `(R, T, S, B, C, M, Area)` of Table 3.
    pub fn table3_columns(&self) -> (usize, usize, usize, usize, usize, usize, u64) {
        (
            self.registers(),
            self.breakdown.count(TestRegisterKind::Tpg),
            self.breakdown.count(TestRegisterKind::Sr),
            self.breakdown.count(TestRegisterKind::Bilbo),
            self.breakdown.count(TestRegisterKind::Cbilbo),
            self.breakdown.mux_inputs,
            self.breakdown.total(),
        )
    }

    /// A single formatted row in the layout of Table 3.
    pub fn table3_row(&self) -> String {
        let (r, t, s, b, c, m, area) = self.table3_columns();
        format!(
            "{:<10} {:<9} {:>2} {:>2} {:>2} {:>2} {:>2} {:>3} {:>6} {:>7.1}",
            self.circuit,
            self.method,
            r,
            t,
            s,
            b,
            c,
            m,
            area,
            self.overhead_percent()
        )
    }

    /// The header matching [`DesignReport::table3_row`].
    pub fn table3_header() -> String {
        format!(
            "{:<10} {:<9} {:>2} {:>2} {:>2} {:>2} {:>2} {:>3} {:>6} {:>7}",
            "Ckt", "Method", "R", "T", "S", "B", "C", "M", "Area", "OH(%)"
        )
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table3_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DesignReport {
        DesignReport {
            method: "ADVBIST".into(),
            circuit: "tseng".into(),
            test_sessions: 3,
            breakdown: AreaBreakdown {
                register_counts: [0, 2, 1, 2, 0],
                register_area: 2 * 256 + 304 + 2 * 388,
                mux_inputs: 14,
                mux_area: 560,
                mux_histogram: vec![0, 0, 7],
            },
            reference_area: 1600,
        }
    }

    #[test]
    fn columns_and_overhead() {
        let report = sample();
        let (r, t, s, b, c, m, area) = report.table3_columns();
        assert_eq!((r, t, s, b, c, m), (5, 2, 1, 2, 0, 14));
        assert_eq!(area, report.breakdown.total());
        assert!(report.overhead_percent() > 0.0);
    }

    #[test]
    fn row_and_header_align() {
        let report = sample();
        let header = DesignReport::table3_header();
        let row = report.table3_row();
        assert!(header.contains("Area"));
        assert!(row.contains("tseng"));
        assert!(row.contains("ADVBIST"));
        assert_eq!(report.to_string(), row);
    }
}
