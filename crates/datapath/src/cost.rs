//! The transistor-count cost model of the paper (Table 1).
//!
//! The paper measures circuit area as the transistor count of registers and
//! multiplexers only (the data path logic is excluded; Section 4.1). The
//! 8-bit numbers below are Table 1 verbatim; other widths scale linearly per
//! bit, which matches the structure of the reference register/BILBO designs
//! cited by the paper (refs. 11 and 12).

use crate::test_register::TestRegisterKind;

/// Table 1(a): transistor counts of 8-bit test registers.
pub const EIGHT_BIT_REGISTER_COST: [(TestRegisterKind, u64); 5] = [
    (TestRegisterKind::Plain, 208),
    (TestRegisterKind::Tpg, 256),
    (TestRegisterKind::Sr, 304),
    (TestRegisterKind::Bilbo, 388),
    (TestRegisterKind::Cbilbo, 596),
];

/// Table 1(b): transistor counts of 8-bit n-input multiplexers, n = 2..=7.
pub const EIGHT_BIT_MUX_COST: [(usize, u64); 6] =
    [(2, 80), (3, 176), (4, 208), (5, 300), (6, 320), (7, 350)];

/// The cost model: bit width plus the Table 1 per-category transistor counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    width: u32,
    /// Weight assigned to a TPG that must be synthesised for a constant-only
    /// port (Section 3.4 gives it "a large number greater than any other
    /// weight").
    constant_tpg_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::eight_bit()
    }
}

impl CostModel {
    /// The 8-bit cost model used throughout the paper's evaluation.
    pub fn eight_bit() -> Self {
        Self {
            width: 8,
            constant_tpg_cost: 10_000,
        }
    }

    /// A cost model for an arbitrary data path width; the Table 1 numbers are
    /// scaled linearly per bit.
    pub fn for_width(width: u32) -> Self {
        Self {
            width: width.max(1),
            constant_tpg_cost: 10_000 * u64::from(width.max(1)) / 8,
        }
    }

    /// The data path bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Transistor count of a register of the given reconfiguration kind.
    pub fn register_cost(&self, kind: TestRegisterKind) -> u64 {
        let base = EIGHT_BIT_REGISTER_COST
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .expect("every kind is tabulated");
        scale(base, self.width)
    }

    /// Transistor count of an `inputs`-input multiplexer. Fan-in 0 or 1 needs
    /// no multiplexer and costs nothing; fan-ins above 7 are extrapolated
    /// linearly from the Table 1 trend (the paper's designs never exceed 7).
    pub fn mux_cost(&self, inputs: usize) -> u64 {
        if inputs <= 1 {
            return 0;
        }
        let base = EIGHT_BIT_MUX_COST
            .iter()
            .find(|(n, _)| *n == inputs)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| {
                // Linear extrapolation beyond 7 inputs: the last tabulated
                // increment is 30 transistors per extra input at 8 bits, but
                // the average slope over the table is ~54; use the average to
                // stay conservative.
                let last = EIGHT_BIT_MUX_COST.last().expect("table not empty");
                last.1 + 54 * (inputs as u64 - last.0 as u64)
            });
        scale(base, self.width)
    }

    /// Objective weight of a TPG that must be added for a constant-only input
    /// port (Section 3.3.4 / 3.4).
    pub fn constant_tpg_cost(&self) -> u64 {
        self.constant_tpg_cost
    }

    /// Overrides the constant-TPG weight.
    pub fn with_constant_tpg_cost(mut self, cost: u64) -> Self {
        self.constant_tpg_cost = cost;
        self
    }

    /// The incremental cost of reconfiguring a plain register into `kind`
    /// (used by the ILP objective, Section 3.4).
    pub fn reconfiguration_increment(&self, kind: TestRegisterKind) -> u64 {
        self.register_cost(kind) - self.register_cost(TestRegisterKind::Plain)
    }
}

fn scale(base_eight_bit: u64, width: u32) -> u64 {
    if width == 8 {
        base_eight_bit
    } else {
        (base_eight_bit * u64::from(width) + 4) / 8
    }
}

/// Area breakdown of a synthesised data path, in transistors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AreaBreakdown {
    /// Number of registers of each kind: `[plain, TPG, SR, BILBO, CBILBO]`.
    pub register_counts: [usize; 5],
    /// Total transistor count of all registers.
    pub register_area: u64,
    /// Total number of multiplexer inputs (column `M` of Table 3).
    pub mux_inputs: usize,
    /// Total transistor count of all multiplexers.
    pub mux_area: u64,
    /// Number of multiplexers, indexed by fan-in (index = fan-in).
    pub mux_histogram: Vec<usize>,
}

impl AreaBreakdown {
    /// Total transistor count (registers + multiplexers), the `Area` column
    /// of Table 3.
    pub fn total(&self) -> u64 {
        self.register_area + self.mux_area
    }

    /// Number of registers of a specific kind.
    pub fn count(&self, kind: TestRegisterKind) -> usize {
        let idx = match kind {
            TestRegisterKind::Plain => 0,
            TestRegisterKind::Tpg => 1,
            TestRegisterKind::Sr => 2,
            TestRegisterKind::Bilbo => 3,
            TestRegisterKind::Cbilbo => 4,
        };
        self.register_counts[idx]
    }

    /// Total number of registers of any kind (column `R` of Table 3).
    pub fn total_registers(&self) -> usize {
        self.register_counts.iter().sum()
    }

    /// Area overhead in percent relative to a reference area
    /// (`(area − reference) / reference · 100`).
    pub fn overhead_percent(&self, reference: u64) -> f64 {
        if reference == 0 {
            return 0.0;
        }
        (self.total() as f64 - reference as f64) / reference as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1a_register_costs() {
        let cost = CostModel::eight_bit();
        assert_eq!(cost.register_cost(TestRegisterKind::Plain), 208);
        assert_eq!(cost.register_cost(TestRegisterKind::Tpg), 256);
        assert_eq!(cost.register_cost(TestRegisterKind::Sr), 304);
        assert_eq!(cost.register_cost(TestRegisterKind::Bilbo), 388);
        assert_eq!(cost.register_cost(TestRegisterKind::Cbilbo), 596);
    }

    #[test]
    fn table1b_mux_costs() {
        let cost = CostModel::eight_bit();
        assert_eq!(cost.mux_cost(0), 0);
        assert_eq!(cost.mux_cost(1), 0);
        assert_eq!(cost.mux_cost(2), 80);
        assert_eq!(cost.mux_cost(3), 176);
        assert_eq!(cost.mux_cost(4), 208);
        assert_eq!(cost.mux_cost(5), 300);
        assert_eq!(cost.mux_cost(6), 320);
        assert_eq!(cost.mux_cost(7), 350);
        assert!(cost.mux_cost(8) > 350);
    }

    #[test]
    fn width_scaling_is_linear() {
        let sixteen = CostModel::for_width(16);
        assert_eq!(sixteen.register_cost(TestRegisterKind::Plain), 416);
        assert_eq!(sixteen.mux_cost(2), 160);
        let four = CostModel::for_width(4);
        assert_eq!(four.register_cost(TestRegisterKind::Plain), 104);
        assert_eq!(four.width(), 4);
    }

    #[test]
    fn reconfiguration_increments_match_table() {
        let cost = CostModel::eight_bit();
        assert_eq!(cost.reconfiguration_increment(TestRegisterKind::Plain), 0);
        assert_eq!(cost.reconfiguration_increment(TestRegisterKind::Tpg), 48);
        assert_eq!(cost.reconfiguration_increment(TestRegisterKind::Sr), 96);
        assert_eq!(cost.reconfiguration_increment(TestRegisterKind::Bilbo), 180);
        assert_eq!(
            cost.reconfiguration_increment(TestRegisterKind::Cbilbo),
            388
        );
    }

    #[test]
    fn constant_tpg_weight_dominates_everything_else() {
        let cost = CostModel::eight_bit();
        assert!(cost.constant_tpg_cost() > cost.register_cost(TestRegisterKind::Cbilbo));
        assert!(cost.constant_tpg_cost() > cost.mux_cost(7));
        let custom = cost.with_constant_tpg_cost(5_000);
        assert_eq!(custom.constant_tpg_cost(), 5_000);
    }

    #[test]
    fn area_breakdown_accessors() {
        let breakdown = AreaBreakdown {
            register_counts: [2, 1, 1, 1, 0],
            register_area: 2 * 208 + 256 + 304 + 388,
            mux_inputs: 9,
            mux_area: 80 + 176,
            mux_histogram: vec![0, 0, 1, 1],
        };
        assert_eq!(breakdown.total_registers(), 5);
        assert_eq!(breakdown.count(TestRegisterKind::Bilbo), 1);
        assert_eq!(breakdown.total(), breakdown.register_area + 256);
        let oh = breakdown.overhead_percent(1600);
        assert!(oh > 0.0);
        assert_eq!(breakdown.overhead_percent(0), 0.0);
    }
}
