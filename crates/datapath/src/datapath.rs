//! The synthesised data path: registers, modules and interconnect.

use bist_dfg::allocate::RegisterAssignment;
use bist_dfg::{ModuleClass, OpId, SynthesisInput, VarId};

use crate::cost::{AreaBreakdown, CostModel};
use crate::error::DatapathError;
use crate::interconnect::{Interconnect, ModulePort};
use crate::test_register::TestRegisterKind;

/// A data path register and the DFG variables folded into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatapathRegister {
    /// Name, for reports (`R0`, `R1`, ...).
    pub name: String,
    /// Variables stored in this register over the schedule.
    pub variables: Vec<VarId>,
    /// BIST reconfiguration kind.
    pub kind: TestRegisterKind,
}

/// A functional module instance of the data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatapathModule {
    /// Name, for reports (`adder0`, `multiplier0`, ...).
    pub name: String,
    /// Class of the module.
    pub class: ModuleClass,
    /// Operations executed on this module.
    pub ops: Vec<OpId>,
    /// Number of input ports.
    pub num_inputs: usize,
}

/// A complete register-transfer-level data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datapath {
    name: String,
    registers: Vec<DatapathRegister>,
    modules: Vec<DatapathModule>,
    interconnect: Interconnect,
    register_of_var: Vec<Option<usize>>,
    width: u32,
}

impl Datapath {
    /// Builds a data path from a scheduled DFG and a register assignment.
    ///
    /// Modules come from the DFG's binding, registers from the assignment,
    /// and the interconnect contains exactly the wires the DFG edges require:
    /// a register→port wire for every input edge, a hard-wired constant for
    /// every constant operand and a module→register wire for every output
    /// edge. All registers start as [`TestRegisterKind::Plain`].
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::UnassignedVariable`] if a non-constant
    /// variable has no register, or [`DatapathError::IndexOutOfRange`] if the
    /// assignment references a register index beyond its own count.
    pub fn from_register_assignment(
        input: &SynthesisInput,
        assignment: &RegisterAssignment,
        width: u32,
    ) -> Result<Self, DatapathError> {
        let dfg = input.dfg();
        let num_registers = assignment.num_registers();

        let mut register_of_var = vec![None; dfg.num_vars()];
        for v in dfg.register_variables() {
            match assignment.register_of(v) {
                Some(r) if r < num_registers => register_of_var[v.index()] = Some(r),
                Some(r) => {
                    return Err(DatapathError::IndexOutOfRange {
                        what: "register",
                        index: r,
                    })
                }
                None => {
                    return Err(DatapathError::UnassignedVariable {
                        variable: dfg.var(v).name.clone(),
                    })
                }
            }
        }

        let registers: Vec<DatapathRegister> = (0..num_registers)
            .map(|r| DatapathRegister {
                name: format!("R{r}"),
                variables: assignment.vars_in_register(r),
                kind: TestRegisterKind::Plain,
            })
            .collect();

        let modules: Vec<DatapathModule> = input
            .binding()
            .module_ids()
            .map(|m| {
                let info = input.binding().module(m);
                DatapathModule {
                    name: info.name.clone(),
                    class: info.class,
                    ops: input.ops_on_module(m),
                    num_inputs: info.num_inputs,
                }
            })
            .collect();

        let mut interconnect = Interconnect::new();
        for (v, o, port) in dfg.input_edges() {
            let register = register_of_var[v.index()].expect("register variable assigned");
            let module = input.module_of(o).index();
            interconnect.add_register_to_port(register, ModulePort { module, port });
        }
        for (v, o, port) in dfg.constant_edges() {
            let module = input.module_of(o).index();
            if let bist_dfg::VarSource::Constant(value) = dfg.var(v).source {
                interconnect.add_constant_to_port(value, ModulePort { module, port });
            }
        }
        for (o, v) in dfg.output_edges() {
            let register = register_of_var[v.index()].expect("register variable assigned");
            let module = input.module_of(o).index();
            interconnect.add_module_to_register(module, register);
        }

        Ok(Self {
            name: input.name().to_string(),
            registers,
            modules,
            interconnect,
            register_of_var,
            width,
        })
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Data path bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The registers.
    pub fn registers(&self) -> &[DatapathRegister] {
        &self.registers
    }

    /// The functional modules.
    pub fn modules(&self) -> &[DatapathModule] {
        &self.modules
    }

    /// The interconnect.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Mutable access to the interconnect (used by synthesis methods that add
    /// wires beyond the strictly required ones, e.g. when sharing muxes).
    pub fn interconnect_mut(&mut self) -> &mut Interconnect {
        &mut self.interconnect
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// The register holding a variable (`None` for constants).
    pub fn register_of_var(&self, var: VarId) -> Option<usize> {
        self.register_of_var.get(var.index()).copied().flatten()
    }

    /// Sets the BIST reconfiguration kind of a register.
    ///
    /// # Panics
    ///
    /// Panics if `register` is out of range.
    pub fn set_register_kind(&mut self, register: usize, kind: TestRegisterKind) {
        self.registers[register].kind = kind;
    }

    /// The BIST reconfiguration kind of a register.
    ///
    /// # Panics
    ///
    /// Panics if `register` is out of range.
    pub fn register_kind(&self, register: usize) -> TestRegisterKind {
        self.registers[register].kind
    }

    /// Number of input ports of each module, in module order.
    pub fn module_port_counts(&self) -> Vec<usize> {
        self.modules.iter().map(|m| m.num_inputs).collect()
    }

    /// Iterates over every wire of the interconnect as a typed
    /// [`Connection`](crate::interconnect::Connection), in deterministic
    /// order. Back-ends (netlist emitters, graph writers) should walk this
    /// instead of poking the interconnect's individual query methods.
    pub fn iter_connections(&self) -> impl Iterator<Item = crate::interconnect::Connection> + '_ {
        self.interconnect.iter()
    }

    /// All multiplexer fan-ins of the data path, derived from this data
    /// path's own register count and [`Datapath::module_port_counts`] — the
    /// single place the mux structure comes from, shared by the area model
    /// and the RTL netlist emitter.
    pub fn mux_fanins(&self) -> Vec<usize> {
        self.interconnect
            .mux_fanins(self.num_registers(), &self.module_port_counts())
    }

    /// Module input ports with zero drivers. A valid data path has none
    /// (every DFG input edge creates a wire); back-ends turn a non-empty
    /// result into [`crate::DatapathError::UndrivenPort`] instead of
    /// panicking mid-emission.
    pub fn undriven_ports(&self) -> Vec<ModulePort> {
        self.interconnect.undriven_ports(&self.module_port_counts())
    }

    /// Computes the area breakdown (registers + multiplexers) under a cost
    /// model, the quantity minimised by the paper's objective function.
    pub fn area(&self, cost: &CostModel) -> AreaBreakdown {
        let mut breakdown = AreaBreakdown::default();
        for reg in &self.registers {
            let idx = match reg.kind {
                TestRegisterKind::Plain => 0,
                TestRegisterKind::Tpg => 1,
                TestRegisterKind::Sr => 2,
                TestRegisterKind::Bilbo => 3,
                TestRegisterKind::Cbilbo => 4,
            };
            breakdown.register_counts[idx] += 1;
            breakdown.register_area += cost.register_cost(reg.kind);
        }
        let fanins = self.mux_fanins();
        for &fanin in &fanins {
            breakdown.mux_inputs += fanin;
            breakdown.mux_area += cost.mux_cost(fanin);
            if breakdown.mux_histogram.len() <= fanin {
                breakdown.mux_histogram.resize(fanin + 1, 0);
            }
            breakdown.mux_histogram[fanin] += 1;
        }
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dfg::allocate::left_edge;
    use bist_dfg::benchmarks;
    use bist_dfg::lifetime::LifetimeTable;

    fn figure1_datapath() -> (bist_dfg::SynthesisInput, Datapath) {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        let dp = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
        (input, dp)
    }

    #[test]
    fn figure1_structure() {
        let (input, dp) = figure1_datapath();
        assert_eq!(dp.num_registers(), 3);
        assert_eq!(dp.num_modules(), 2);
        assert_eq!(dp.name(), "figure1");
        assert_eq!(dp.width(), 8);
        // Every non-constant variable is mapped to a register.
        for v in input.dfg().register_variables() {
            assert!(dp.register_of_var(v).is_some());
        }
        // Every DFG edge has a corresponding wire.
        for (v, o, port) in input.dfg().input_edges() {
            let r = dp.register_of_var(v).unwrap();
            let m = input.module_of(o).index();
            assert!(dp
                .interconnect()
                .has_register_to_port(r, ModulePort { module: m, port }));
        }
        for (o, v) in input.dfg().output_edges() {
            let r = dp.register_of_var(v).unwrap();
            let m = input.module_of(o).index();
            assert!(dp.interconnect().has_module_to_register(m, r));
        }
    }

    #[test]
    fn typed_connection_iteration_matches_the_queries() {
        use crate::interconnect::Connection;
        let (_, dp) = figure1_datapath();
        let connections: Vec<Connection> = dp.iter_connections().collect();
        assert_eq!(
            connections.len(),
            dp.interconnect().num_register_port_wires()
                + dp.interconnect().num_module_register_wires()
        );
        for c in &connections {
            match *c {
                Connection::RegisterToPort { register, port } => {
                    assert!(dp.interconnect().has_register_to_port(register, port));
                }
                Connection::ModuleToRegister { module, register } => {
                    assert!(dp.interconnect().has_module_to_register(module, register));
                }
                Connection::ConstantToPort { value, port } => {
                    assert!(dp
                        .interconnect()
                        .constants_driving_port(port)
                        .contains(&value));
                }
            }
        }
        assert!(!dp.interconnect().is_empty());
    }

    #[test]
    fn mux_fanins_and_undriven_ports_come_from_one_place() {
        let (_, dp) = figure1_datapath();
        // The centralised accessor agrees with the raw interconnect call.
        assert_eq!(
            dp.mux_fanins(),
            dp.interconnect()
                .mux_fanins(dp.num_registers(), &dp.module_port_counts())
        );
        // A valid data path has no undriven ports.
        assert!(dp.undriven_ports().is_empty());
    }

    #[test]
    fn area_of_plain_datapath_counts_only_plain_registers() {
        let (_, dp) = figure1_datapath();
        let cost = CostModel::eight_bit();
        let area = dp.area(&cost);
        assert_eq!(area.total_registers(), 3);
        assert_eq!(area.count(TestRegisterKind::Plain), 3);
        assert_eq!(area.register_area, 3 * 208);
        assert!(area.total() >= area.register_area);
    }

    #[test]
    fn setting_register_kinds_changes_area() {
        let (_, mut dp) = figure1_datapath();
        let cost = CostModel::eight_bit();
        let before = dp.area(&cost).total();
        dp.set_register_kind(0, TestRegisterKind::Bilbo);
        dp.set_register_kind(1, TestRegisterKind::Tpg);
        assert_eq!(dp.register_kind(0), TestRegisterKind::Bilbo);
        let after = dp.area(&cost).total();
        assert_eq!(after, before + 180 + 48);
    }

    #[test]
    fn all_benchmarks_produce_consistent_datapaths() {
        for (name, input) in benchmarks::all() {
            let table = LifetimeTable::new(&input).unwrap();
            let assignment = left_edge(&table);
            let dp = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
            assert_eq!(dp.num_registers(), table.min_registers(), "{name}");
            assert_eq!(dp.num_modules(), input.binding().num_modules(), "{name}");
            let area = dp.area(&CostModel::eight_bit());
            assert!(area.total() > 0, "{name}");
        }
    }
}
