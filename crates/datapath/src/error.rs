//! Error type for data path construction and BIST validation.

use std::fmt;

/// Errors raised when a data path or test plan is structurally unsound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathError {
    /// A variable was not assigned to any register.
    UnassignedVariable {
        /// Variable name.
        variable: String,
    },
    /// Two incompatible variables share a register.
    RegisterConflict {
        /// Register index.
        register: usize,
    },
    /// A required register→module or module→register connection is missing.
    MissingConnection {
        /// Human readable description of the missing wire.
        description: String,
    },
    /// A module is never tested, or is tested more than once.
    ModuleTestCount {
        /// Module index.
        module: usize,
        /// Number of times the plan tests it.
        count: usize,
    },
    /// A test resource assignment uses a connection that does not exist in
    /// the data path (the "no extra test paths" rule).
    TestPathNotInDatapath {
        /// Description of the offending assignment.
        description: String,
    },
    /// A register's reconfiguration kind cannot support how the plan uses it.
    WrongTestRegisterKind {
        /// Register index.
        register: usize,
        /// What the plan needs.
        needed: &'static str,
    },
    /// A signature register is shared by two modules in the same sub-session.
    SharedSignatureRegister {
        /// Register index.
        register: usize,
        /// Sub-test session index.
        session: usize,
    },
    /// One register drives both input ports of a module under test.
    SharedTpg {
        /// Register index.
        register: usize,
        /// Module index.
        module: usize,
    },
    /// The TPGs and signature register of a module are not all active in the
    /// same sub-test session.
    SessionMismatch {
        /// Module index.
        module: usize,
    },
    /// A module input port has no driver at all (no register and no
    /// constant wired to it) — a corrupted structure no valid data path
    /// produces. Raised as a typed error by back-ends (e.g. the RTL netlist
    /// emitter) instead of panicking mid-lowering.
    UndrivenPort {
        /// Module index.
        module: usize,
        /// Input port number.
        port: usize,
    },
    /// An index was out of range.
    IndexOutOfRange {
        /// What kind of entity the index referred to.
        what: &'static str,
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::UnassignedVariable { variable } => {
                write!(f, "variable {variable} is not assigned to a register")
            }
            DatapathError::RegisterConflict { register } => {
                write!(f, "register {register} holds two overlapping variables")
            }
            DatapathError::MissingConnection { description } => {
                write!(f, "missing interconnection: {description}")
            }
            DatapathError::ModuleTestCount { module, count } => {
                write!(f, "module {module} is tested {count} times (expected exactly once)")
            }
            DatapathError::TestPathNotInDatapath { description } => {
                write!(f, "test assignment needs a path absent from the data path: {description}")
            }
            DatapathError::WrongTestRegisterKind { register, needed } => {
                write!(f, "register {register} is not reconfigurable as {needed}")
            }
            DatapathError::SharedSignatureRegister { register, session } => write!(
                f,
                "register {register} is the signature register of two modules in sub-session {session}"
            ),
            DatapathError::SharedTpg { register, module } => write!(
                f,
                "register {register} feeds both input ports of module {module} under test"
            ),
            DatapathError::SessionMismatch { module } => write!(
                f,
                "test resources of module {module} are not active in a single sub-session"
            ),
            DatapathError::UndrivenPort { module, port } => {
                write!(f, "module {module} input port {port} has no driver")
            }
            DatapathError::IndexOutOfRange { what, index } => {
                write!(f, "{what} index {index} out of range")
            }
        }
    }
}

impl std::error::Error for DatapathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = DatapathError::SharedTpg {
            register: 1,
            module: 4,
        };
        assert!(e.to_string().contains("register 1"));
        assert!(e.to_string().contains("module 4"));
        let e = DatapathError::ModuleTestCount {
            module: 2,
            count: 0,
        };
        assert!(e.to_string().contains("0 times"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatapathError>();
    }
}
