//! Structural and BIST validation of synthesised designs.
//!
//! Every synthesis method in this reproduction (the ADVBIST ILP and the three
//! heuristic baselines) must pass the same checks, which encode the rules of
//! Sections 2.2 and 3.3 of the paper:
//!
//! 1. the data path implements the scheduled DFG (every variable has a
//!    register, incompatible variables never share one, every data transfer
//!    has a wire),
//! 2. every module is tested exactly once over the whole k-test session,
//! 3. test resources only use paths that already exist in the data path
//!    (no extra test-only interconnect),
//! 4. a register's reconfiguration kind supports every role the plan assigns
//!    to it (TPG/SR/BILBO/CBILBO semantics),
//! 5. an SR is never shared by two modules within one sub-test session, and a
//!    single register never feeds two input ports of the same module under
//!    test.

use bist_dfg::lifetime::LifetimeTable;
use bist_dfg::SynthesisInput;

use crate::datapath::Datapath;
use crate::error::DatapathError;
use crate::interconnect::ModulePort;
use crate::test_plan::{TestPlan, TpgSource};

/// Checks that a data path faithfully implements its scheduled DFG.
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn validate_structure(
    datapath: &Datapath,
    input: &SynthesisInput,
    lifetimes: &LifetimeTable,
) -> Result<(), DatapathError> {
    let dfg = input.dfg();

    // 1. Every register variable is mapped.
    for v in dfg.register_variables() {
        if datapath.register_of_var(v).is_none() {
            return Err(DatapathError::UnassignedVariable {
                variable: dfg.var(v).name.clone(),
            });
        }
    }

    // 2. No register holds two overlapping variables.
    for (r, reg) in datapath.registers().iter().enumerate() {
        for (i, &a) in reg.variables.iter().enumerate() {
            for &b in &reg.variables[i + 1..] {
                if lifetimes.conflicts(a, b) {
                    return Err(DatapathError::RegisterConflict { register: r });
                }
            }
        }
    }

    // 3. Every data transfer of the DFG has a wire.
    for (v, o, port) in dfg.input_edges() {
        let register = datapath
            .register_of_var(v)
            .expect("checked above that every variable is assigned");
        let module = input.module_of(o).index();
        if !datapath
            .interconnect()
            .has_register_to_port(register, ModulePort { module, port })
        {
            return Err(DatapathError::MissingConnection {
                description: format!(
                    "register R{register} -> module {module} port {port} (variable {})",
                    dfg.var(v).name
                ),
            });
        }
    }
    for (o, v) in dfg.output_edges() {
        let register = datapath
            .register_of_var(v)
            .expect("checked above that every variable is assigned");
        let module = input.module_of(o).index();
        if !datapath
            .interconnect()
            .has_module_to_register(module, register)
        {
            return Err(DatapathError::MissingConnection {
                description: format!(
                    "module {module} -> register R{register} (variable {})",
                    dfg.var(v).name
                ),
            });
        }
    }
    Ok(())
}

/// Checks that a test plan is a valid parallel-BIST plan for a data path.
///
/// # Errors
///
/// Returns the first BIST rule violation found.
pub fn validate_bist(datapath: &Datapath, plan: &TestPlan) -> Result<(), DatapathError> {
    // Every module tested exactly once over the whole plan.
    for module in 0..datapath.num_modules() {
        let count = plan
            .modules_tested()
            .iter()
            .filter(|&&m| m == module)
            .count();
        if count != 1 {
            return Err(DatapathError::ModuleTestCount { module, count });
        }
    }

    for (session_index, session) in plan.sessions.iter().enumerate() {
        // SR uniqueness within a sub-session.
        let srs = session.sr_registers();
        for (i, &a) in srs.iter().enumerate() {
            if srs[i + 1..].contains(&a) {
                return Err(DatapathError::SharedSignatureRegister {
                    register: a,
                    session: session_index,
                });
            }
        }

        for &module in &session.modules {
            if module >= datapath.num_modules() {
                return Err(DatapathError::IndexOutOfRange {
                    what: "module",
                    index: module,
                });
            }
            let num_inputs = datapath.modules()[module].num_inputs;

            // Signature register: must exist, be connected, and be able to compact.
            let Some(&sr) = session.sr.get(&module) else {
                return Err(DatapathError::SessionMismatch { module });
            };
            if sr >= datapath.num_registers() {
                return Err(DatapathError::IndexOutOfRange {
                    what: "register",
                    index: sr,
                });
            }
            if !datapath.interconnect().has_module_to_register(module, sr) {
                return Err(DatapathError::TestPathNotInDatapath {
                    description: format!("SR R{sr} is not fed by module {module}"),
                });
            }
            if !datapath.register_kind(sr).can_compact() {
                return Err(DatapathError::WrongTestRegisterKind {
                    register: sr,
                    needed: "signature register",
                });
            }

            // TPGs: one per input port, connected, able to generate, not shared
            // between the two ports of this module.
            let mut port_sources = Vec::new();
            for port in 0..num_inputs {
                let Some(source) = session.tpg.get(&(module, port)) else {
                    return Err(DatapathError::SessionMismatch { module });
                };
                match source {
                    TpgSource::ConstantGenerator => {
                        // Dedicated generator: allowed (at high cost), no
                        // structural requirement on the data path.
                    }
                    TpgSource::Register(r) => {
                        if *r >= datapath.num_registers() {
                            return Err(DatapathError::IndexOutOfRange {
                                what: "register",
                                index: *r,
                            });
                        }
                        if !datapath
                            .interconnect()
                            .has_register_to_port(*r, ModulePort { module, port })
                        {
                            return Err(DatapathError::TestPathNotInDatapath {
                                description: format!(
                                    "TPG R{r} does not drive module {module} port {port}"
                                ),
                            });
                        }
                        if !datapath.register_kind(*r).can_generate() {
                            return Err(DatapathError::WrongTestRegisterKind {
                                register: *r,
                                needed: "test pattern generator",
                            });
                        }
                        if port_sources.contains(r) {
                            return Err(DatapathError::SharedTpg {
                                register: *r,
                                module,
                            });
                        }
                        port_sources.push(*r);
                    }
                }
            }

            // A register that is TPG and SR for the *same sub-session* must be
            // a CBILBO (Section 3.3.3).
            for &r in &port_sources {
                if srs.contains(&r)
                    && !datapath
                        .register_kind(r)
                        .can_generate_and_compact_concurrently()
                {
                    return Err(DatapathError::WrongTestRegisterKind {
                        register: r,
                        needed: "concurrent BILBO",
                    });
                }
            }
        }
    }
    Ok(())
}

/// Convenience wrapper running both [`validate_structure`] and
/// [`validate_bist`].
///
/// # Errors
///
/// Returns the first violation of either check.
pub fn validate_design(
    datapath: &Datapath,
    plan: &TestPlan,
    input: &SynthesisInput,
    lifetimes: &LifetimeTable,
) -> Result<(), DatapathError> {
    validate_structure(datapath, input, lifetimes)?;
    validate_bist(datapath, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_register::TestRegisterKind;
    use bist_dfg::allocate::left_edge;
    use bist_dfg::benchmarks;

    fn figure1_setup() -> (bist_dfg::SynthesisInput, LifetimeTable, Datapath) {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        let dp = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
        (input, table, dp)
    }

    /// Builds a simple valid 2-session plan for the figure1 data path by
    /// picking, for every module, TPGs/SR from its existing connections.
    fn hand_plan(dp: &mut Datapath) -> TestPlan {
        let mut plan = TestPlan::with_sessions(dp.num_modules());
        for module in 0..dp.num_modules() {
            let session = &mut plan.sessions[module];
            session.modules.push(module);
            for port in 0..dp.modules()[module].num_inputs {
                let sources = dp
                    .interconnect()
                    .registers_driving_port(ModulePort { module, port });
                // Pick a source not already used for the other port.
                let already: Vec<usize> = session.tpg_registers();
                let pick = sources
                    .iter()
                    .copied()
                    .find(|r| !already.contains(r))
                    .expect("figure1 ports have distinct drivable registers");
                session
                    .tpg
                    .insert((module, port), TpgSource::Register(pick));
            }
            let sr = dp
                .interconnect()
                .registers_driven_by_module(module)
                .into_iter()
                .find(|r| !session.tpg_registers().contains(r))
                .or_else(|| {
                    dp.interconnect()
                        .registers_driven_by_module(module)
                        .first()
                        .copied()
                })
                .expect("module drives a register");
            session.sr.insert(module, sr);
        }
        plan.apply_register_kinds(dp);
        plan
    }

    #[test]
    fn valid_design_passes_both_checks() {
        let (input, table, mut dp) = figure1_setup();
        let plan = hand_plan(&mut dp);
        validate_structure(&dp, &input, &table).unwrap();
        validate_bist(&dp, &plan).unwrap();
        validate_design(&dp, &plan, &input, &table).unwrap();
    }

    #[test]
    fn missing_module_test_is_detected() {
        let (_, _, mut dp) = figure1_setup();
        let mut plan = hand_plan(&mut dp);
        plan.sessions[1].modules.clear();
        plan.sessions[1].tpg.clear();
        plan.sessions[1].sr.clear();
        assert!(matches!(
            validate_bist(&dp, &plan),
            Err(DatapathError::ModuleTestCount { count: 0, .. })
        ));
    }

    #[test]
    fn unconnected_tpg_is_detected() {
        let (_, _, mut dp) = figure1_setup();
        let mut plan = hand_plan(&mut dp);
        // Find a register that does NOT drive module 0 port 0 and force it.
        let connected = dp
            .interconnect()
            .registers_driving_port(ModulePort { module: 0, port: 0 });
        let bad = (0..dp.num_registers())
            .find(|r| !connected.contains(r))
            .expect("some register is not connected to this port");
        dp.set_register_kind(bad, TestRegisterKind::Tpg);
        plan.sessions[0]
            .tpg
            .insert((0, 0), TpgSource::Register(bad));
        assert!(matches!(
            validate_bist(&dp, &plan),
            Err(DatapathError::TestPathNotInDatapath { .. })
        ));
    }

    #[test]
    fn wrong_register_kind_is_detected() {
        let (_, _, mut dp) = figure1_setup();
        let plan = hand_plan(&mut dp);
        // Downgrade every register to plain: the TPG/SR roles become invalid.
        for r in 0..dp.num_registers() {
            dp.set_register_kind(r, TestRegisterKind::Plain);
        }
        assert!(matches!(
            validate_bist(&dp, &plan),
            Err(DatapathError::WrongTestRegisterKind { .. })
        ));
    }

    #[test]
    fn shared_tpg_across_ports_is_detected() {
        let (_, _, mut dp) = figure1_setup();
        let mut plan = hand_plan(&mut dp);
        // Force the same register on both ports of module 0 if it is
        // connected to both; otherwise wire it first.
        let r = dp
            .interconnect()
            .registers_driving_port(ModulePort { module: 0, port: 0 })[0];
        dp.interconnect_mut()
            .add_register_to_port(r, ModulePort { module: 0, port: 1 });
        // Upgrade to CBILBO so any SR/TPG role the register already has stays
        // legal and the *only* violation left is the shared-TPG rule.
        dp.set_register_kind(r, TestRegisterKind::Cbilbo);
        plan.sessions[0].tpg.insert((0, 0), TpgSource::Register(r));
        plan.sessions[0].tpg.insert((0, 1), TpgSource::Register(r));
        assert!(matches!(
            validate_bist(&dp, &plan),
            Err(DatapathError::SharedTpg { .. })
        ));
    }

    #[test]
    fn concurrent_tpg_sr_requires_cbilbo() {
        let (_, _, mut dp) = figure1_setup();
        let mut plan = hand_plan(&mut dp);
        // Make module 0's SR equal one of its TPG registers, but leave the
        // register as a BILBO: must be rejected; upgrading to CBILBO passes.
        let tpg_reg = match plan.sessions[0].tpg[&(0, 0)] {
            TpgSource::Register(r) => r,
            TpgSource::ConstantGenerator => unreachable!(),
        };
        // The SR must be fed by module 0; add the wire so only the kind rule fails.
        dp.interconnect_mut().add_module_to_register(0, tpg_reg);
        plan.sessions[0].sr.insert(0, tpg_reg);
        dp.set_register_kind(tpg_reg, TestRegisterKind::Bilbo);
        assert!(matches!(
            validate_bist(&dp, &plan),
            Err(DatapathError::WrongTestRegisterKind {
                needed: "concurrent BILBO",
                ..
            })
        ));
        dp.set_register_kind(tpg_reg, TestRegisterKind::Cbilbo);
        assert!(validate_bist(&dp, &plan).is_ok());
    }

    #[test]
    fn structure_check_detects_missing_wire() {
        let (input, table, dp) = figure1_setup();
        // Rebuild a datapath and remove one wire by constructing a fresh
        // interconnect without it is cumbersome; instead corrupt a register
        // mapping by moving a variable between registers via direct edit of
        // the register list is not exposed. So check the positive path and a
        // conflicting-register scenario through a deliberately broken
        // assignment.
        validate_structure(&dp, &input, &table).unwrap();
        let broken = bist_dfg::allocate::RegisterAssignment::from_parts(
            input
                .dfg()
                .var_ids()
                .map(|v| {
                    if input.dfg().var(v).is_constant() {
                        None
                    } else {
                        Some(0)
                    }
                })
                .collect(),
            1,
        );
        let dp2 = Datapath::from_register_assignment(&input, &broken, 8).unwrap();
        assert!(matches!(
            validate_structure(&dp2, &input, &table),
            Err(DatapathError::RegisterConflict { .. })
        ));
    }
}
