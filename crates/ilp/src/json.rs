//! A minimal JSON value tree with an exact-integer parser and writer.
//!
//! The solve-state snapshots ([`crate::snapshot`]) persist floating-point
//! search state (bounds, objectives, eta files) across processes and must
//! round-trip **bit-exactly** — a bound that moves by one ulp on reload
//! would change pruning decisions and break the "resume continues the same
//! tree" contract. Snapshots therefore store every `f64` as its
//! [`f64::to_bits`] integer, which in turn requires a JSON layer that keeps
//! `u64` integers exact instead of funnelling all numbers through `f64`
//! (which silently loses the low bits above 2⁵³). The bench reports keep
//! their human-readable hand-rolled writer; this module is the machine
//! round-trip path.
//!
//! The dialect is deliberately small: UTF-8 input, no duplicate-key
//! detection, objects preserve insertion order (deterministic output for
//! golden files), and non-negative integers without a fraction or exponent
//! parse as exact [`Value::Int`] while everything else numeric parses as
//! [`Value::Float`].

use std::fmt;

/// Maximum nesting depth accepted by the parser (snapshots are ~4 deep;
/// the cap just keeps crafted inputs from overflowing the stack).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent, kept exact as
    /// a `u64` (never routed through `f64`).
    Int(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serialises the value as compact JSON (no whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                use fmt::Write;
                // `{:?}` prints the shortest string that round-trips the
                // exact f64; NaN/infinite floats are not representable in
                // JSON and never appear in snapshots (bits are used there).
                let _ = write!(out, "{f:?}");
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` when `self` is not an object or the key
    /// is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The exact integer of a [`Value::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view: exact for [`Value::Int`] within `f64` range, direct
    /// for [`Value::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean of a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Escapes and quotes `s` into `out`.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A malformed JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the first offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                if b < 0x20 {
                    return Err(self.error("unescaped control character in string"));
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The document is a &str, so the byte range is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported).
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume the `u`
        let first = self.hex4()?;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xdc00..0xe000).contains(&second) {
                    let code = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return char::from_u32(code).ok_or_else(|| self.error("invalid code point"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b) if b.is_ascii_hexdigit() => (b as char).to_digit(16).unwrap(),
                _ => return Err(self.error("expected 4 hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.error("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut exact = !negative;
        if self.peek() == Some(b'.') {
            exact = false;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("expected a digit after `.`"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            exact = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if exact {
            // Non-negative integer: keep it exact. Overflow past u64 only
            // happens on hand-written input; fall back to f64 then.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::Object(vec![
            ("name".into(), Value::Str("snap \"v1\"\n".into())),
            ("count".into(), Value::Int(42)),
            ("ratio".into(), Value::Float(-0.125)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2), Value::Array(vec![])]),
            ),
        ]);
        let text = doc.write();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_integers_survive_exactly() {
        // Bit patterns of f64s exceed 2^53: a float round-trip would corrupt
        // them. This is the property the snapshots depend on.
        for bits in [
            u64::MAX,
            f64::to_bits(0.1),
            f64::to_bits(-1e300),
            f64::to_bits(f64::NEG_INFINITY),
            (1u64 << 53) + 1,
        ] {
            let text = Value::Int(bits).write();
            assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(bits));
        }
    }

    #[test]
    fn floats_round_trip_via_shortest_repr() {
        for f in [0.1, -2.5e-8, 1234.5678, -0.0] {
            let text = Value::Float(f).write();
            match Value::parse(&text).unwrap() {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn negative_and_fractional_numbers_are_floats() {
        assert_eq!(Value::parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(Value::parse("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(Value::parse("1e2").unwrap(), Value::Float(100.0));
        assert_eq!(Value::parse("7").unwrap(), Value::Int(7));
    }

    #[test]
    fn parse_errors_carry_the_offset() {
        for (text, offset_at_least) in [
            ("", 0),
            ("{", 1),
            ("[1,]", 3),
            ("{\"a\":}", 5),
            ("\"unterminated", 13),
            ("nul", 0),
            ("1 2", 2),
            ("{\"a\" 1}", 5),
        ] {
            let err = Value::parse(text).unwrap_err();
            assert!(
                err.offset >= offset_at_least.min(text.len()),
                "{text:?} -> {err}"
            );
        }
    }

    #[test]
    fn string_escapes_parse() {
        let v = Value::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
    }

    #[test]
    fn accessors() {
        let doc = Value::parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("a").and_then(Value::as_f64), Some(1.0));
        let items = doc.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(items[0].as_bool(), Some(true));
        assert!(items[1].is_null());
        assert_eq!(doc.get("c").and_then(Value::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
