//! Interval (bound) propagation over linear constraints.
//!
//! The propagator maintains a box of variable domains and repeatedly tightens
//! it using constraint activity bounds, the classic bound-consistency
//! technique for linear pseudo-Boolean / integer constraints. It is used
//! three ways by the crate:
//!
//! * as a presolve step before branch and bound,
//! * at every branch-and-bound node to prune and to detect infeasibility,
//! * by the greedy diving heuristic to repair partial assignments.
//!
//! The fixpoint is computed with a row worklist over the shared
//! [`SparseModel`]: when a bound of variable `j` tightens, only the rows the
//! CSC column of `j` names are re-examined, instead of sweeping every row of
//! the model each round as the seed implementation did. On the BIST
//! assignment models (thousands of rows, a handful of variables per row)
//! this turns each branch-and-bound node from `O(rounds · nnz)` into work
//! proportional to the bounds that actually move.

use std::collections::VecDeque;

use crate::model::{CmpOp, Model};
use crate::sparse::{RowRef, SparseModel};
use crate::EPS;

/// Current lower/upper bounds of every model variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Domains {
    lower: Vec<f64>,
    upper: Vec<f64>,
    integral: Vec<bool>,
}

impl Domains {
    /// Domains initialised from the declared variable bounds of a model.
    pub fn from_model(model: &Model) -> Self {
        let lower = model.vars().iter().map(|v| v.kind.lower()).collect();
        let upper = model.vars().iter().map(|v| v.kind.upper()).collect();
        let integral = model.vars().iter().map(|v| v.kind.is_integral()).collect();
        Self {
            lower,
            upper,
            integral,
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the domain set is empty (no variables).
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound of variable `i`.
    pub fn lower(&self, i: usize) -> f64 {
        self.lower[i]
    }

    /// Upper bound of variable `i`.
    pub fn upper(&self, i: usize) -> f64 {
        self.upper[i]
    }

    /// Whether variable `i` must take an integral value.
    pub fn is_integral(&self, i: usize) -> bool {
        self.integral[i]
    }

    /// Whether variable `i` is fixed (lower == upper within tolerance).
    pub fn is_fixed(&self, i: usize) -> bool {
        self.upper[i] - self.lower[i] <= EPS
    }

    /// The fixed value of variable `i`, if it is fixed.
    pub fn fixed_value(&self, i: usize) -> Option<f64> {
        if self.is_fixed(i) {
            Some(if self.integral[i] {
                self.lower[i].round()
            } else {
                0.5 * (self.lower[i] + self.upper[i])
            })
        } else {
            None
        }
    }

    /// Whether every integral variable is fixed.
    pub fn all_integral_fixed(&self) -> bool {
        (0..self.len()).all(|i| !self.integral[i] || self.is_fixed(i))
    }

    /// Whether every variable is fixed.
    pub fn all_fixed(&self) -> bool {
        (0..self.len()).all(|i| self.is_fixed(i))
    }

    /// Fixes variable `i` to `value`.
    ///
    /// Returns `false` (leaving the domain empty-marked) if `value` lies
    /// outside the current bounds.
    pub fn fix(&mut self, i: usize, value: f64) -> bool {
        if value < self.lower[i] - EPS || value > self.upper[i] + EPS {
            return false;
        }
        self.lower[i] = value;
        self.upper[i] = value;
        true
    }

    /// Tightens the lower bound of variable `i`. Returns whether it changed.
    pub fn tighten_lower(&mut self, i: usize, value: f64) -> bool {
        let mut value = value;
        if self.integral[i] {
            value = (value - EPS).ceil();
        }
        if value > self.lower[i] + EPS {
            self.lower[i] = value;
            true
        } else {
            false
        }
    }

    /// Tightens the upper bound of variable `i`. Returns whether it changed.
    pub fn tighten_upper(&mut self, i: usize, value: f64) -> bool {
        let mut value = value;
        if self.integral[i] {
            value = (value + EPS).floor();
        }
        if value < self.upper[i] - EPS {
            self.upper[i] = value;
            true
        } else {
            false
        }
    }

    /// Overwrites both bounds of variable `i` verbatim — no integrality
    /// rounding, no tightening-only check. Used exclusively by the snapshot
    /// resume path, which must reinstate the *exact* bit patterns a node's
    /// box held at capture time (routing restores through `tighten_*` would
    /// re-round already-rounded bounds and could move them by an ulp).
    pub(crate) fn restore_bounds(&mut self, i: usize, lower: f64, upper: f64) {
        self.lower[i] = lower;
        self.upper[i] = upper;
    }

    /// Whether the box is empty (some variable has lower > upper).
    pub fn is_infeasible(&self) -> bool {
        self.lower
            .iter()
            .zip(&self.upper)
            .any(|(l, u)| *l > *u + EPS)
    }

    /// Produces a dense assignment by taking the fixed value of every
    /// variable (midpoint for unfixed continuous, lower bound for unfixed
    /// integral variables). Intended for fully-fixed domains.
    pub fn assignment(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                if self.integral[i] {
                    self.lower[i].round()
                } else if self.is_fixed(i) {
                    0.5 * (self.lower[i] + self.upper[i])
                } else {
                    self.lower[i]
                }
            })
            .collect()
    }
}

/// The propagation engine: a compiled, index-based sparse image of the model
/// rows, shared with the LP relaxation and the branching rules.
#[derive(Debug, Clone)]
pub struct Propagator {
    matrix: SparseModel,
    /// Bound on the amortised number of full row sweeps per call; guards
    /// against slow convergence on badly scaled models.
    pub max_rounds: usize,
}

/// Result of a propagation fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationResult {
    /// The box is still non-empty; bounds may have been tightened.
    Consistent,
    /// Some constraint cannot be satisfied within the current box.
    Infeasible,
}

impl Propagator {
    /// Compiles the rows of a model.
    pub fn new(model: &Model) -> Self {
        Self::from_matrix(SparseModel::from_model(model))
    }

    /// Wraps an already-compiled sparse matrix.
    pub fn from_matrix(matrix: SparseModel) -> Self {
        Self {
            matrix,
            max_rounds: 64,
        }
    }

    /// The compiled sparse constraint matrix.
    pub fn matrix(&self) -> &SparseModel {
        &self.matrix
    }

    /// Runs bound propagation to fixpoint on `domains` using a row worklist
    /// seeded with every row.
    pub fn propagate(&self, domains: &mut Domains) -> PropagationResult {
        self.run_worklist(domains, None)
    }

    /// Runs bound propagation seeded only with the rows that mention
    /// `seed_vars`. Sound whenever `domains` was at a propagation fixpoint
    /// before the bounds of `seed_vars` were tightened (the branch-and-bound
    /// case: a child node differs from its propagated parent only in the
    /// branched variable) — rows not touching a changed variable cannot
    /// fire, and cascades are followed through the worklist as usual.
    pub fn propagate_seeded(
        &self,
        domains: &mut Domains,
        seed_vars: &[usize],
    ) -> PropagationResult {
        self.run_worklist(domains, Some(seed_vars))
    }

    fn run_worklist(
        &self,
        domains: &mut Domains,
        seed_vars: Option<&[usize]>,
    ) -> PropagationResult {
        if domains.is_infeasible() {
            return PropagationResult::Infeasible;
        }
        let m = self.matrix.num_rows();
        if m == 0 {
            return PropagationResult::Consistent;
        }

        let (mut queued, mut queue) = match seed_vars {
            None => (vec![true; m], (0..m as u32).collect::<VecDeque<u32>>()),
            Some(vars) => {
                let mut queued = vec![false; m];
                let mut queue = VecDeque::new();
                for &j in vars {
                    for &r in self.matrix.rows_of_var(j) {
                        if !queued[r as usize] {
                            queued[r as usize] = true;
                            queue.push_back(r);
                        }
                    }
                }
                (queued, queue)
            }
        };
        // The worklist converges for the same reason the round-based sweep
        // does (bounds only ever tighten), but badly scaled rows can tighten
        // by vanishing amounts for a long time; cap the total row
        // evaluations at the equivalent of `max_rounds` full sweeps.
        let budget = self.max_rounds.saturating_mul(m);
        let mut evaluations = 0usize;
        let mut changed_vars: Vec<usize> = Vec::new();

        while let Some(i) = queue.pop_front() {
            if evaluations >= budget {
                break;
            }
            evaluations += 1;
            queued[i as usize] = false;

            changed_vars.clear();
            let row = self.matrix.row(i as usize);
            if propagate_row(row, domains, &mut changed_vars) == RowResult::Infeasible {
                return PropagationResult::Infeasible;
            }
            for &j in &changed_vars {
                for &r in self.matrix.rows_of_var(j) {
                    if !queued[r as usize] {
                        queued[r as usize] = true;
                        queue.push_back(r);
                    }
                }
            }
        }

        if domains.is_infeasible() {
            PropagationResult::Infeasible
        } else {
            PropagationResult::Consistent
        }
    }
}

#[derive(PartialEq, Eq)]
enum RowResult {
    Consistent,
    Infeasible,
}

/// Activity range of `Σ aᵢ·xᵢ` over the box.
fn activity_bounds(row: RowRef<'_>, domains: &Domains) -> (f64, f64) {
    let mut min = 0.0;
    let mut max = 0.0;
    for (i, a) in row.terms() {
        if a >= 0.0 {
            min += a * domains.lower(i);
            max += a * domains.upper(i);
        } else {
            min += a * domains.upper(i);
            max += a * domains.lower(i);
        }
    }
    (min, max)
}

fn propagate_row(row: RowRef<'_>, domains: &mut Domains, changed: &mut Vec<usize>) -> RowResult {
    // Handle <= (and the <= half of ==).
    if matches!(row.op, CmpOp::Le | CmpOp::Eq)
        && propagate_upper(row, domains, changed) == RowResult::Infeasible
    {
        return RowResult::Infeasible;
    }
    // Handle >= (and the >= half of ==).
    if matches!(row.op, CmpOp::Ge | CmpOp::Eq)
        && propagate_lower(row, domains, changed) == RowResult::Infeasible
    {
        return RowResult::Infeasible;
    }
    RowResult::Consistent
}

/// Propagates `Σ aᵢ·xᵢ <= rhs`.
fn propagate_upper(row: RowRef<'_>, domains: &mut Domains, changed: &mut Vec<usize>) -> RowResult {
    let (min_act, _) = activity_bounds(row, domains);
    if min_act > row.rhs + EPS {
        return RowResult::Infeasible;
    }
    for (i, a) in row.terms() {
        if a.abs() < EPS {
            continue;
        }
        // residual minimum activity of the other terms
        let own_min = if a >= 0.0 {
            a * domains.lower(i)
        } else {
            a * domains.upper(i)
        };
        let resid = min_act - own_min;
        let slack = row.rhs - resid;
        let tightened = if a > 0.0 {
            // a * x_i <= slack  =>  x_i <= slack / a
            domains.tighten_upper(i, slack / a)
        } else {
            // a * x_i <= slack  =>  x_i >= slack / a   (a negative)
            domains.tighten_lower(i, slack / a)
        };
        if tightened {
            changed.push(i);
        }
    }
    if domains.is_infeasible() {
        RowResult::Infeasible
    } else {
        RowResult::Consistent
    }
}

/// Propagates `Σ aᵢ·xᵢ >= rhs`.
fn propagate_lower(row: RowRef<'_>, domains: &mut Domains, changed: &mut Vec<usize>) -> RowResult {
    let (_, max_act) = activity_bounds(row, domains);
    if max_act < row.rhs - EPS {
        return RowResult::Infeasible;
    }
    for (i, a) in row.terms() {
        if a.abs() < EPS {
            continue;
        }
        let own_max = if a >= 0.0 {
            a * domains.upper(i)
        } else {
            a * domains.lower(i)
        };
        let resid = max_act - own_max;
        let need = row.rhs - resid;
        let tightened = if a > 0.0 {
            // a * x_i >= need  =>  x_i >= need / a
            domains.tighten_lower(i, need / a)
        } else {
            // a * x_i >= need  =>  x_i <= need / a   (a negative)
            domains.tighten_upper(i, need / a)
        };
        if tightened {
            changed.push(i);
        }
    }
    if domains.is_infeasible() {
        RowResult::Infeasible
    } else {
        RowResult::Consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn domains_reflect_declared_bounds() {
        let mut m = Model::new("m");
        m.add_binary("b");
        m.add_integer("i", -2, 7);
        m.add_continuous("c", 0.5, 2.5);
        let d = Domains::from_model(&m);
        assert_eq!(d.lower(0), 0.0);
        assert_eq!(d.upper(0), 1.0);
        assert_eq!(d.lower(1), -2.0);
        assert_eq!(d.upper(1), 7.0);
        assert!(!d.is_integral(2));
        assert!(d.is_integral(0));
    }

    #[test]
    fn equality_fixes_partner_variable() {
        // x + y = 1 with x fixed to 1 forces y = 0.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_eq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert!(d.fix(x.index(), 1.0));
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(y.index()), Some(0.0));
    }

    #[test]
    fn geq_forces_variable_up() {
        // 2x >= 1, x binary  => x = 1.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 2.0)], 1.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(x.index()), Some(1.0));
    }

    #[test]
    fn detects_infeasibility() {
        // x + y >= 3 over binaries is infeasible.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Infeasible);
    }

    #[test]
    fn negative_coefficients() {
        // x - y <= -1 over binaries forces x = 0, y = 1.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, -1.0)], -1.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(x.index()), Some(0.0));
        assert_eq!(d.fixed_value(y.index()), Some(1.0));
    }

    #[test]
    fn integral_rounding_of_bounds() {
        // 2x <= 3 over an integer x in [0, 5] gives x <= 1.
        let mut m = Model::new("m");
        let x = m.add_integer("x", 0, 5);
        m.add_leq([(x, 2.0)], 3.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        prop.propagate(&mut d);
        assert_eq!(d.upper(x.index()), 1.0);
    }

    #[test]
    fn chained_implications_reach_fixpoint() {
        // x1 = 1; x1 <= x2; x2 <= x3; ... all become 1.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_geq([(vars[0], 1.0)], 1.0, "fix");
        for w in vars.windows(2) {
            m.add_leq([(w[0], 1.0), (w[1], -1.0)], 0.0, "imp");
        }
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        for v in &vars {
            assert_eq!(d.fixed_value(v.index()), Some(1.0));
        }
    }

    #[test]
    fn reverse_ordered_implication_chain_converges() {
        // Worst case for the old round-based sweep: the implication chain is
        // stated in reverse row order, so each full sweep only advanced one
        // link. The worklist handles any ordering.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.windows(2).rev() {
            m.add_leq([(w[0], 1.0), (w[1], -1.0)], 0.0, "imp");
        }
        m.add_geq([(vars[0], 1.0)], 1.0, "fix");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        for v in &vars {
            assert_eq!(d.fixed_value(v.index()), Some(1.0));
        }
    }

    #[test]
    fn assignment_of_fully_fixed_domains() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0, 4);
        m.add_geq([(x, 1.0)], 1.0, "c1");
        m.add_eq([(y, 1.0)], 3.0, "c2");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        prop.propagate(&mut d);
        assert!(d.all_integral_fixed());
        assert_eq!(d.assignment(), vec![1.0, 3.0]);
    }

    #[test]
    fn seeded_propagation_matches_full_propagation_after_a_fix() {
        // x1 = 1 propagated; then fixing x5 = 0 must drag the tail of the
        // implication chain x5 <= x6 <= ... down, whether propagation is
        // seeded with just x5 or sweeps every row.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.windows(2) {
            m.add_leq([(w[1], 1.0), (w[0], -1.0)], 0.0, "imp");
        }
        let prop = Propagator::new(&m);
        let mut fixpoint = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut fixpoint), PropagationResult::Consistent);

        let mut seeded = fixpoint.clone();
        assert!(seeded.fix(vars[5].index(), 0.0));
        let mut full = seeded.clone();
        assert_eq!(
            prop.propagate_seeded(&mut seeded, &[vars[5].index()]),
            PropagationResult::Consistent
        );
        assert_eq!(prop.propagate(&mut full), PropagationResult::Consistent);
        assert_eq!(seeded, full);
        for v in &vars[5..] {
            assert_eq!(seeded.fixed_value(v.index()), Some(0.0));
        }
    }

    #[test]
    fn matrix_is_shared_with_consumers() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "c");
        let prop = Propagator::new(&m);
        assert_eq!(prop.matrix().num_rows(), 1);
        assert_eq!(prop.matrix().occurrences(x.index()), 1);
    }
}
