//! Interval (bound) propagation over linear constraints.
//!
//! The propagator maintains a box of variable domains and repeatedly tightens
//! it using constraint activity bounds, the classic bound-consistency
//! technique for linear pseudo-Boolean / integer constraints. It is used
//! three ways by the crate:
//!
//! * as a presolve step before branch and bound,
//! * at every branch-and-bound node to prune and to detect infeasibility,
//! * by the greedy diving heuristic to repair partial assignments.

use crate::model::{CmpOp, Model};
use crate::EPS;

/// Current lower/upper bounds of every model variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Domains {
    lower: Vec<f64>,
    upper: Vec<f64>,
    integral: Vec<bool>,
}

impl Domains {
    /// Domains initialised from the declared variable bounds of a model.
    pub fn from_model(model: &Model) -> Self {
        let lower = model.vars().iter().map(|v| v.kind.lower()).collect();
        let upper = model.vars().iter().map(|v| v.kind.upper()).collect();
        let integral = model.vars().iter().map(|v| v.kind.is_integral()).collect();
        Self {
            lower,
            upper,
            integral,
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the domain set is empty (no variables).
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound of variable `i`.
    pub fn lower(&self, i: usize) -> f64 {
        self.lower[i]
    }

    /// Upper bound of variable `i`.
    pub fn upper(&self, i: usize) -> f64 {
        self.upper[i]
    }

    /// Whether variable `i` must take an integral value.
    pub fn is_integral(&self, i: usize) -> bool {
        self.integral[i]
    }

    /// Whether variable `i` is fixed (lower == upper within tolerance).
    pub fn is_fixed(&self, i: usize) -> bool {
        self.upper[i] - self.lower[i] <= EPS
    }

    /// The fixed value of variable `i`, if it is fixed.
    pub fn fixed_value(&self, i: usize) -> Option<f64> {
        if self.is_fixed(i) {
            Some(if self.integral[i] {
                self.lower[i].round()
            } else {
                0.5 * (self.lower[i] + self.upper[i])
            })
        } else {
            None
        }
    }

    /// Whether every integral variable is fixed.
    pub fn all_integral_fixed(&self) -> bool {
        (0..self.len()).all(|i| !self.integral[i] || self.is_fixed(i))
    }

    /// Whether every variable is fixed.
    pub fn all_fixed(&self) -> bool {
        (0..self.len()).all(|i| self.is_fixed(i))
    }

    /// Fixes variable `i` to `value`.
    ///
    /// Returns `false` (leaving the domain empty-marked) if `value` lies
    /// outside the current bounds.
    pub fn fix(&mut self, i: usize, value: f64) -> bool {
        if value < self.lower[i] - EPS || value > self.upper[i] + EPS {
            return false;
        }
        self.lower[i] = value;
        self.upper[i] = value;
        true
    }

    /// Tightens the lower bound of variable `i`. Returns whether it changed.
    pub fn tighten_lower(&mut self, i: usize, value: f64) -> bool {
        let mut value = value;
        if self.integral[i] {
            value = (value - EPS).ceil();
        }
        if value > self.lower[i] + EPS {
            self.lower[i] = value;
            true
        } else {
            false
        }
    }

    /// Tightens the upper bound of variable `i`. Returns whether it changed.
    pub fn tighten_upper(&mut self, i: usize, value: f64) -> bool {
        let mut value = value;
        if self.integral[i] {
            value = (value + EPS).floor();
        }
        if value < self.upper[i] - EPS {
            self.upper[i] = value;
            true
        } else {
            false
        }
    }

    /// Whether the box is empty (some variable has lower > upper).
    pub fn is_infeasible(&self) -> bool {
        self.lower
            .iter()
            .zip(&self.upper)
            .any(|(l, u)| *l > *u + EPS)
    }

    /// Produces a dense assignment by taking the fixed value of every
    /// variable (midpoint for unfixed continuous, lower bound for unfixed
    /// integral variables). Intended for fully-fixed domains.
    pub fn assignment(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                if self.integral[i] {
                    self.lower[i].round()
                } else if self.is_fixed(i) {
                    0.5 * (self.lower[i] + self.upper[i])
                } else {
                    self.lower[i]
                }
            })
            .collect()
    }
}

/// A normalised linear row `Σ aᵢ·xᵢ  op  rhs` used by the propagator and the
/// bounding code.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sparse terms `(variable index, coefficient)`.
    pub terms: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// The propagation engine: a compiled, index-based copy of the model rows.
#[derive(Debug, Clone)]
pub struct Propagator {
    rows: Vec<Row>,
    /// Maximum number of fixpoint sweeps per call; guards against slow
    /// convergence on badly scaled models.
    pub max_rounds: usize,
}

/// Result of a propagation fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationResult {
    /// The box is still non-empty; bounds may have been tightened.
    Consistent,
    /// Some constraint cannot be satisfied within the current box.
    Infeasible,
}

impl Propagator {
    /// Compiles the rows of a model.
    pub fn new(model: &Model) -> Self {
        let rows = model
            .constraints()
            .iter()
            .map(|c| Row {
                terms: c.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                op: c.op,
                rhs: c.rhs,
            })
            .collect();
        Self {
            rows,
            max_rounds: 64,
        }
    }

    /// The compiled rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Runs bound propagation to fixpoint on `domains`.
    pub fn propagate(&self, domains: &mut Domains) -> PropagationResult {
        for _ in 0..self.max_rounds {
            if domains.is_infeasible() {
                return PropagationResult::Infeasible;
            }
            let mut changed = false;
            for row in &self.rows {
                match propagate_row(row, domains) {
                    RowResult::Infeasible => return PropagationResult::Infeasible,
                    RowResult::Changed => changed = true,
                    RowResult::Unchanged => {}
                }
            }
            if !changed {
                break;
            }
        }
        if domains.is_infeasible() {
            PropagationResult::Infeasible
        } else {
            PropagationResult::Consistent
        }
    }
}

enum RowResult {
    Unchanged,
    Changed,
    Infeasible,
}

/// Activity range of `Σ aᵢ·xᵢ` over the box.
fn activity_bounds(terms: &[(usize, f64)], domains: &Domains) -> (f64, f64) {
    let mut min = 0.0;
    let mut max = 0.0;
    for &(i, a) in terms {
        if a >= 0.0 {
            min += a * domains.lower(i);
            max += a * domains.upper(i);
        } else {
            min += a * domains.upper(i);
            max += a * domains.lower(i);
        }
    }
    (min, max)
}

fn propagate_row(row: &Row, domains: &mut Domains) -> RowResult {
    let mut changed = false;
    // Handle <= (and the <= half of ==).
    if matches!(row.op, CmpOp::Le | CmpOp::Eq) {
        match propagate_upper(row, domains) {
            RowResult::Infeasible => return RowResult::Infeasible,
            RowResult::Changed => changed = true,
            RowResult::Unchanged => {}
        }
    }
    // Handle >= (and the >= half of ==).
    if matches!(row.op, CmpOp::Ge | CmpOp::Eq) {
        match propagate_lower(row, domains) {
            RowResult::Infeasible => return RowResult::Infeasible,
            RowResult::Changed => changed = true,
            RowResult::Unchanged => {}
        }
    }
    if changed {
        RowResult::Changed
    } else {
        RowResult::Unchanged
    }
}

/// Propagates `Σ aᵢ·xᵢ <= rhs`.
fn propagate_upper(row: &Row, domains: &mut Domains) -> RowResult {
    let (min_act, _) = activity_bounds(&row.terms, domains);
    if min_act > row.rhs + EPS {
        return RowResult::Infeasible;
    }
    let mut changed = false;
    for &(i, a) in &row.terms {
        if a.abs() < EPS {
            continue;
        }
        // residual minimum activity of the other terms
        let own_min = if a >= 0.0 {
            a * domains.lower(i)
        } else {
            a * domains.upper(i)
        };
        let resid = min_act - own_min;
        let slack = row.rhs - resid;
        if a > 0.0 {
            // a * x_i <= slack  =>  x_i <= slack / a
            if domains.tighten_upper(i, slack / a) {
                changed = true;
            }
        } else {
            // a * x_i <= slack  =>  x_i >= slack / a   (a negative)
            if domains.tighten_lower(i, slack / a) {
                changed = true;
            }
        }
    }
    if domains.is_infeasible() {
        RowResult::Infeasible
    } else if changed {
        RowResult::Changed
    } else {
        RowResult::Unchanged
    }
}

/// Propagates `Σ aᵢ·xᵢ >= rhs`.
fn propagate_lower(row: &Row, domains: &mut Domains) -> RowResult {
    let (_, max_act) = activity_bounds(&row.terms, domains);
    if max_act < row.rhs - EPS {
        return RowResult::Infeasible;
    }
    let mut changed = false;
    for &(i, a) in &row.terms {
        if a.abs() < EPS {
            continue;
        }
        let own_max = if a >= 0.0 {
            a * domains.upper(i)
        } else {
            a * domains.lower(i)
        };
        let resid = max_act - own_max;
        let need = row.rhs - resid;
        if a > 0.0 {
            // a * x_i >= need  =>  x_i >= need / a
            if domains.tighten_lower(i, need / a) {
                changed = true;
            }
        } else {
            // a * x_i >= need  =>  x_i <= need / a   (a negative)
            if domains.tighten_upper(i, need / a) {
                changed = true;
            }
        }
    }
    if domains.is_infeasible() {
        RowResult::Infeasible
    } else if changed {
        RowResult::Changed
    } else {
        RowResult::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn domains_reflect_declared_bounds() {
        let mut m = Model::new("m");
        m.add_binary("b");
        m.add_integer("i", -2, 7);
        m.add_continuous("c", 0.5, 2.5);
        let d = Domains::from_model(&m);
        assert_eq!(d.lower(0), 0.0);
        assert_eq!(d.upper(0), 1.0);
        assert_eq!(d.lower(1), -2.0);
        assert_eq!(d.upper(1), 7.0);
        assert!(!d.is_integral(2));
        assert!(d.is_integral(0));
    }

    #[test]
    fn equality_fixes_partner_variable() {
        // x + y = 1 with x fixed to 1 forces y = 0.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_eq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert!(d.fix(x.index(), 1.0));
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(y.index()), Some(0.0));
    }

    #[test]
    fn geq_forces_variable_up() {
        // 2x >= 1, x binary  => x = 1.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 2.0)], 1.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(x.index()), Some(1.0));
    }

    #[test]
    fn detects_infeasibility() {
        // x + y >= 3 over binaries is infeasible.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Infeasible);
    }

    #[test]
    fn negative_coefficients() {
        // x - y <= -1 over binaries forces x = 0, y = 1.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, -1.0)], -1.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        assert_eq!(d.fixed_value(x.index()), Some(0.0));
        assert_eq!(d.fixed_value(y.index()), Some(1.0));
    }

    #[test]
    fn integral_rounding_of_bounds() {
        // 2x <= 3 over an integer x in [0, 5] gives x <= 1.
        let mut m = Model::new("m");
        let x = m.add_integer("x", 0, 5);
        m.add_leq([(x, 2.0)], 3.0, "c");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        prop.propagate(&mut d);
        assert_eq!(d.upper(x.index()), 1.0);
    }

    #[test]
    fn chained_implications_reach_fixpoint() {
        // x1 = 1; x1 <= x2; x2 <= x3; ... all become 1.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_geq([(vars[0], 1.0)], 1.0, "fix");
        for w in vars.windows(2) {
            m.add_leq([(w[0], 1.0), (w[1], -1.0)], 0.0, "imp");
        }
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        assert_eq!(prop.propagate(&mut d), PropagationResult::Consistent);
        for v in &vars {
            assert_eq!(d.fixed_value(v.index()), Some(1.0));
        }
    }

    #[test]
    fn assignment_of_fully_fixed_domains() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0, 4);
        m.add_geq([(x, 1.0)], 1.0, "c1");
        m.add_eq([(y, 1.0)], 3.0, "c2");
        let prop = Propagator::new(&m);
        let mut d = Domains::from_model(&m);
        prop.propagate(&mut d);
        assert!(d.all_integral_fixed());
        assert_eq!(d.assignment(), vec![1.0, 3.0]);
    }
}
