//! Error type shared by every fallible operation of the crate.

use std::fmt;

/// Errors produced while building or solving an ILP model.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpError {
    /// A variable id referenced a variable that does not belong to the model.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// Number of variables currently in the model.
        len: usize,
    },
    /// A constraint or objective coefficient was NaN or infinite.
    InvalidCoefficient {
        /// Human readable location (constraint name or "objective").
        location: String,
    },
    /// Lower bound exceeds upper bound for a variable.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// The model was proven infeasible before or during the solve.
    Infeasible,
    /// The LP relaxation (and therefore the MILP) is unbounded.
    Unbounded,
    /// The model has no objective and the caller required one.
    MissingObjective,
    /// An internal invariant of the simplex tableau was violated.
    Numerical {
        /// Description of the numerical failure.
        message: String,
    },
    /// An LP-format text could not be parsed (see [`crate::lpfile`]).
    Parse {
        /// 1-based line number of the offending text.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A solve-state snapshot could not be applied: it is malformed, from
    /// an incompatible format version, or belongs to a different instance
    /// than the one being resumed (see [`crate::snapshot::SolveSnapshot`]).
    Snapshot {
        /// Description of the mismatch.
        message: String,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable { index, len } => {
                write!(
                    f,
                    "unknown variable index {index} (model has {len} variables)"
                )
            }
            IlpError::InvalidCoefficient { location } => {
                write!(f, "non-finite coefficient in {location}")
            }
            IlpError::InvalidBounds { name, lower, upper } => {
                write!(f, "invalid bounds for variable {name}: [{lower}, {upper}]")
            }
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "model is unbounded"),
            IlpError::MissingObjective => write!(f, "model has no objective"),
            IlpError::Numerical { message } => write!(f, "numerical failure: {message}"),
            IlpError::Parse { line, message } => {
                write!(f, "lp parse error at line {line}: {message}")
            }
            IlpError::Snapshot { message } => {
                write!(f, "cannot resume from snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = IlpError::UnknownVariable { index: 3, len: 2 };
        assert!(err.to_string().contains("unknown variable"));
        let err = IlpError::InvalidBounds {
            name: "x".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(err.to_string().contains('x'));
        assert!(IlpError::Infeasible.to_string().contains("infeasible"));
        assert!(IlpError::Unbounded.to_string().contains("unbounded"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IlpError>();
    }
}
