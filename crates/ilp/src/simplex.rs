//! Sparse bounded-variable **revised simplex** for the LP relaxation, with a
//! factorized basis and a dual-simplex warm-start path that re-solves a
//! child node's LP from its parent's optimal [`Basis`] after bound changes.
//!
//! The branch-and-bound solver uses this module to compute dual bounds and to
//! finish off nodes whose integral variables are all fixed but which still
//! contain continuous variables. Three design decisions define the kernel:
//!
//! * **Implicit bounds.** Every variable of the BIST formulations is boxed,
//!   and earlier revisions materialised each box side as an explicit tableau
//!   row (two rows per column), which inflated the tableau quadratically and
//!   forced a size-cap cold fallback on paulin-scale models. The revised
//!   kernel stores no bound rows at all: a nonbasic variable simply sits at
//!   its lower or upper bound (tracked by a per-column status), a move that
//!   hits a bound is a *bound flip* instead of a pivot, and a child node
//!   that tightens bounds changes nothing but the per-column bound arrays.
//! * **Sparse pricing off the shared matrix.** Columns are read straight
//!   from the CSC side of the shared [`SparseModel`]
//!   ([`SparseModel::col`]); each row contributes one slack column (an
//!   implicit unit vector), turning every row into an equality
//!   `Σ aᵢⱼ·xⱼ + sᵢ = bᵢ` with the row sense encoded in the slack's bounds.
//!   Pricing, FTRAN and the ratio tests therefore cost `O(nnz)` instead of
//!   touching a dense tableau row.
//! * **Factorized basis (product form).** The basis inverse is represented
//!   as a product of sparse *eta* matrices: each pivot appends one eta
//!   vector, and the file is periodically collapsed by refactorization
//!   (Gauss-Jordan over the basic columns with partial pivoting), which
//!   bounds both memory and accumulated rounding error. A [`Basis`] is just
//!   the column statuses, the basic set and the eta file — a few kilobytes,
//!   not a tableau — so the branch-and-bound solver can cache one per node
//!   cheaply.
//!
//! Two solve paths share the kernel:
//!
//! * [`solve_lp`] / [`solve_lp_basis`] — the cold solve: slack basis,
//!   composite phase-1 primal (minimising the sum of bound violations of
//!   the basic variables), then phase-2 primal on the true objective. The
//!   warm-capable variant additionally returns the optimal [`Basis`] and
//!   reports [`ReducedCosts`].
//! * [`resolve_with_basis`] — the warm path: a child's bound changes leave
//!   the parent's optimal basis *dual feasible* (reduced costs do not
//!   depend on bound values), so the **bounded dual simplex** drives out
//!   the handful of primal infeasibilities the new bounds introduced,
//!   flipping entering variables across their boxes when the dual ratio
//!   test says a pivot would overshoot.
//!
//! Both warm-capable paths report [`ReducedCosts`] at optimality, which the
//! solver uses for reduced-cost bound fixing against the incumbent.

use crate::model::CmpOp;
use crate::propagate::Domains;
use crate::sparse::SparseModel;
use crate::EPS;

/// Entering-column (primal) / leaving-row (dual) pricing rule of the
/// kernel.
///
/// **Devex** (the default) keeps a reference-framework weight per column
/// (per row on the dual side) that approximates the steepest-edge norm and
/// prices by `violation² / weight`, which steers the simplex away from the
/// near-degenerate max-violation columns Dantzig pricing chases on the BIST
/// formulations. **Dantzig** is the classic max-violation rule, kept as the
/// differential baseline — both rules must reach the same optima, only the
/// pivot trail differs. Either rule falls back to Bland's anti-cycling rule
/// while the phase measure stalls (see [`LpSolution`]'s per-mode counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Reference-framework devex pricing (approximate steepest edge).
    #[default]
    Devex,
    /// Classic max-violation Dantzig pricing.
    Dantzig,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution within the variable bounds.
    Infeasible,
    /// The objective is unbounded below (for minimisation).
    Unbounded,
    /// The pivot limit was reached before convergence.
    IterationLimit,
}

/// Reduced-cost information of an optimal basis, mapped back to the original
/// model variables.
///
/// `up[j]` is the proven marginal objective increase per unit increase of
/// variable `j` when the optimal solution has `j` at its **lower** bound
/// (`0.0` otherwise — basic, at the upper bound, or fixed). `down[j]` is the
/// symmetric marginal increase per unit *decrease* when `j` sits at its
/// **upper** bound. Both are non-negative; the solver combines them with an
/// incumbent objective to fix binaries that provably cannot flip in any
/// improving solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedCosts {
    /// Marginal cost of moving up off the lower bound, per variable.
    pub up: Vec<f64>,
    /// Marginal cost of moving down off the upper bound, per variable.
    pub down: Vec<f64>,
}

/// Result of [`solve_lp`] / [`solve_lp_basis`] / [`resolve_with_basis`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (minimisation), meaningful when `status` is `Optimal`.
    pub objective: f64,
    /// Values of the *original* model variables (fixed variables keep their
    /// fixed value). Empty unless `status` is `Optimal`.
    pub values: Vec<f64>,
    /// Total simplex pivots (basis changes) performed, primal and dual.
    /// Bound flips — nonbasic variables crossing their box without a basis
    /// change, the revised kernel's cheap replacement for the dense
    /// kernel's bound-row pivots — are counted separately in
    /// [`LpSolution::bound_flips`].
    pub pivots: u64,
    /// Iterations spent in the primal simplex (phases 1 and 2 of a cold
    /// solve).
    pub primal_pivots: u64,
    /// Iterations spent in the dual simplex (warm re-solves).
    pub dual_pivots: u64,
    /// Bound flips performed (rank-0 updates; see [`LpSolution::pivots`]).
    pub bound_flips: u64,
    /// Basis refactorizations performed while solving (eta-file collapses;
    /// cold solves start from the trivially factorized slack basis, so this
    /// counts only mid-solve collapses).
    pub refactorizations: u64,
    /// Pivots priced by devex (entering column on the primal side, leaving
    /// row on the dual side). `devex_pivots + dantzig_pivots + bland_pivots`
    /// always equals [`LpSolution::pivots`].
    pub devex_pivots: u64,
    /// Pivots priced by the Dantzig max-violation rule.
    pub dantzig_pivots: u64,
    /// Pivots priced by Bland's anti-cycling fallback (either mode switches
    /// to it while the phase measure stalls).
    pub bland_pivots: u64,
    /// Reduced costs at optimality. Only produced by the warm-capable
    /// paths; `None` from the plain cold solve.
    pub reduced_costs: Option<ReducedCosts>,
}

impl LpSolution {
    fn no_solution(status: LpStatus, counters: Counters) -> Self {
        Self {
            status,
            objective: f64::INFINITY,
            values: Vec::new(),
            pivots: counters.primal + counters.dual,
            primal_pivots: counters.primal,
            dual_pivots: counters.dual,
            bound_flips: counters.flips,
            refactorizations: counters.refactorizations,
            devex_pivots: counters.devex,
            dantzig_pivots: counters.dantzig,
            bland_pivots: counters.bland,
            reduced_costs: None,
        }
    }
}

/// Iteration counters of one kernel run.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    primal: u64,
    dual: u64,
    flips: u64,
    refactorizations: u64,
    /// Per-pricing-mode attribution of the basis-change pivots.
    devex: u64,
    dantzig: u64,
    bland: u64,
}

impl Counters {
    /// Attributes one basis-change pivot to the rule that priced it.
    #[inline]
    fn attribute(&mut self, pricing: Pricing, bland: bool) {
        if bland {
            self.bland += 1;
        } else {
            match pricing {
                Pricing::Devex => self.devex += 1,
                Pricing::Dantzig => self.dantzig += 1,
            }
        }
    }
}

/// Primal feasibility tolerance: a variable this far outside its bounds
/// still counts as feasible (extracted values are clamped to the box).
const FEAS_TOL: f64 = 1e-7;
/// Dual feasibility / pricing tolerance on reduced costs.
const COST_TOL: f64 = 1e-9;
/// Minimum magnitude of an acceptable pivot element.
const PIVOT_TOL: f64 = 1e-8;
/// Entries below this magnitude are dropped from stored eta vectors.
const DROP_TOL: f64 = 1e-11;
/// Update etas beyond the base factorization that trigger a
/// refactorization.
const REFACTOR_EVERY: usize = 64;
/// Iterations without progress in the phase measure before pricing falls
/// back to Bland's rule (and stays there until progress resumes).
const STALL_LIMIT: u32 = 32;
/// Devex weight magnitude that triggers a reference-framework reset (all
/// weights back to 1): past this the approximation has drifted too far from
/// the true steepest-edge norms to steer pricing.
const DEVEX_RESET: f64 = 1e9;
/// Fractional parts closer than this to an integer are not worth a Gomory
/// cut (the cut's violation is at most the fractionality).
const GOMORY_MIN_FRAC: f64 = 0.02;
/// A Gomory cut whose coefficient magnitudes span more than this ratio is
/// discarded as numerically fragile.
const GOMORY_MAX_DYNAMISM: f64 = 1e6;

/// A reusable simplex basis: per-column statuses, the basic column of every
/// row, and the product-form eta file of the basis inverse — everything
/// needed to re-solve the *same rows* under changed variable bounds with the
/// dual simplex, at a memory cost of `O(columns + eta nonzeros)`.
///
/// Produced by [`solve_lp_basis`] and [`resolve_with_basis`]; consumed by
/// [`resolve_with_basis`]. The basis is only valid for the exact constraint
/// matrix it was factorized from — a structural fingerprint (row, column and
/// nonzero counts) guards against accidental reuse after the
/// branch-and-bound solver rebuilds its row set with cutting planes.
#[derive(Debug, Clone)]
pub struct Basis {
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    etas: Vec<Eta>,
    age: u32,
    rows: usize,
    vars: usize,
    fingerprint: u64,
}

impl Basis {
    /// Number of dual-simplex re-solves since the last cold factorisation.
    /// The solver re-factorises (cold-solves) after a chain of warm
    /// re-solves to keep accumulated rounding error bounded.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Number of stored factorization nonzeros (memory footprint proxy).
    pub fn cells(&self) -> usize {
        self.basis.len() + self.etas.iter().map(|e| e.terms.len() + 1).sum::<usize>()
    }

    /// Serialises the basis into the snapshot JSON tree. Pivot values are
    /// stored as exact bit patterns: a basis whose eta file moved by one
    /// ulp would re-solve to different pivots and break the resumed run's
    /// determinism.
    pub(crate) fn snapshot_value(&self) -> crate::json::Value {
        use crate::json::Value;
        use crate::snapshot::bits;
        Value::Object(vec![
            (
                "status".into(),
                Value::Array(
                    self.status
                        .iter()
                        .map(|s| {
                            Value::Int(match s {
                                ColStatus::Basic => 0,
                                ColStatus::Lower => 1,
                                ColStatus::Upper => 2,
                            })
                        })
                        .collect(),
                ),
            ),
            (
                "basis".into(),
                Value::Array(self.basis.iter().map(|&j| Value::Int(j as u64)).collect()),
            ),
            (
                "etas".into(),
                Value::Array(
                    self.etas
                        .iter()
                        .map(|eta| {
                            Value::Array(vec![
                                Value::Int(u64::from(eta.row)),
                                bits(eta.pivot),
                                Value::Array(
                                    eta.terms
                                        .iter()
                                        .map(|&(i, a)| {
                                            Value::Array(vec![Value::Int(u64::from(i)), bits(a)])
                                        })
                                        .collect(),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("age".into(), Value::Int(u64::from(self.age))),
            ("rows".into(), Value::Int(self.rows as u64)),
            ("vars".into(), Value::Int(self.vars as u64)),
            ("fingerprint".into(), Value::Int(self.fingerprint)),
        ])
    }

    /// Rebuilds a basis from its snapshot tree; the inverse of
    /// [`Basis::snapshot_value`].
    pub(crate) fn from_snapshot_value(
        v: &crate::json::Value,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{get_array, get_u64, get_usize, SnapshotError};
        let field = |key: &str| SnapshotError::field(key);
        let status = get_array(v, "status")?
            .iter()
            .map(|s| match s.as_u64() {
                Some(0) => Ok(ColStatus::Basic),
                Some(1) => Ok(ColStatus::Lower),
                Some(2) => Ok(ColStatus::Upper),
                _ => Err(field("status")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let basis = get_array(v, "basis")?
            .iter()
            .map(|j| {
                j.as_u64()
                    .and_then(|j| usize::try_from(j).ok())
                    .ok_or_else(|| field("basis"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut etas = Vec::new();
        for eta in get_array(v, "etas")? {
            let parts = eta.as_array().ok_or_else(|| field("etas"))?;
            let [row, pivot, terms] = parts else {
                return Err(field("etas"));
            };
            let terms = terms
                .as_array()
                .ok_or_else(|| field("etas"))?
                .iter()
                .map(|term| match term.as_array() {
                    Some([i, a]) => Ok((
                        u32::try_from(i.as_u64().ok_or_else(|| field("etas"))?)
                            .map_err(|_| field("etas"))?,
                        f64::from_bits(a.as_u64().ok_or_else(|| field("etas"))?),
                    )),
                    _ => Err(field("etas")),
                })
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            etas.push(Eta {
                row: u32::try_from(row.as_u64().ok_or_else(|| field("etas"))?)
                    .map_err(|_| field("etas"))?,
                pivot: f64::from_bits(pivot.as_u64().ok_or_else(|| field("etas"))?),
                terms,
            });
        }
        let rebuilt = Self {
            status,
            basis,
            etas,
            age: u32::try_from(get_u64(v, "age")?).map_err(|_| field("age"))?,
            rows: get_usize(v, "rows")?,
            vars: get_usize(v, "vars")?,
            fingerprint: get_u64(v, "fingerprint")?,
        };
        if rebuilt.basis.len() != rebuilt.rows
            || rebuilt.status.len() != rebuilt.vars + rebuilt.rows
            || rebuilt
                .basis
                .iter()
                .any(|&j| j >= rebuilt.vars + rebuilt.rows)
            || rebuilt
                .etas
                .iter()
                .any(|e| (e.row as usize) >= rebuilt.rows)
        {
            return Err(SnapshotError::new("basis shape mismatch"));
        }
        Ok(rebuilt)
    }
}

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    /// In the basis; its value is determined by the basic solve.
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// One product-form eta: after the pivot `B_new⁻¹ = E⁻¹ · B_old⁻¹`, where
/// `E` is the identity except for column `row`, which holds the FTRANed
/// entering column `w`.
#[derive(Debug, Clone)]
struct Eta {
    row: u32,
    /// `w[row]` — the pivot element.
    pivot: f64,
    /// Off-pivot nonzeros of `w` as `(row, value)`.
    terms: Vec<(u32, f64)>,
}

impl Eta {
    /// Applies `E⁻¹` to `v` in place (forward transformation step).
    #[inline]
    fn ftran(&self, v: &mut [f64]) {
        let r = self.row as usize;
        if v[r] == 0.0 {
            return;
        }
        let p = v[r] / self.pivot;
        v[r] = p;
        for &(i, a) in &self.terms {
            v[i as usize] -= a * p;
        }
    }

    /// Applies `E⁻ᵀ` to `v` in place (backward transformation step).
    #[inline]
    fn btran(&self, v: &mut [f64]) {
        let r = self.row as usize;
        let mut s = v[r];
        for &(i, a) in &self.terms {
            s -= a * v[i as usize];
        }
        v[r] = s / self.pivot;
    }
}

/// Builds an eta from a dense FTRANed column, dropping negligible entries.
/// Returns `None` for an exact identity eta (unit pivot, no off-pivot
/// entries) — applying it would be a no-op, and skipping it keeps the
/// factorization of a mostly-slack basis near-empty.
fn make_eta(row: usize, w: &[f64]) -> Option<Eta> {
    let mut terms = Vec::new();
    for (i, &a) in w.iter().enumerate() {
        if i != row && a.abs() > DROP_TOL {
            terms.push((i as u32, a));
        }
    }
    if w[row] == 1.0 && terms.is_empty() {
        return None;
    }
    Some(Eta {
        row: row as u32,
        pivot: w[row],
        terms,
    })
}

/// Content hash guarding [`Basis`] reuse: the matrix's cached row hash
/// (precomputed once at [`SparseModel`] construction — dimension/nonzero
/// counts alone would accept a rebuilt cut pool that swapped one row for
/// another of equal size) folded with the objective vector and constant.
/// The dual-feasibility invariant the warm path relies on depends on the
/// *costs* as much as the rows, so a basis built under one objective must
/// not re-solve under another. Per call this costs `O(n)`, not `O(nnz)`.
pub(crate) fn instance_fingerprint(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
) -> u64 {
    use crate::sparse::{fnv_fold, FNV_OFFSET};
    let mut h = FNV_OFFSET;
    fnv_fold(&mut h, matrix.fingerprint());
    fnv_fold(&mut h, objective_constant.to_bits());
    for &c in objective {
        fnv_fold(&mut h, c.to_bits());
    }
    h
}

/// Inner loop outcome (richer than [`LpStatus`]: `Stalled` marks a
/// factorization failure the caller handles by restarting or giving up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inner {
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
    Stalled,
}

/// The revised-simplex working state over one matrix + box.
struct Kernel<'a> {
    matrix: &'a SparseModel,
    objective: &'a [f64],
    objective_constant: f64,
    /// Structural columns (model variables).
    n: usize,
    /// Rows (= slack columns).
    m: usize,
    /// Total columns: `n + m`.
    ncols: usize,
    /// Per-column bounds; slack bounds encode the row sense.
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<ColStatus>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Current value of every column.
    x: Vec<f64>,
    etas: Vec<Eta>,
    /// Length of the eta file right after the last (re)factorization; only
    /// the *update* etas beyond it count towards the refactorization
    /// trigger (a product-form refactorization itself emits up to one eta
    /// per basic column).
    base_etas: usize,
    counters: Counters,
    /// Dense scratch vector (length `m`), threaded through FTRANs.
    scratch: Vec<f64>,
    /// Pricing rule for this run.
    pricing: Pricing,
    /// Primal devex reference weights, one per column (meaningful for
    /// nonbasic columns). Reset to 1 with each new reference framework.
    weights: Vec<f64>,
    /// Dual devex reference weights, one per basis row.
    row_weights: Vec<f64>,
}

impl<'a> Kernel<'a> {
    /// Shared construction: bounds, costs and slack layout (state unset).
    fn shell(
        matrix: &'a SparseModel,
        objective: &'a [f64],
        objective_constant: f64,
        domains: &Domains,
    ) -> Self {
        let n = domains.len();
        debug_assert_eq!(objective.len(), n);
        debug_assert_eq!(matrix.num_vars(), n);
        let m = matrix.num_rows();
        let ncols = n + m;
        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        for j in 0..n {
            if let Some(v) = domains.fixed_value(j) {
                lower.push(v);
                upper.push(v);
            } else {
                lower.push(domains.lower(j));
                upper.push(domains.upper(j));
            }
        }
        for i in 0..m {
            // Row `Σ a·x + s = rhs`: the slack bounds encode the sense.
            match matrix.row(i).op {
                CmpOp::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                CmpOp::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                CmpOp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        Self {
            matrix,
            objective,
            objective_constant,
            n,
            m,
            ncols,
            lower,
            upper,
            status: vec![ColStatus::Lower; ncols],
            basis: Vec::new(),
            x: vec![0.0; ncols],
            etas: Vec::new(),
            base_etas: 0,
            counters: Counters::default(),
            scratch: vec![0.0; m],
            pricing: Pricing::default(),
            weights: vec![1.0; ncols],
            row_weights: vec![1.0; m],
        }
    }

    /// Cold start: every structural nonbasic at a bound, slack basis
    /// (trivially factorized — the eta file is empty).
    fn cold(
        matrix: &'a SparseModel,
        objective: &'a [f64],
        objective_constant: f64,
        domains: &Domains,
        pricing: Pricing,
    ) -> Self {
        let mut k = Self::shell(matrix, objective, objective_constant, domains);
        k.pricing = pricing;
        k.reset_to_slack_basis();
        k
    }

    /// Warm start from a stored basis: statuses, basic set and eta file are
    /// restored, nonbasic values snap to the (possibly changed) bounds and
    /// the basic values are recomputed through the factorization. Devex
    /// weights start a fresh reference framework (all ones).
    fn warm(
        matrix: &'a SparseModel,
        objective: &'a [f64],
        objective_constant: f64,
        domains: &Domains,
        basis: &Basis,
        pricing: Pricing,
    ) -> Self {
        let mut k = Self::shell(matrix, objective, objective_constant, domains);
        k.pricing = pricing;
        k.status.copy_from_slice(&basis.status);
        k.basis = basis.basis.clone();
        k.etas = basis.etas.clone();
        k.base_etas = k.etas.len();
        k.snap_nonbasics();
        k.compute_basics();
        k
    }

    /// Phase-2 cost of a column (structural objective, zero on slacks).
    #[inline]
    fn cost(&self, j: usize) -> f64 {
        if j < self.n {
            self.objective[j]
        } else {
            0.0
        }
    }

    /// Whether a column may never leave its bound (degenerate box).
    #[inline]
    fn is_fixed_col(&self, j: usize) -> bool {
        self.upper[j] - self.lower[j] <= 0.0
    }

    /// Dot product of column `j` with a dense row-space vector.
    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            let (rows, vals) = self.matrix.col(j);
            rows.iter()
                .zip(vals)
                .map(|(&r, &a)| y[r as usize] * a)
                .sum()
        } else {
            y[j - self.n]
        }
    }

    /// Scatters column `j` into a dense vector (which must be zeroed).
    fn scatter_col(&self, j: usize, out: &mut [f64]) {
        if j < self.n {
            let (rows, vals) = self.matrix.col(j);
            for (&r, &a) in rows.iter().zip(vals) {
                out[r as usize] = a;
            }
        } else {
            out[j - self.n] = 1.0;
        }
    }

    /// FTRAN of column `j`: returns `B⁻¹·aⱼ` in the scratch vector
    /// (ownership is handed back so callers can keep borrowing `self`).
    fn ftran_col(&mut self, j: usize) -> Vec<f64> {
        let mut w = std::mem::take(&mut self.scratch);
        w.fill(0.0);
        self.scatter_col(j, &mut w);
        for eta in &self.etas {
            eta.ftran(&mut w);
        }
        w
    }

    /// BTRAN in place: `v ← B⁻ᵀ·v`.
    fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            eta.btran(v);
        }
    }

    /// Snaps every nonbasic column to the bound its status names.
    fn snap_nonbasics(&mut self) {
        for j in 0..self.ncols {
            match self.status[j] {
                ColStatus::Basic => {}
                ColStatus::Lower => {
                    self.x[j] = if self.lower[j].is_finite() {
                        self.lower[j]
                    } else {
                        0.0
                    }
                }
                ColStatus::Upper => {
                    self.x[j] = if self.upper[j].is_finite() {
                        self.upper[j]
                    } else {
                        0.0
                    }
                }
            }
        }
    }

    /// Recomputes every basic value from the nonbasic ones:
    /// `x_B = B⁻¹·(b − N·x_N)`.
    fn compute_basics(&mut self) {
        let mut t = std::mem::take(&mut self.scratch);
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = self.matrix.row(i).rhs;
        }
        for j in 0..self.ncols {
            if self.status[j] == ColStatus::Basic || self.x[j] == 0.0 {
                continue;
            }
            let xj = self.x[j];
            if j < self.n {
                let (rows, vals) = self.matrix.col(j);
                for (&r, &a) in rows.iter().zip(vals) {
                    t[r as usize] -= a * xj;
                }
            } else {
                t[j - self.n] -= xj;
            }
        }
        for eta in &self.etas {
            eta.ftran(&mut t);
        }
        for (i, &v) in t.iter().enumerate() {
            self.x[self.basis[i]] = v;
        }
        self.scratch = t;
    }

    /// Resets to the all-slack basis (identity factorization) with every
    /// structural nonbasic at a bound — the cold start, also the recovery
    /// point after a failed refactorization.
    fn reset_to_slack_basis(&mut self) {
        self.etas.clear();
        self.base_etas = 0;
        self.weights.fill(1.0);
        self.row_weights.fill(1.0);
        self.basis = (self.n..self.ncols).collect();
        for j in 0..self.n {
            // Start each structural at the bound its objective coefficient
            // prefers (a dual-feasible-leaning crash), which shortens phase
            // 2 without affecting phase 1.
            self.status[j] = if self.objective[j] < 0.0 && self.upper[j].is_finite() {
                ColStatus::Upper
            } else {
                ColStatus::Lower
            };
        }
        for j in self.n..self.ncols {
            self.status[j] = ColStatus::Basic;
        }
        self.snap_nonbasics();
        self.compute_basics();
    }

    /// Collapses the eta file: re-factorizes the current basis from scratch
    /// by Gauss-Jordan with partial pivoting (sparsest columns first).
    /// Returns `false` when the basis proves numerically singular, in which
    /// case the state is unchanged except for the cleared eta file and the
    /// caller must reset or abandon.
    fn refactorize(&mut self) -> bool {
        self.counters.refactorizations += 1;
        self.etas.clear();
        let mut cols: Vec<usize> = self.basis.clone();
        cols.sort_by_key(|&c| {
            let nnz = if c < self.n {
                self.matrix.col(c).0.len()
            } else {
                1
            };
            (nnz, c)
        });
        let mut assigned = vec![false; self.m];
        let mut new_basis = vec![usize::MAX; self.m];
        let mut w = std::mem::take(&mut self.scratch);
        let mut ok = true;
        for &c in &cols {
            w.fill(0.0);
            self.scatter_col(c, &mut w);
            for eta in &self.etas {
                eta.ftran(&mut w);
            }
            let mut best = PIVOT_TOL;
            let mut row = usize::MAX;
            for (i, &wi) in w.iter().enumerate() {
                if !assigned[i] && wi.abs() > best {
                    best = wi.abs();
                    row = i;
                }
            }
            if row == usize::MAX {
                ok = false;
                break;
            }
            assigned[row] = true;
            new_basis[row] = c;
            if let Some(eta) = make_eta(row, &w) {
                self.etas.push(eta);
            }
        }
        self.scratch = w;
        if !ok {
            self.etas.clear();
            self.base_etas = 0;
            return false;
        }
        self.basis = new_basis;
        self.base_etas = self.etas.len();
        self.compute_basics();
        true
    }

    /// Current objective value of the (possibly infeasible) basic point.
    fn objective_now(&self) -> f64 {
        self.objective
            .iter()
            .zip(&self.x)
            .map(|(c, v)| c * v)
            .sum::<f64>()
    }

    /// Sum and maximum of bound violations over the basic variables.
    fn infeasibility(&self) -> (f64, f64) {
        let mut total = 0.0;
        let mut max = 0.0f64;
        for &b in &self.basis {
            let v = self.x[b];
            let violation = if v < self.lower[b] {
                self.lower[b] - v
            } else if v > self.upper[b] {
                v - self.upper[b]
            } else {
                0.0
            };
            total += violation;
            max = max.max(violation);
        }
        (total, max)
    }

    /// One primal phase: phase 1 minimises the sum of basic bound
    /// violations (composite costs recomputed every iteration), phase 2
    /// minimises the true objective over a feasible basis.
    fn run_phase(&mut self, phase1: bool, max_pivots: u64, pivots: &mut u64) -> Inner {
        let mut y = vec![0.0f64; self.m];
        // Pivot-row scratch for the devex weight update.
        let mut rho = vec![0.0f64; self.m];
        // Degeneracy guard: Dantzig pricing switches to Bland's rule while
        // the phase measure (infeasibility sum in phase 1, objective in
        // phase 2) has made no progress for `STALL_LIMIT` iterations, and
        // back once it moves again. This keeps the anti-cycling cost
        // proportional to the stalled stretch instead of a huge fixed
        // iteration threshold.
        let mut last_measure = f64::INFINITY;
        let mut stall = 0u32;
        loop {
            // The budget counter charges every iteration — bound flips
            // included. A flip skips only the eta push; it still pays the
            // full pricing pass (BTRAN + an O(nnz) reduced-cost scan) and
            // the FTRAN of the entering column, which dominate an
            // iteration's cost. Only the *reported* pivot counters
            // distinguish flips from basis changes.
            if *pivots >= max_pivots {
                return Inner::IterationLimit;
            }
            if self.etas.len() >= self.base_etas + REFACTOR_EVERY && !self.refactorize() {
                return Inner::Stalled;
            }
            let (infeasibility_sum, infeasibility_max) = self.infeasibility();
            // The exit test must match the pricing below, which only sees
            // per-variable violations beyond `FEAS_TOL`: testing the *sum*
            // here would let several rounding-level violations add up past
            // the tolerance, price every composite cost to zero and
            // mislabel a feasible LP as infeasible.
            if phase1 && infeasibility_max <= FEAS_TOL {
                return Inner::Optimal;
            }
            let measure = if phase1 {
                infeasibility_sum
            } else {
                self.objective_now()
            };
            if measure < last_measure - 1e-9 {
                stall = 0;
                last_measure = measure;
            } else {
                stall += 1;
            }
            // Pricing: y = B⁻ᵀ·c_B, then reduced costs over the nonbasics.
            for (i, slot) in y.iter_mut().enumerate() {
                let b = self.basis[i];
                *slot = if phase1 {
                    let v = self.x[b];
                    if v < self.lower[b] - FEAS_TOL {
                        -1.0
                    } else if v > self.upper[b] + FEAS_TOL {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    self.cost(b)
                };
            }
            self.btran(&mut y);
            let use_bland = stall >= STALL_LIMIT;
            let devex = self.pricing == Pricing::Devex && !use_bland;
            let mut entering: Option<usize> = None;
            let mut best = COST_TOL;
            let mut best_score = 0.0f64;
            for j in 0..self.ncols {
                let status = self.status[j];
                if status == ColStatus::Basic || self.is_fixed_col(j) {
                    continue;
                }
                let c = if phase1 { 0.0 } else { self.cost(j) };
                let d = c - self.col_dot(j, &y);
                let violation = match status {
                    ColStatus::Lower => -d,
                    ColStatus::Upper => d,
                    ColStatus::Basic => unreachable!(),
                };
                if violation <= COST_TOL {
                    continue;
                }
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if devex {
                    // Reference-framework devex: the largest rate of
                    // objective change per unit of (approximate) edge
                    // length, instead of the raw reduced cost.
                    let score = violation * violation / self.weights[j];
                    if score > best_score {
                        best_score = score;
                        entering = Some(j);
                    }
                } else if violation > best {
                    entering = Some(j);
                    best = violation;
                }
            }
            let Some(q) = entering else {
                // No improving direction left. In phase 1 this means the
                // residual infeasibility is irreducible: the LP is
                // infeasible. In phase 2 the basis is optimal.
                return if phase1 {
                    Inner::Infeasible
                } else {
                    Inner::Optimal
                };
            };
            let dir = if self.status[q] == ColStatus::Lower {
                1.0
            } else {
                -1.0
            };
            let w = self.ftran_col(q);

            // Ratio test. The entering variable moves `t ≥ 0` along `dir`;
            // basic `i` changes by `−dir·w[i]·t`. A feasible basic blocks at
            // the bound it approaches; an infeasible one (phase 1) blocks
            // when it *reaches* the violated bound it is moving towards, and
            // never blocks when moving further away (that slope is already
            // priced into the composite costs).
            let mut t_best = self.upper[q] - self.lower[q];
            let mut leave: Option<usize> = None;
            let mut leave_to = 0.0f64;
            let mut best_piv = 0.0f64;
            for (i, &wi) in w.iter().enumerate() {
                // Same pivot-magnitude guard as the dual ratio test: a
                // blocking row with a near-zero entry would put that entry
                // on the diagonal of an eta and amplify rounding error by
                // its reciprocal.
                if wi.abs() <= PIVOT_TOL {
                    continue;
                }
                let delta = dir * wi;
                let b = self.basis[i];
                let xb = self.x[b];
                let (limit, target) = if delta > 0.0 {
                    // Basic decreases.
                    if xb < self.lower[b] - FEAS_TOL {
                        continue;
                    }
                    let tgt = if xb > self.upper[b] + FEAS_TOL {
                        self.upper[b]
                    } else {
                        self.lower[b]
                    };
                    if !tgt.is_finite() {
                        continue;
                    }
                    (((xb - tgt) / delta).max(0.0), tgt)
                } else {
                    // Basic increases.
                    if xb > self.upper[b] + FEAS_TOL {
                        continue;
                    }
                    let tgt = if xb < self.lower[b] - FEAS_TOL {
                        self.lower[b]
                    } else {
                        self.upper[b]
                    };
                    if !tgt.is_finite() {
                        continue;
                    }
                    (((tgt - xb) / -delta).max(0.0), tgt)
                };
                let replace = if limit < t_best - 1e-12 {
                    true
                } else if limit <= t_best + 1e-12 {
                    match leave {
                        None => limit < t_best,
                        Some(l) => {
                            if use_bland {
                                self.basis[i] < self.basis[l]
                            } else {
                                wi.abs() > best_piv
                            }
                        }
                    }
                } else {
                    false
                };
                if replace {
                    t_best = limit;
                    leave = Some(i);
                    leave_to = target;
                    best_piv = wi.abs();
                }
            }

            if t_best.is_infinite() {
                self.scratch = w;
                // Unbounded descent. In phase 1 the infeasibility sum is
                // bounded below by zero, so an unblocked ray can only be
                // numerical noise — treat it as a stall.
                return if phase1 {
                    Inner::Stalled
                } else {
                    Inner::Unbounded
                };
            }

            *pivots += 1;
            let t = t_best;
            match leave {
                None => {
                    self.counters.flips += 1;
                    // Bound flip: the entering column crosses its box and
                    // settles on the opposite bound; the basis is unchanged.
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            self.x[self.basis[i]] -= dir * t * wi;
                        }
                    }
                    if dir > 0.0 {
                        self.x[q] = self.upper[q];
                        self.status[q] = ColStatus::Upper;
                    } else {
                        self.x[q] = self.lower[q];
                        self.status[q] = ColStatus::Lower;
                    }
                }
                Some(r) => {
                    self.counters.primal += 1;
                    self.counters.attribute(self.pricing, use_bland);
                    if devex {
                        // Reference-framework update (Forrest–Goldfarb):
                        // the pivot row of the *old* basis rescales every
                        // nonbasic weight, the leaving column inherits the
                        // entering one's weight through the pivot element.
                        let alpha_rq = w[r];
                        let gamma_q = self.weights[q].max(1.0);
                        rho.fill(0.0);
                        rho[r] = 1.0;
                        self.btran(&mut rho);
                        let mut peak = 1.0f64;
                        for j in 0..self.ncols {
                            if j == q || self.status[j] == ColStatus::Basic || self.is_fixed_col(j)
                            {
                                continue;
                            }
                            let alpha_rj = self.col_dot(j, &rho);
                            if alpha_rj == 0.0 {
                                continue;
                            }
                            let ratio = alpha_rj / alpha_rq;
                            let candidate = ratio * ratio * gamma_q;
                            if candidate > self.weights[j] {
                                self.weights[j] = candidate;
                                peak = peak.max(candidate);
                            }
                        }
                        let leaving_weight = (gamma_q / (alpha_rq * alpha_rq)).max(1.0);
                        self.weights[self.basis[r]] = leaving_weight;
                        peak = peak.max(leaving_weight);
                        if peak > DEVEX_RESET {
                            self.weights.fill(1.0);
                        }
                    }
                    for (i, &wi) in w.iter().enumerate() {
                        if wi != 0.0 {
                            self.x[self.basis[i]] -= dir * t * wi;
                        }
                    }
                    let leaving = self.basis[r];
                    self.x[q] += dir * t;
                    self.x[leaving] = leave_to;
                    self.status[leaving] = if leave_to == self.lower[leaving] {
                        ColStatus::Lower
                    } else {
                        ColStatus::Upper
                    };
                    self.status[q] = ColStatus::Basic;
                    if let Some(eta) = make_eta(r, &w) {
                        self.etas.push(eta);
                    }
                    self.basis[r] = q;
                }
            }
            self.scratch = w;
        }
    }

    /// Cold two-phase primal solve, with a bounded restart from the slack
    /// basis if a refactorization ever fails.
    fn solve_two_phase(&mut self, max_pivots: u64, pivots: &mut u64) -> Inner {
        let mut restarts = 0u32;
        loop {
            match self.run_phase(true, max_pivots, pivots) {
                Inner::Optimal => {}
                Inner::Stalled if restarts < 2 => {
                    restarts += 1;
                    self.reset_to_slack_basis();
                    continue;
                }
                other => return other,
            }
            match self.run_phase(false, max_pivots, pivots) {
                Inner::Stalled if restarts < 2 => {
                    restarts += 1;
                    self.reset_to_slack_basis();
                    continue;
                }
                other => return other,
            }
        }
    }

    /// Bounded dual simplex: from a dual-feasible basis, drives the primal
    /// bound violations of the basic variables away. Used by the warm path
    /// after a child node changed variable bounds.
    fn run_dual(&mut self, max_pivots: u64, pivots: &mut u64) -> Inner {
        let mut rho = vec![0.0f64; self.m];
        let mut y = vec![0.0f64; self.m];
        let mut stalls = 0u32;
        // Degeneracy guard, mirroring `run_phase`: the dual objective (the
        // basic point's primal objective value) is non-decreasing along
        // dual pivots; a stretch without movement switches the leaving/
        // entering choices to Bland's rule until progress resumes.
        let mut last_measure = f64::INFINITY;
        let mut stall = 0u32;
        loop {
            // As in `run_phase`, the budget charges every iteration, flips
            // included — a dual iteration's cost is dominated by the
            // leaving/entering pricing (two BTRANs + an O(nnz) scan), which
            // a dual bound flip pays in full.
            if *pivots >= max_pivots {
                return Inner::IterationLimit;
            }
            if self.etas.len() >= self.base_etas + REFACTOR_EVERY && !self.refactorize() {
                return Inner::Stalled;
            }
            let measure = -self.objective_now();
            if measure < last_measure - 1e-9 {
                stall = 0;
                last_measure = measure;
            } else {
                stall += 1;
            }
            let use_bland = stall >= STALL_LIMIT;
            let devex = self.pricing == Pricing::Devex && !use_bland;
            // Leaving row: the basic variable with the largest bound
            // violation — devex-weighted in the default mode, raw under
            // Dantzig (first violating row under Bland).
            let mut leaving: Option<usize> = None;
            let mut worst = FEAS_TOL;
            let mut worst_score = 0.0f64;
            for i in 0..self.m {
                let b = self.basis[i];
                let v = self.x[b];
                let violation = if v < self.lower[b] {
                    self.lower[b] - v
                } else if v > self.upper[b] {
                    v - self.upper[b]
                } else {
                    0.0
                };
                if violation <= FEAS_TOL {
                    continue;
                }
                if use_bland {
                    leaving = Some(i);
                    break;
                }
                if devex {
                    let score = violation * violation / self.row_weights[i];
                    if score > worst_score {
                        worst_score = score;
                        leaving = Some(i);
                    }
                } else if violation > worst {
                    leaving = Some(i);
                    worst = violation;
                }
            }
            let Some(r) = leaving else {
                // Primal feasible and (by invariant) dual feasible: optimal.
                return Inner::Optimal;
            };
            let b_r = self.basis[r];
            let to_lower = self.x[b_r] < self.lower[b_r];
            let target = if to_lower {
                self.lower[b_r]
            } else {
                self.upper[b_r]
            };

            // ρ = B⁻ᵀ·e_r gives the pivot row; y = B⁻ᵀ·c_B the duals.
            rho.fill(0.0);
            rho[r] = 1.0;
            self.btran(&mut rho);
            for (i, slot) in y.iter_mut().enumerate() {
                *slot = self.cost(self.basis[i]);
            }
            self.btran(&mut y);

            // Dual ratio test: among nonbasic columns whose movement pushes
            // `x_B[r]` towards its violated bound, the smallest
            // |reduced cost| / |α| keeps every other reduced cost
            // dual-feasible after the pivot.
            let mut entering: Option<(usize, f64)> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..self.ncols {
                let status = self.status[j];
                if status == ColStatus::Basic || self.is_fixed_col(j) {
                    continue;
                }
                let alpha = self.col_dot(j, &rho);
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let dirj = if status == ColStatus::Lower {
                    1.0
                } else {
                    -1.0
                };
                // x_B[r] changes by −dirj·α per unit step of the entering
                // variable; it must move towards `target`.
                let movement = -dirj * alpha;
                if to_lower {
                    if movement <= 0.0 {
                        continue;
                    }
                } else if movement >= 0.0 {
                    continue;
                }
                let d = self.cost(j) - self.col_dot(j, &y);
                let dmag = match status {
                    ColStatus::Lower => d.max(0.0),
                    ColStatus::Upper => (-d).max(0.0),
                    ColStatus::Basic => unreachable!(),
                };
                let ratio = dmag / alpha.abs();
                // Bland mode keeps the min-ratio requirement (it guards
                // dual feasibility) but freezes ties on the first index
                // instead of the largest pivot.
                let replace = if ratio < best_ratio - 1e-12 {
                    true
                } else if use_bland {
                    false
                } else {
                    ratio <= best_ratio + 1e-12 && alpha.abs() > best_alpha
                };
                if replace {
                    best_ratio = ratio;
                    best_alpha = alpha.abs();
                    entering = Some((j, dirj));
                }
            }
            let Some((q, dirj)) = entering else {
                // The violated row admits no compensating column: the LP is
                // primal infeasible.
                return Inner::Infeasible;
            };

            let w = self.ftran_col(q);
            let alpha = w[r];
            if alpha.abs() <= PIVOT_TOL {
                // The FTRANed pivot disagrees with the priced one —
                // numerical drift. Refactorize and retry a bounded number
                // of times.
                self.scratch = w;
                stalls += 1;
                if stalls > 3 || !self.refactorize() {
                    return Inner::Stalled;
                }
                continue;
            }
            let t = ((self.x[b_r] - target) / (dirj * alpha)).max(0.0);

            *pivots += 1;
            let range = self.upper[q] - self.lower[q];
            if t > range + 1e-12 && range.is_finite() {
                self.counters.flips += 1;
                // Dual bound flip: the pivot would push the entering
                // variable past its opposite bound, so flip it across the
                // box instead and keep looking; the leaving row stays
                // infeasible (but strictly less so).
                for (i, &wi) in w.iter().enumerate() {
                    if wi != 0.0 {
                        self.x[self.basis[i]] -= dirj * range * wi;
                    }
                }
                self.x[q] = if dirj > 0.0 {
                    self.upper[q]
                } else {
                    self.lower[q]
                };
                self.status[q] = if dirj > 0.0 {
                    ColStatus::Upper
                } else {
                    ColStatus::Lower
                };
                self.scratch = w;
                continue;
            }

            self.counters.dual += 1;
            self.counters.attribute(self.pricing, use_bland);
            if devex {
                // Dual devex update off the FTRANed entering column (free —
                // it is already in hand): every row the pivot touches
                // inherits a rescaled weight through the pivot element.
                let gamma_r = self.row_weights[r].max(1.0);
                let mut peak = 1.0f64;
                for (i, &wi) in w.iter().enumerate() {
                    if i == r || wi == 0.0 {
                        continue;
                    }
                    let ratio = wi / alpha;
                    let candidate = ratio * ratio * gamma_r;
                    if candidate > self.row_weights[i] {
                        self.row_weights[i] = candidate;
                        peak = peak.max(candidate);
                    }
                }
                let pivot_weight = (gamma_r / (alpha * alpha)).max(1.0);
                self.row_weights[r] = pivot_weight;
                peak = peak.max(pivot_weight);
                if peak > DEVEX_RESET {
                    self.row_weights.fill(1.0);
                }
            }
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    self.x[self.basis[i]] -= dirj * t * wi;
                }
            }
            self.x[q] += dirj * t;
            self.x[b_r] = target;
            self.status[b_r] = if to_lower {
                ColStatus::Lower
            } else {
                ColStatus::Upper
            };
            self.status[q] = ColStatus::Basic;
            if let Some(eta) = make_eta(r, &w) {
                self.etas.push(eta);
            }
            self.basis[r] = q;
            self.scratch = w;
        }
    }

    /// Extracts the optimal solution from the current state.
    fn extract(&mut self, with_rc: bool) -> LpSolution {
        let mut values = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let v = if self.lower[j] <= self.upper[j] {
                self.x[j].max(self.lower[j]).min(self.upper[j])
            } else {
                self.x[j]
            };
            values.push(v);
        }
        let objective = self.objective_constant
            + self
                .objective
                .iter()
                .zip(&values)
                .map(|(c, v)| c * v)
                .sum::<f64>();
        let reduced_costs = with_rc.then(|| self.reduced_costs());
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
            pivots: self.counters.primal + self.counters.dual,
            primal_pivots: self.counters.primal,
            dual_pivots: self.counters.dual,
            bound_flips: self.counters.flips,
            refactorizations: self.counters.refactorizations,
            devex_pivots: self.counters.devex,
            dantzig_pivots: self.counters.dantzig,
            bland_pivots: self.counters.bland,
            reduced_costs,
        }
    }

    /// Reduced costs of the structural columns at optimality, split into
    /// per-variable up/down marginal costs by nonbasic status.
    fn reduced_costs(&mut self) -> ReducedCosts {
        let mut y = std::mem::take(&mut self.scratch);
        for (i, slot) in y.iter_mut().enumerate() {
            *slot = self.cost(self.basis[i]);
        }
        self.btran(&mut y);
        let mut up = vec![0.0f64; self.n];
        let mut down = vec![0.0f64; self.n];
        for j in 0..self.n {
            if self.upper[j] - self.lower[j] <= EPS {
                continue;
            }
            match self.status[j] {
                ColStatus::Basic => {}
                ColStatus::Lower => {
                    up[j] = (self.cost(j) - self.col_dot(j, &y)).max(0.0);
                }
                ColStatus::Upper => {
                    down[j] = (self.col_dot(j, &y) - self.cost(j)).max(0.0);
                }
            }
        }
        self.scratch = y;
        ReducedCosts { up, down }
    }

    /// Packages the current basis for reuse by descendants.
    fn into_basis(self, age: u32) -> Basis {
        let fingerprint =
            instance_fingerprint(self.matrix, self.objective, self.objective_constant);
        Basis {
            status: self.status,
            basis: self.basis,
            etas: self.etas,
            age,
            rows: self.m,
            vars: self.n,
            fingerprint,
        }
    }
}

/// Solves the LP `minimise Σ objective[j]·x[j] + objective_constant` subject
/// to the rows of `matrix` and the variable box described by `domains`.
///
/// `matrix` must reference variable indices smaller than `domains.len()`.
/// Integrality of the domains is ignored (this is the relaxation).
pub fn solve_lp(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> LpSolution {
    solve_lp_priced(
        matrix,
        objective,
        objective_constant,
        domains,
        max_pivots,
        Pricing::default(),
    )
}

/// [`solve_lp`] under an explicit [`Pricing`] rule.
pub fn solve_lp_priced(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
    pricing: Pricing,
) -> LpSolution {
    solve_cold(
        matrix,
        objective,
        objective_constant,
        domains,
        max_pivots,
        false,
        pricing,
    )
    .0
}

/// Warm-capable cold solve: like [`solve_lp`], but returns the optimal
/// [`Basis`] so descendant nodes can re-solve from it with the dual simplex
/// ([`resolve_with_basis`]), and the solution reports [`ReducedCosts`].
pub fn solve_lp_basis(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> (LpSolution, Option<Basis>) {
    solve_lp_basis_priced(
        matrix,
        objective,
        objective_constant,
        domains,
        max_pivots,
        Pricing::default(),
    )
}

/// [`solve_lp_basis`] under an explicit [`Pricing`] rule.
pub fn solve_lp_basis_priced(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
    pricing: Pricing,
) -> (LpSolution, Option<Basis>) {
    solve_cold(
        matrix,
        objective,
        objective_constant,
        domains,
        max_pivots,
        true,
        pricing,
    )
}

#[allow(clippy::too_many_arguments)]
fn solve_cold(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
    warm_capable: bool,
    pricing: Pricing,
) -> (LpSolution, Option<Basis>) {
    if domains.is_infeasible() {
        return (
            LpSolution::no_solution(LpStatus::Infeasible, Counters::default()),
            None,
        );
    }
    let mut kernel = Kernel::cold(matrix, objective, objective_constant, domains, pricing);
    let mut pivots = 0u64;
    let inner = kernel.solve_two_phase(max_pivots, &mut pivots);
    match inner {
        Inner::Optimal => {
            let solution = kernel.extract(warm_capable);
            let basis = warm_capable.then(|| kernel.into_basis(0));
            (solution, basis)
        }
        Inner::Infeasible => (
            LpSolution::no_solution(LpStatus::Infeasible, kernel.counters),
            None,
        ),
        Inner::Unbounded => (
            LpSolution::no_solution(LpStatus::Unbounded, kernel.counters),
            None,
        ),
        Inner::IterationLimit | Inner::Stalled => (
            LpSolution::no_solution(LpStatus::IterationLimit, kernel.counters),
            None,
        ),
    }
}

/// Re-solves the LP of `matrix` under the changed bounds of `domains` with
/// the **bounded dual simplex**, starting from a stored optimal [`Basis`].
///
/// Because bounds are implicit (never rows), *any* bound change — tightened
/// or relaxed — leaves the stored basis dual feasible; the reuse
/// preconditions are that the matrix *and the objective* are exactly the
/// ones the basis was factorized under (dual feasibility is a statement
/// about the costs). Returns `None` when the fingerprint disagrees (the
/// branch-and-bound solver rebuilt the row set with cuts), in which case
/// the caller should fall back to a cold solve. Otherwise returns the
/// solution and, at optimality, the re-solved basis (age incremented) for
/// further descendants.
pub fn resolve_with_basis(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    basis: &Basis,
    domains: &Domains,
    max_pivots: u64,
) -> Option<(LpSolution, Option<Basis>)> {
    resolve_with_basis_priced(
        matrix,
        objective,
        objective_constant,
        basis,
        domains,
        max_pivots,
        Pricing::default(),
    )
}

/// [`resolve_with_basis`] under an explicit [`Pricing`] rule (the devex row
/// weights of the dual path start a fresh reference framework per re-solve).
#[allow(clippy::too_many_arguments)]
pub fn resolve_with_basis_priced(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    basis: &Basis,
    domains: &Domains,
    max_pivots: u64,
    pricing: Pricing,
) -> Option<(LpSolution, Option<Basis>)> {
    if basis.vars != domains.len()
        || basis.vars != matrix.num_vars()
        || basis.rows != matrix.num_rows()
        || basis.fingerprint != instance_fingerprint(matrix, objective, objective_constant)
    {
        return None;
    }
    if domains.is_infeasible() {
        return Some((
            LpSolution::no_solution(LpStatus::Infeasible, Counters::default()),
            None,
        ));
    }
    let mut kernel = Kernel::warm(
        matrix,
        objective,
        objective_constant,
        domains,
        basis,
        pricing,
    );
    let mut pivots = 0u64;
    let inner = kernel.run_dual(max_pivots, &mut pivots);
    match inner {
        Inner::Optimal => {
            let solution = kernel.extract(true);
            let next = kernel.into_basis(basis.age + 1);
            Some((solution, Some(next)))
        }
        Inner::Infeasible => Some((
            LpSolution::no_solution(LpStatus::Infeasible, kernel.counters),
            None,
        )),
        Inner::Unbounded => Some((
            LpSolution::no_solution(LpStatus::Unbounded, kernel.counters),
            None,
        )),
        Inner::IterationLimit | Inner::Stalled => Some((
            LpSolution::no_solution(LpStatus::IterationLimit, kernel.counters),
            None,
        )),
    }
}

/// One term of a Gomory row scan: nonbasic column, its shifted tableau
/// coefficient, the global bound it was shifted to, whether the shift runs
/// down from the upper bound, and whether the shifted variable is integral.
struct GomoryTerm {
    col: usize,
    shifted: f64,
    bound: f64,
    from_upper: bool,
    integral: bool,
}

impl Kernel<'_> {
    /// Derives the Gomory mixed-integer cut of tableau row `r`, returned in
    /// structural space as `Σ coeff·x ≤ rhs`, or `None` if the row yields
    /// no usable cut (integral shifted constant, unbounded shift, noise-only
    /// coefficients, or excessive dynamism).
    ///
    /// The derivation works on the shifted row `x_b + Σ α'_j·t_j = β'`
    /// where every nonbasic is re-expressed as a distance `t_j ≥ 0` from a
    /// **globally valid** bound (`global`, the root box — not the node box
    /// this kernel was solved under). Shifting to root bounds keeps the cut
    /// valid for the whole tree, so node-separated Gomory cuts can enter
    /// the shared pool: variables fixed by branching simply carry a nonzero
    /// shifted value `t_j` instead of zero, which only moves `β'`. With
    /// `f0 = frac(β')`, the mixed-integer Gomory inequality is
    /// `Σ g(α'_j)·t_j ≥ f0`, where integral terms take
    /// `g = f_j` if `f_j ≤ f0` else `f0·(1−f_j)/(1−f0)` (with
    /// `f_j = frac(α'_j)`) and continuous terms (slacks included) take
    /// `g = α'` if `α' > 0` else `f0·(−α')/(1−f0)`. Un-shifting through the
    /// bounds and the slack definitions turns it into a `≤` row over the
    /// structural variables.
    fn gomory_from_row(
        &self,
        r: usize,
        global: &Domains,
        integral: &[bool],
        rho: &mut [f64],
    ) -> Option<(Vec<(usize, f64)>, f64)> {
        let b = self.basis[r];
        rho.fill(0.0);
        rho[r] = 1.0;
        self.btran(rho);

        // Pass 1: shifted coefficients and the shifted row constant β'.
        let mut terms: Vec<GomoryTerm> = Vec::new();
        let mut beta = self.x[b];
        for j in 0..self.ncols {
            if self.status[j] == ColStatus::Basic {
                continue;
            }
            let alpha = self.col_dot(j, rho);
            if alpha.abs() <= DROP_TOL {
                continue;
            }
            let from_upper = self.status[j] == ColStatus::Upper;
            // Shift to the *root* bound on the status side; slack bounds
            // come from the row sense and never tighten per node.
            let bound = if j < self.n {
                if from_upper {
                    global.upper(j)
                } else {
                    global.lower(j)
                }
            } else if from_upper {
                self.upper[j]
            } else {
                self.lower[j]
            };
            if !bound.is_finite() {
                return None;
            }
            let shifted = if from_upper { -alpha } else { alpha };
            // t_j at the current point (nonzero when branching moved the
            // node bound off the root bound); folds into β'.
            let t_now = if from_upper {
                bound - self.x[j]
            } else {
                self.x[j] - bound
            };
            beta += shifted * t_now;
            let int_term = j < self.n
                && integral.get(j).copied().unwrap_or(false)
                && (bound - bound.round()).abs() <= FEAS_TOL;
            terms.push(GomoryTerm {
                col: j,
                shifted,
                bound,
                from_upper,
                integral: int_term,
            });
        }
        let f0 = beta - beta.floor();
        if !(GOMORY_MIN_FRAC..=1.0 - GOMORY_MIN_FRAC).contains(&f0) {
            return None;
        }

        // Pass 2: GMI coefficients, un-shifted into `Σ coeff·x ≥ rhs_ge`.
        let mut coeff = vec![0.0f64; self.n];
        let mut rhs_ge = f0;
        for term in &terms {
            let g = if term.integral {
                let fj = term.shifted - term.shifted.floor();
                if fj <= f0 {
                    fj
                } else {
                    f0 * (1.0 - fj) / (1.0 - f0)
                }
            } else if term.shifted > 0.0 {
                term.shifted
            } else {
                f0 * (-term.shifted) / (1.0 - f0)
            };
            if g == 0.0 {
                continue;
            }
            if term.col < self.n {
                // t = x − l or u − x.
                if term.from_upper {
                    coeff[term.col] -= g;
                    rhs_ge -= g * term.bound;
                } else {
                    coeff[term.col] += g;
                    rhs_ge += g * term.bound;
                }
            } else {
                // Le slack at lower 0: t = rhs_i − a·x; Ge slack at upper
                // 0: t = a·x − rhs_i.
                let row = self.matrix.row(term.col - self.n);
                let sign = if term.from_upper { 1.0 } else { -1.0 };
                for (col, a) in row.terms() {
                    coeff[col] += sign * g * a;
                }
                rhs_ge += sign * g * row.rhs;
            }
        }

        // Flip to the pool's `≤` orientation; noise terms are dropped by
        // relaxing the rhs with their worst-case contribution over the root
        // box, so validity is preserved exactly.
        let mut cut: Vec<(usize, f64)> = Vec::new();
        let mut rhs_le = -rhs_ge;
        let mut max_abs = 0.0f64;
        let mut min_abs = f64::INFINITY;
        for (j, &c) in coeff.iter().enumerate() {
            let v = -c;
            if v == 0.0 {
                continue;
            }
            if v.abs() <= 1e-9 {
                let worst = (v * global.lower(j)).min(v * global.upper(j));
                if !worst.is_finite() {
                    return None;
                }
                rhs_le -= worst;
                continue;
            }
            max_abs = max_abs.max(v.abs());
            min_abs = min_abs.min(v.abs());
            cut.push((j, v));
        }
        if cut.is_empty() || max_abs / min_abs > GOMORY_MAX_DYNAMISM {
            return None;
        }
        // A hair of slack absorbs accumulated float error: a Gomory cut
        // must never shave the integer optimum by a rounding artifact.
        rhs_le += 1e-7 * (1.0 + rhs_le.abs());
        Some((cut, rhs_le))
    }
}

/// Reads Gomory mixed-integer cuts off the fractional rows of an optimal
/// basis, returned in structural space as `(terms, rhs)` rows meaning
/// `Σ terms·x ≤ rhs`.
///
/// `domains` is the box the basis was solved under (the node box);
/// `global` is the root box the cuts must stay valid over — pass the same
/// reference twice when separating at the root. `integral[j]` marks the
/// integer-constrained structurals. Rows whose basic variable is an
/// integral structural with fractional value are scanned most-fractional
/// first, and at most `max_cuts` cuts are returned. The basis must match
/// the instance (same fingerprint discipline as [`resolve_with_basis`]);
/// on any mismatch the result is empty rather than wrong.
#[allow(clippy::too_many_arguments)]
pub fn gomory_cuts(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    basis: &Basis,
    domains: &Domains,
    global: &Domains,
    integral: &[bool],
    max_cuts: usize,
) -> Vec<(Vec<(usize, f64)>, f64)> {
    if max_cuts == 0
        || integral.len() != domains.len()
        || global.len() != domains.len()
        || basis.vars != domains.len()
        || basis.vars != matrix.num_vars()
        || basis.rows != matrix.num_rows()
        || basis.fingerprint != instance_fingerprint(matrix, objective, objective_constant)
        || domains.is_infeasible()
    {
        return Vec::new();
    }
    let kernel = Kernel::warm(
        matrix,
        objective,
        objective_constant,
        domains,
        basis,
        Pricing::default(),
    );
    let mut candidates: Vec<(f64, usize)> = Vec::new();
    for r in 0..kernel.m {
        let b = kernel.basis[r];
        if b >= kernel.n || !integral[b] {
            continue;
        }
        let frac = kernel.x[b] - kernel.x[b].floor();
        if !(GOMORY_MIN_FRAC..=1.0 - GOMORY_MIN_FRAC).contains(&frac) {
            continue;
        }
        candidates.push(((frac - 0.5).abs(), r));
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut cuts = Vec::new();
    let mut rho = vec![0.0f64; kernel.m];
    for &(_, r) in &candidates {
        if cuts.len() >= max_cuts {
            break;
        }
        if let Some(cut) = kernel.gomory_from_row(r, global, integral, &mut rho) {
            cuts.push(cut);
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn relax(model: &Model) -> (SparseModel, Vec<f64>, f64, Domains) {
        let objective: Vec<f64> = model.vars().iter().map(|v| v.objective).collect();
        let constant = model.objective().offset();
        (
            SparseModel::from_model(model),
            objective,
            constant,
            Domains::from_model(model),
        )
    }

    #[test]
    fn simple_minimisation() {
        // min x + y  s.t.  x + y >= 1,  0 <= x,y <= 1   => objective 1
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn maximisation_via_negated_costs() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3  (x,y >= 0)
        // optimum x=2, y=2 -> 10; we solve min of the negation.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 4.0, "cap");
        m.set_objective([(x, -3.0), (y, -2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y  s.t.  x + y = 5, x <= 3, y <= 4
        // optimum x=3, y=2 -> 12
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 5.0, "sum");
        m.set_objective([(x, 2.0), (y, 3.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_lp() {
        // x >= 2 with x <= 1 is infeasible.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_geq([(x, 1.0)], 2.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn fixed_variables_stay_at_their_value() {
        // min x + y s.t. x + y >= 3 with y fixed at 2 => x = 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 5.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, mut dom) = relax(&m);
        dom.fix(y.index(), 2.0);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn relaxation_of_binary_knapsack_is_fractional() {
        // max 6a + 5b + 4c st 3a + 2b + 2c <= 4 (binaries). We simply assert
        // the relaxation is at least as good as the best integral solution
        // (b + c = 9) and the solve succeeds.
        let mut m = Model::new("m");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.set_objective([(a, -6.0), (b, -5.0), (c, -4.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective <= -9.0 + 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // -x <= -1  (i.e. x >= 1) with x in [0, 2], min x => 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.add_leq([(x, -1.0)], -1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 2.0, "a");
        m.add_leq([(x, 2.0), (y, 2.0)], 4.0, "b");
        m.add_leq([(x, 1.0)], 2.0, "c");
        m.add_leq([(y, 1.0)], 2.0, "d");
        m.set_objective([(x, -1.0), (y, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_constant_rows_are_checked() {
        // A model whose only row mentions no free variable must still be
        // feasibility-checked against the fixed values.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 4.0);
        m.add_geq([(x, 1.0)], 3.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, mut dom) = relax(&m);
        dom.fix(x.index(), 1.0); // violates x >= 3
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Infeasible);
        let (rows, obj, k, mut dom) = relax(&m);
        dom.fix(x.index(), 3.5);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.5).abs() < 1e-6);
    }

    #[test]
    fn unbounded_lp_is_detected() {
        // A genuinely unbounded ray needs an infinite variable bound — the
        // BIST models never have one, but the kernel must still label the
        // case instead of looping: min -x with x in [0, +inf) and a
        // non-binding row.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Unbounded);
        assert!(sol.values.is_empty());
        // The same box with a finite ceiling solves at that ceiling.
        let mut m2 = Model::new("m2");
        let x2 = m2.add_continuous("x", 0.0, 1e12);
        m2.add_geq([(x2, 1.0)], 1.0, "c");
        m2.set_objective([(x2, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m2);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1e12).abs() < 1.0);
    }

    #[test]
    fn refactorization_engages_on_long_solves() {
        // A chain model long enough to force more pivots than the eta-file
        // limit, so at least one mid-solve refactorization must happen.
        let mut m = Model::new("chain");
        let vars: Vec<_> = (0..120)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 10.0))
            .collect();
        for w in vars.windows(2) {
            m.add_geq([(w[0], 1.0), (w[1], 1.0)], 1.0, "link");
        }
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + 0.01 * (i % 7) as f64))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 100_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.pivots > 0);
        assert_eq!(sol.pivots, sol.primal_pivots + sol.dual_pivots);
        assert_eq!(sol.dual_pivots, 0);
    }

    // ---- warm-start / dual simplex ----

    #[test]
    fn warm_capable_solve_matches_cold_solve() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 3.0), (y, 2.0), (z, 2.0)], 4.0, "cap");
        m.add_geq([(x, 1.0), (z, 1.0)], 1.0, "c");
        m.set_objective([(x, -6.0), (y, -5.0), (z, -4.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let cold = solve_lp(&rows, &obj, k, &dom, 10_000);
        let (warm, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(cold.status, LpStatus::Optimal);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((cold.objective - warm.objective).abs() < 1e-9);
        assert!(basis.is_some());
        assert!(warm.reduced_costs.is_some());
    }

    #[test]
    fn dual_resolve_after_fixing_matches_cold() {
        // Fix each binary to each value in turn; the dual re-solve from the
        // root basis must agree with a cold solve of the child.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_leq(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            2.0,
            "cap",
        );
        m.add_geq([(vars[0], 1.0), (vars[2], 1.0)], 1.0, "need");
        m.set_objective(
            [
                (vars[0], -3.0),
                (vars[1], -5.0),
                (vars[2], -4.0),
                (vars[3], -2.0),
            ],
            Sense::Minimize,
        );
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        for j in 0..4 {
            for value in [0.0, 1.0] {
                let mut child = dom.clone();
                assert!(child.fix(j, value));
                let cold = solve_lp(&rows, &obj, k, &child, 10_000);
                let (warm, _) =
                    resolve_with_basis(&rows, &obj, k, &basis, &child, 10_000).expect("compatible");
                assert_eq!(warm.status, cold.status, "x{j} := {value}");
                if warm.status == LpStatus::Optimal {
                    assert!(
                        (warm.objective - cold.objective).abs() < 1e-6,
                        "x{j} := {value}: warm {} vs cold {}",
                        warm.objective,
                        cold.objective
                    );
                    assert_eq!(warm.pivots, warm.dual_pivots + warm.primal_pivots);
                    assert_eq!(warm.primal_pivots, 0, "warm path is dual-only");
                }
            }
        }
    }

    #[test]
    fn dual_resolve_detects_child_infeasibility() {
        // x + y >= 1 with both fixed to 0 is infeasible.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        let mut child = dom.clone();
        assert!(child.fix(x.index(), 0.0));
        assert!(child.fix(y.index(), 0.0));
        let (warm, next) =
            resolve_with_basis(&rows, &obj, k, &basis, &child, 10_000).expect("compatible");
        assert_eq!(warm.status, LpStatus::Infeasible);
        assert!(next.is_none());
    }

    #[test]
    fn dual_resolve_chains_across_generations() {
        // Tighten bounds one variable at a time, re-solving from the
        // previous basis each step, and compare against cold solves.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..5)
            .map(|i| m.add_integer(format!("x{i}"), 0, 3))
            .collect();
        m.add_leq(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            7.0,
            "cap",
        );
        m.add_geq([(vars[0], 1.0), (vars[1], 1.0)], 2.0, "need");
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, -((i + 1) as f64)))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut basis = basis.unwrap();
        let mut domains = dom.clone();
        for (step, &(j, lo, hi)) in [(4usize, 0.0, 1.0), (3, 1.0, 3.0), (0, 1.0, 1.0)]
            .iter()
            .enumerate()
        {
            domains.tighten_lower(j, lo);
            domains.tighten_upper(j, hi);
            let cold = solve_lp(&rows, &obj, k, &domains, 10_000);
            let (warm, next) =
                resolve_with_basis(&rows, &obj, k, &basis, &domains, 10_000).expect("compatible");
            assert_eq!(warm.status, cold.status, "step {step}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "step {step}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = next.expect("optimal resolve returns a basis");
            assert_eq!(basis.age(), step as u32 + 1);
        }
    }

    #[test]
    fn resolve_handles_relaxed_bounds_without_rejection() {
        // Bounds are implicit, so a *relaxed* child box is just as
        // re-solvable as a tightened one — the old bound-row kernel had to
        // reject this case.
        let mut m = Model::new("m");
        let x = m.add_integer("x", 1, 3);
        m.add_leq([(x, 1.0)], 2.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (_, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        let basis = basis.unwrap();
        let mut m2 = Model::new("m2");
        m2.add_integer("x", 0, 3);
        let relaxed = Domains::from_model(&m2);
        let (warm, _) =
            resolve_with_basis(&rows, &obj, k, &basis, &relaxed, 10_000).expect("compatible");
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - 0.0).abs() < 1e-6);
    }

    #[test]
    fn resolve_rejects_a_mismatched_matrix() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_leq([(x, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (_, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        let basis = basis.unwrap();
        // A matrix with an extra row (a rebuilt cut pool) must be rejected.
        let mut m2 = Model::new("m2");
        let x2 = m2.add_binary("x");
        m2.add_leq([(x2, 1.0)], 1.0, "c");
        m2.add_leq([(x2, 1.0)], 2.0, "cut");
        let (rows2, obj2, k2, dom2) = relax(&m2);
        assert!(resolve_with_basis(&rows2, &obj2, k2, &basis, &dom2, 10_000).is_none());
    }

    #[test]
    fn resolve_rejects_a_changed_objective() {
        // Dual feasibility is a statement about the costs: a basis built
        // under one objective must not warm-start a solve under another.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (_, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        let basis = basis.unwrap();
        let flipped: Vec<f64> = obj.iter().map(|c| -c).collect();
        assert!(resolve_with_basis(&rows, &flipped, k, &basis, &dom, 10_000).is_none());
        // A changed constant is part of the instance too.
        assert!(resolve_with_basis(&rows, &obj, k + 1.0, &basis, &dom, 10_000).is_none());
        // The unchanged instance still re-solves.
        assert!(resolve_with_basis(&rows, &obj, k, &basis, &dom, 10_000).is_some());
    }

    #[test]
    fn reduced_costs_identify_bound_variables() {
        // min x + 2y s.t. x + y >= 1: optimum x=1, y=0. y is nonbasic at its
        // lower bound with positive reduced cost (2 - 1 = 1 after pricing).
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (sol, _) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        let rc = sol.reduced_costs.expect("warm path reports reduced costs");
        assert!((sol.values[y.index()]).abs() < 1e-6);
        assert!(
            rc.up[y.index()] > 0.5,
            "y at lower bound should have positive up-cost, got {}",
            rc.up[y.index()]
        );
    }

    #[test]
    fn bound_moves_are_flips_not_pivots() {
        // 20 zero-cost binaries covering `Σ x >= 19`: the crash start puts
        // every variable at its lower bound, and phase 1 must walk almost
        // all of them across their boxes to cover the row. With implicit
        // bounds each of those moves is a *bound flip* (the box step of 1
        // beats the slack's ratio of 19), not a pivot — the dense bound-row
        // kernel needed a real pivot per bound move.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..20)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        m.add_geq(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            19.0,
            "cover",
        );
        m.set_objective([(vars[0], 0.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            sol.bound_flips >= 18,
            "expected bound flips, got {} (pivots {})",
            sol.bound_flips,
            sol.pivots
        );
        assert!(
            sol.pivots <= 2,
            "bound moves must not consume pivots, spent {}",
            sol.pivots
        );
        // The crash start is also load-bearing: a variable whose objective
        // prefers its upper bound starts there, so a loose maximisation
        // solves with no simplex work at all.
        let mut m2 = Model::new("m2");
        let y = m2.add_continuous("y", 0.0, 5.0);
        m2.add_leq([(y, 1.0)], 100.0, "loose");
        m2.set_objective([(y, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m2);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 5.0).abs() < 1e-9);
        assert_eq!(sol.pivots + sol.bound_flips, 0, "crash start is optimal");
    }

    #[test]
    fn gomory_cut_matches_the_hand_derivation() {
        // max x1 + x2  s.t.  x1 + x2 <= 1.5,  x1, x2 binary.
        //
        // The LP optimum sits at x1 + x2 = 1.5 with one variable basic and
        // fractional (β' = 0.5 after shifting the nonbasic integral to its
        // bound) and the other nonbasic at its *upper* bound. Deriving the
        // mixed-integer Gomory cut of that row by hand:
        //
        //   basic row      x_B − t_other + t_s = 0.5        (t_j ≥ 0 shifted)
        //   f0 = 0.5
        //   t_other  integral, α = −1, frac(α) = 0   → coefficient 0
        //   t_s      continuous slack, α = 1 ≥ 0     → coefficient α = 1
        //
        // so the cut is `s ≥ f0 = 0.5`; substituting the slack
        // `s = 1.5 − x1 − x2` of the ≤-row gives `x1 + x2 ≤ 1` — exactly the
        // integer hull facet.
        let mut m = Model::new("gmi");
        let x1 = m.add_binary("x1");
        let x2 = m.add_binary("x2");
        m.add_leq([(x1, 1.0), (x2, 1.0)], 1.5, "cap");
        m.set_objective([(x1, -1.0), (x2, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (sol, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-9);
        let basis = basis.expect("optimal basis");
        let cuts = gomory_cuts(&rows, &obj, k, &basis, &dom, &dom, &[true, true], 8);
        assert_eq!(cuts.len(), 1, "exactly one fractional row");
        let (terms, rhs) = &cuts[0];
        let mut dense = [0.0f64; 2];
        for &(j, a) in terms {
            dense[j] = a;
        }
        // The implementation scales the cut so comparing term-by-term needs
        // the normalised form: divide through by the x1 coefficient.
        assert!(dense[0].abs() > 1e-9, "cut must involve x1");
        let scale = dense[0];
        assert!(
            (dense[1] / scale - 1.0).abs() < 1e-6,
            "hand derivation gives equal coefficients, got {dense:?}"
        );
        assert!(
            (rhs / scale - 1.0).abs() < 1e-6,
            "hand derivation gives rhs 1, got {} (scale {scale})",
            rhs / scale
        );
        // And the cut does exactly what it should: kills the fractional LP
        // point, keeps every integer point.
        let lp_activity = dense[0] * sol.values[0] + dense[1] * sol.values[1];
        assert!(lp_activity > rhs + 1e-4, "cut must cut off the LP optimum");
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0)] {
            assert!(
                dense[0] * a + dense[1] * b <= rhs + 1e-9,
                "({a},{b}) cut off"
            );
        }
    }

    #[test]
    fn gomory_cuts_reject_a_stale_basis() {
        // A basis fingerprinted against different row data must be refused:
        // deriving a cut from a stale tableau would produce garbage.
        let mut m = Model::new("gmi-stale");
        let x1 = m.add_binary("x1");
        let x2 = m.add_binary("x2");
        m.add_leq([(x1, 1.0), (x2, 1.0)], 1.5, "cap");
        m.set_objective([(x1, -1.0), (x2, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (sol, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        let basis = basis.expect("optimal basis");

        let mut other = Model::new("gmi-other");
        let y1 = other.add_binary("y1");
        let y2 = other.add_binary("y2");
        other.add_leq([(y1, 2.0), (y2, 1.0)], 2.5, "cap");
        other.set_objective([(y1, -1.0), (y2, -1.0)], Sense::Minimize);
        let (other_rows, other_obj, other_k, other_dom) = relax(&other);
        let cuts = gomory_cuts(
            &other_rows,
            &other_obj,
            other_k,
            &basis,
            &other_dom,
            &other_dom,
            &[true, true],
            8,
        );
        assert!(cuts.is_empty(), "stale basis must yield no cuts");
    }
}
