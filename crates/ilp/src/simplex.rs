//! Dense two-phase primal simplex for the LP relaxation.
//!
//! The branch-and-bound solver uses this module to compute dual bounds and to
//! finish off nodes whose integral variables are all fixed but which still
//! contain continuous variables. The implementation is a deliberately simple
//! dense tableau method: every variable of the BIST formulations is bounded,
//! the models are small by LP standards (a few thousand rows at most) and
//! robustness matters more than raw speed, because the exactness claim of the
//! paper rests on the solver never mislabelling a suboptimal design as
//! optimal.
//!
//! Variables are shifted so their lower bound is zero and finite upper bounds
//! are expressed as explicit rows; fixed variables are substituted out before
//! the tableau is built, which keeps relaxations small deep in the
//! branch-and-bound tree.

use crate::model::CmpOp;
use crate::propagate::Domains;
use crate::sparse::SparseModel;
use crate::EPS;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution within the variable bounds.
    Infeasible,
    /// The objective is unbounded below (for minimisation).
    Unbounded,
    /// The pivot limit was reached before convergence.
    IterationLimit,
}

/// Result of [`solve_lp`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (minimisation), meaningful when `status` is `Optimal`.
    pub objective: f64,
    /// Values of the *original* model variables (fixed variables keep their
    /// fixed value). Empty unless `status` is `Optimal`.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub pivots: u64,
}

impl LpSolution {
    fn no_solution(status: LpStatus, pivots: u64) -> Self {
        Self {
            status,
            objective: f64::INFINITY,
            values: Vec::new(),
            pivots,
        }
    }
}

/// Solves the LP `minimise Σ objective[j]·x[j] + objective_constant` subject
/// to the rows of `matrix` and the variable box described by `domains`.
///
/// `matrix` must reference variable indices smaller than `domains.len()`.
/// Integrality of the domains is ignored (this is the relaxation).
pub fn solve_lp(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> LpSolution {
    let n_orig = domains.len();
    debug_assert_eq!(objective.len(), n_orig);

    // Map original variables to LP columns, substituting fixed variables.
    let mut col_of = vec![usize::MAX; n_orig];
    let mut orig_of_col = Vec::new();
    for (j, slot) in col_of.iter_mut().enumerate() {
        if !domains.is_fixed(j) {
            *slot = orig_of_col.len();
            orig_of_col.push(j);
        }
    }
    let n = orig_of_col.len();

    // Shifted objective constant: every variable contributes c_j · lower_j
    // (fixed variables have lower == upper).
    let mut obj_shift = objective_constant;
    for (j, &c) in objective.iter().enumerate() {
        obj_shift += c * domains.lower(j);
    }
    let costs: Vec<f64> = orig_of_col.iter().map(|&j| objective[j]).collect();

    // Build normalised rows over the free columns:  Σ a·x'  op  b
    struct NormRow {
        terms: Vec<(usize, f64)>,
        op: CmpOp,
        rhs: f64,
    }
    let mut norm_rows: Vec<NormRow> = Vec::new();
    for row in matrix.rows() {
        let mut rhs = row.rhs;
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for (j, a) in row.terms() {
            // every variable contributes a·lower as a constant shift
            rhs -= a * domains.lower(j);
            if !domains.is_fixed(j) {
                terms.push((col_of[j], a));
            } else {
                // fixed at lower == upper, already folded into rhs via lower
            }
        }
        if terms.is_empty() {
            let ok = match row.op {
                CmpOp::Le => 0.0 <= rhs + EPS,
                CmpOp::Ge => 0.0 >= rhs - EPS,
                CmpOp::Eq => rhs.abs() <= EPS,
            };
            if !ok {
                return LpSolution::no_solution(LpStatus::Infeasible, 0);
            }
            continue;
        }
        norm_rows.push(NormRow {
            terms,
            op: row.op,
            rhs,
        });
    }
    // Upper bound rows for the free columns.
    for (col, &j) in orig_of_col.iter().enumerate() {
        let range = domains.upper(j) - domains.lower(j);
        norm_rows.push(NormRow {
            terms: vec![(col, 1.0)],
            op: CmpOp::Le,
            rhs: range,
        });
    }

    let m = norm_rows.len();
    if n == 0 {
        return LpSolution {
            status: LpStatus::Optimal,
            objective: obj_shift,
            values: (0..n_orig).map(|j| domains.lower(j)).collect(),
            pivots: 0,
        };
    }

    // Count auxiliary columns: slack/surplus per inequality, artificials for
    // >= and = rows (after rhs sign normalisation).
    let mut total_cols = n;
    let mut row_aux: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(m); // (slack col, artificial col)
    let mut flipped: Vec<bool> = Vec::with_capacity(m);
    for row in &norm_rows {
        let flip = row.rhs < 0.0;
        flipped.push(flip);
        let op = effective_op(row.op, flip);
        let slack = match op {
            CmpOp::Le | CmpOp::Ge => {
                let c = total_cols;
                total_cols += 1;
                Some(c)
            }
            CmpOp::Eq => None,
        };
        let artificial = match op {
            CmpOp::Le => None,
            CmpOp::Ge | CmpOp::Eq => {
                let c = total_cols;
                total_cols += 1;
                Some(c)
            }
        };
        row_aux.push((slack, artificial));
    }

    // Dense tableau: m rows x (total_cols + 1), last column is the rhs.
    let width = total_cols + 1;
    let mut tab = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    let mut is_artificial = vec![false; total_cols];

    for (i, row) in norm_rows.iter().enumerate() {
        let sign = if flipped[i] { -1.0 } else { 1.0 };
        for &(c, a) in &row.terms {
            tab[i * width + c] += sign * a;
        }
        tab[i * width + total_cols] = sign * row.rhs;
        let op = effective_op(row.op, flipped[i]);
        let (slack, artificial) = row_aux[i];
        match op {
            CmpOp::Le => {
                let s = slack.expect("le row has slack");
                tab[i * width + s] = 1.0;
                basis[i] = s;
            }
            CmpOp::Ge => {
                let s = slack.expect("ge row has surplus");
                tab[i * width + s] = -1.0;
                let a = artificial.expect("ge row has artificial");
                tab[i * width + a] = 1.0;
                is_artificial[a] = true;
                basis[i] = a;
            }
            CmpOp::Eq => {
                let a = artificial.expect("eq row has artificial");
                tab[i * width + a] = 1.0;
                is_artificial[a] = true;
                basis[i] = a;
            }
        }
    }

    let mut pivots = 0u64;

    // Phase 1: minimise the sum of artificials.
    let needs_phase1 = is_artificial.iter().any(|&a| a);
    if needs_phase1 {
        let phase1_costs: Vec<f64> = (0..total_cols)
            .map(|c| if is_artificial[c] { 1.0 } else { 0.0 })
            .collect();
        let status = run_simplex(
            &mut tab,
            &mut basis,
            m,
            total_cols,
            &phase1_costs,
            &vec![true; total_cols],
            max_pivots,
            &mut pivots,
        );
        if status == InnerStatus::IterationLimit {
            return LpSolution::no_solution(LpStatus::IterationLimit, pivots);
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if is_artificial[b] {
                    tab[i * width + total_cols]
                } else {
                    0.0
                }
            })
            .sum();
        if phase1_obj > 1e-6 {
            return LpSolution::no_solution(LpStatus::Infeasible, pivots);
        }
    }

    // Phase 2: minimise the true objective; artificial columns may not enter.
    let mut phase2_costs = vec![0.0f64; total_cols];
    phase2_costs[..n].copy_from_slice(&costs);
    let allowed: Vec<bool> = (0..total_cols).map(|c| !is_artificial[c]).collect();
    let status = run_simplex(
        &mut tab,
        &mut basis,
        m,
        total_cols,
        &phase2_costs,
        &allowed,
        max_pivots,
        &mut pivots,
    );
    match status {
        InnerStatus::IterationLimit => LpSolution::no_solution(LpStatus::IterationLimit, pivots),
        InnerStatus::Unbounded => LpSolution::no_solution(LpStatus::Unbounded, pivots),
        InnerStatus::Optimal => {
            // Extract shifted values of the structural columns.
            let mut shifted = vec![0.0f64; n];
            for (i, &b) in basis.iter().enumerate() {
                if b < n {
                    shifted[b] = tab[i * width + total_cols];
                }
            }
            let mut values = vec![0.0f64; n_orig];
            for j in 0..n_orig {
                values[j] = if domains.is_fixed(j) {
                    domains.lower(j)
                } else {
                    domains.lower(j) + shifted[col_of[j]].max(0.0)
                };
            }
            let objective_value =
                obj_shift + costs.iter().zip(&shifted).map(|(c, x)| c * x).sum::<f64>();
            LpSolution {
                status: LpStatus::Optimal,
                objective: objective_value,
                values,
                pivots,
            }
        }
    }
}

fn effective_op(op: CmpOp, flipped: bool) -> CmpOp {
    if !flipped {
        return op;
    }
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Runs the primal simplex on the tableau until optimality for the given
/// cost vector. Uses Dantzig pricing with a switch to Bland's rule after a
/// degeneracy threshold so cycling cannot occur.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    m: usize,
    total_cols: usize,
    costs: &[f64],
    allowed: &[bool],
    max_pivots: u64,
    pivots: &mut u64,
) -> InnerStatus {
    let width = total_cols + 1;
    let bland_threshold = 4 * (m as u64 + total_cols as u64) + 64;
    let mut iterations_here = 0u64;

    loop {
        if *pivots >= max_pivots {
            return InnerStatus::IterationLimit;
        }
        // Reduced costs: r_j = c_j - sum_i c_{B(i)} * tab[i][j]
        let use_bland = iterations_here > bland_threshold;
        let mut entering: Option<usize> = None;
        let mut best_rc = -1e-9;
        for j in 0..total_cols {
            if !allowed[j] || basis.contains(&j) {
                continue;
            }
            let mut rc = costs[j];
            for i in 0..m {
                let cb = costs[basis[i]];
                if cb != 0.0 {
                    rc -= cb * tab[i * width + j];
                }
            }
            if rc < -1e-9 {
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if rc < best_rc {
                    best_rc = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            return InnerStatus::Optimal;
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i * width + col];
            if a > 1e-9 {
                let ratio = tab[i * width + total_cols] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return InnerStatus::Unbounded;
        };

        pivot(tab, m, width, row, col);
        basis[row] = col;
        *pivots += 1;
        iterations_here += 1;
    }
}

fn pivot(tab: &mut [f64], m: usize, width: usize, prow: usize, pcol: usize) {
    let pval = tab[prow * width + pcol];
    let inv = 1.0 / pval;
    for j in 0..width {
        tab[prow * width + j] *= inv;
    }
    tab[prow * width + pcol] = 1.0;
    for i in 0..m {
        if i == prow {
            continue;
        }
        let factor = tab[i * width + pcol];
        if factor.abs() < 1e-12 {
            continue;
        }
        for j in 0..width {
            tab[i * width + j] -= factor * tab[prow * width + j];
        }
        tab[i * width + pcol] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn relax(model: &Model) -> (SparseModel, Vec<f64>, f64, Domains) {
        let objective: Vec<f64> = model.vars().iter().map(|v| v.objective).collect();
        let constant = model.objective().offset();
        (
            SparseModel::from_model(model),
            objective,
            constant,
            Domains::from_model(model),
        )
    }

    #[test]
    fn simple_minimisation() {
        // min x + y  s.t.  x + y >= 1,  0 <= x,y <= 1   => objective 1
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn maximisation_via_negated_costs() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3  (x,y >= 0)
        // optimum x=2, y=2 -> 10; we solve min of the negation.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 4.0, "cap");
        m.set_objective([(x, -3.0), (y, -2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y  s.t.  x + y = 5, x <= 3, y <= 4
        // optimum x=3, y=2 -> 12
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 5.0, "sum");
        m.set_objective([(x, 2.0), (y, 3.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_lp() {
        // x >= 2 with x <= 1 is infeasible.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_geq([(x, 1.0)], 2.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // min x + y s.t. x + y >= 3 with y fixed at 2 => x = 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 5.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, mut dom) = relax(&m);
        dom.fix(y.index(), 2.0);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn relaxation_of_binary_knapsack_is_fractional() {
        // max 6a + 5b + 4c st 3a + 2b + 2c <= 4 (binaries) — LP optimum 11.0
        // (a=1, b=0.5, c=0  => 6 + 2.5 = 8.5?  check: greedy by density 6/3=2,
        // 5/2=2.5, 4/2=2 -> take b fully (2), then a 2/3 -> 5 + 4 = 9, hmm)
        // We simply assert the relaxation is at least as good as the best
        // integral solution (b + c = 9) and the solve succeeds.
        let mut m = Model::new("m");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.set_objective([(a, -6.0), (b, -5.0), (c, -4.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective <= -9.0 + 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x <= -1  (i.e. x >= 1) with x in [0, 2], min x => 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.add_leq([(x, -1.0)], -1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 2.0, "a");
        m.add_leq([(x, 2.0), (y, 2.0)], 4.0, "b");
        m.add_leq([(x, 1.0)], 2.0, "c");
        m.add_leq([(y, 1.0)], 2.0, "d");
        m.set_objective([(x, -1.0), (y, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 2.0).abs() < 1e-6);
    }
}
