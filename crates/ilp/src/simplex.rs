//! Dense two-phase primal simplex for the LP relaxation, plus a dual-simplex
//! warm-start path that re-solves a child node's LP from its parent's
//! optimal [`Basis`] after bound changes.
//!
//! The branch-and-bound solver uses this module to compute dual bounds and to
//! finish off nodes whose integral variables are all fixed but which still
//! contain continuous variables. The implementation is a deliberately simple
//! dense tableau method: every variable of the BIST formulations is bounded,
//! the models are small by LP standards (a few thousand rows at most) and
//! robustness matters more than raw speed, because the exactness claim of the
//! paper rests on the solver never mislabelling a suboptimal design as
//! optimal.
//!
//! Two construction modes share the same core:
//!
//! * [`solve_lp`] — the classic cold two-phase solve. Variables are shifted
//!   so their lower bound is zero, finite upper bounds become explicit rows,
//!   and fixed variables are substituted out before the tableau is built,
//!   which keeps relaxations small deep in the branch-and-bound tree.
//! * [`solve_lp_basis`] — a *warm-capable* cold solve. It additionally emits
//!   an explicit lower-bound row `-x'ⱼ <= 0` per column and returns the
//!   optimal [`Basis`] (final tableau + basis vector + construction
//!   metadata). Because **every** variable bound is now an explicit row, a
//!   child node that only tightens bounds differs from its parent purely in
//!   the right-hand side — exactly the change pattern the **dual simplex**
//!   handles: the parent's optimal basis stays dual feasible, so
//!   [`resolve_with_basis`] recomputes the basic solution for the child's
//!   bounds (via the `B⁻¹` image stored in the identity columns of the
//!   tableau) and pivots the handful of primal infeasibilities away instead
//!   of re-running two-phase primal from scratch.
//!
//! The warm-capable paths also report [`ReducedCosts`] at optimality, which
//! the solver uses for reduced-cost bound fixing against the incumbent.

use crate::model::CmpOp;
use crate::propagate::Domains;
use crate::sparse::SparseModel;
use crate::EPS;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution within the variable bounds.
    Infeasible,
    /// The objective is unbounded below (for minimisation).
    Unbounded,
    /// The pivot limit was reached before convergence.
    IterationLimit,
}

/// Reduced-cost information of an optimal basis, mapped back to the original
/// model variables.
///
/// `up[j]` is the proven marginal objective increase per unit increase of
/// variable `j` when the optimal solution has `j` at its **lower** bound
/// (`0.0` otherwise — basic, at the upper bound, or substituted out).
/// `down[j]` is the symmetric marginal increase per unit *decrease* when `j`
/// sits at its **upper** bound. Both are non-negative; the solver combines
/// them with an incumbent objective to fix binaries that provably cannot
/// flip in any improving solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedCosts {
    /// Marginal cost of moving up off the lower bound, per variable.
    pub up: Vec<f64>,
    /// Marginal cost of moving down off the upper bound, per variable.
    pub down: Vec<f64>,
}

/// Result of [`solve_lp`] / [`solve_lp_basis`] / [`resolve_with_basis`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (minimisation), meaningful when `status` is `Optimal`.
    pub objective: f64,
    /// Values of the *original* model variables (fixed variables keep their
    /// fixed value). Empty unless `status` is `Optimal`.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub pivots: u64,
    /// Reduced costs at optimality. Only produced by the warm-capable
    /// paths; `None` from the plain cold solve.
    pub reduced_costs: Option<ReducedCosts>,
}

impl LpSolution {
    fn no_solution(status: LpStatus, pivots: u64) -> Self {
        Self {
            status,
            objective: f64::INFINITY,
            values: Vec::new(),
            pivots,
            reduced_costs: None,
        }
    }
}

/// Upper bound on tableau cells (`rows × columns`) for which the
/// warm-capable construction is attempted; beyond it, [`solve_lp_basis`]
/// falls back to the plain cold solve and returns no basis, so basis storage
/// cannot blow the memory budget on very large relaxations.
const MAX_WARM_CELLS: usize = 2_000_000;

/// Primal feasibility tolerance of the dual simplex (a basic value this far
/// below zero still counts as feasible; extracted values are clamped).
const DUAL_FEAS_TOL: f64 = 1e-7;

/// A reusable simplex basis: the final optimal tableau of one LP solve plus
/// the construction metadata needed to re-solve the *same rows* under
/// tightened variable bounds with the dual simplex.
///
/// Produced by [`solve_lp_basis`] and [`resolve_with_basis`]; consumed by
/// [`resolve_with_basis`]. The basis is only valid for the exact constraint
/// matrix it was built from — the branch-and-bound solver invalidates its
/// basis cache whenever cutting planes change the row set.
#[derive(Debug, Clone)]
pub struct Basis {
    t: Tableau,
    age: u32,
}

impl Basis {
    /// Number of dual-simplex re-solves since the last cold factorisation.
    /// The solver re-factorises (cold-solves) after a chain of warm
    /// re-solves to keep the dense tableau's accumulated rounding error
    /// bounded.
    pub fn age(&self) -> u32 {
        self.age
    }

    /// Number of stored tableau cells (memory footprint proxy).
    pub fn cells(&self) -> usize {
        self.t.tab.len()
    }
}

/// Solves the LP `minimise Σ objective[j]·x[j] + objective_constant` subject
/// to the rows of `matrix` and the variable box described by `domains`.
///
/// `matrix` must reference variable indices smaller than `domains.len()`.
/// Integrality of the domains is ignored (this is the relaxation).
pub fn solve_lp(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> LpSolution {
    match Tableau::build(matrix, objective, objective_constant, domains, false) {
        Build::Done(solution) => solution,
        Build::Ready(mut t) => {
            let (status, pivots) = t.solve_two_phase(max_pivots);
            match status {
                InnerResult::Optimal => t.extract(false, pivots),
                InnerResult::Infeasible => LpSolution::no_solution(LpStatus::Infeasible, pivots),
                InnerResult::Unbounded => LpSolution::no_solution(LpStatus::Unbounded, pivots),
                InnerResult::IterationLimit => {
                    LpSolution::no_solution(LpStatus::IterationLimit, pivots)
                }
            }
        }
    }
}

/// Warm-capable cold solve: like [`solve_lp`], but the tableau carries an
/// explicit lower-bound row per column so descendant nodes can re-solve from
/// the returned [`Basis`] with the dual simplex, and the solution reports
/// [`ReducedCosts`].
///
/// Falls back to the plain cold solve (returning no basis) when the
/// warm-capable tableau would exceed an internal size cap.
pub fn solve_lp_basis(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> (LpSolution, Option<Basis>) {
    // Rough deterministic size estimate before allocating anything: rows =
    // model rows + 2 bound rows per free column; columns = structurals +
    // one slack/artificial per row (upper bound).
    let free = (0..domains.len()).filter(|&j| !domains.is_fixed(j)).count();
    let rows = matrix.num_rows() + 2 * free;
    let cols = free + rows + matrix.num_rows();
    if rows.saturating_mul(cols + 1) > MAX_WARM_CELLS {
        return (
            solve_lp(matrix, objective, objective_constant, domains, max_pivots),
            None,
        );
    }
    match Tableau::build(matrix, objective, objective_constant, domains, true) {
        Build::Done(solution) => (solution, None),
        Build::Ready(mut t) => {
            let (status, pivots) = t.solve_two_phase(max_pivots);
            match status {
                InnerResult::Optimal => {
                    let solution = t.extract(true, pivots);
                    (solution, Some(Basis { t: *t, age: 0 }))
                }
                InnerResult::Infeasible => {
                    (LpSolution::no_solution(LpStatus::Infeasible, pivots), None)
                }
                InnerResult::Unbounded => {
                    (LpSolution::no_solution(LpStatus::Unbounded, pivots), None)
                }
                InnerResult::IterationLimit => (
                    LpSolution::no_solution(LpStatus::IterationLimit, pivots),
                    None,
                ),
            }
        }
    }
}

/// Re-solves the LP of `basis` under the (tightened) bounds of `domains`
/// with the **dual simplex**, starting from the stored optimal basis.
///
/// Returns `None` when the basis is incompatible with `domains` — a bound
/// was *relaxed* below the basis' shift, or a variable substituted out at
/// construction changed value — in which case the caller should fall back
/// to a cold solve. Otherwise returns the solution and, at optimality, the
/// re-solved basis (age incremented) for further descendants.
pub fn resolve_with_basis(
    basis: &Basis,
    domains: &Domains,
    max_pivots: u64,
) -> Option<(LpSolution, Option<Basis>)> {
    let base = &basis.t;
    if domains.len() != base.n_orig {
        return None;
    }
    // Compatibility: variables substituted out at construction must still be
    // fixed at the same value, and no lower bound may drop below the shift
    // (the shifted variable x' >= 0 is implicit in the tableau).
    for j in 0..base.n_orig {
        if base.fixed_at_build[j] {
            if !domains.is_fixed(j) || (domains.lower(j) - base.shift[j]).abs() > 1e-9 {
                return None;
            }
        } else if domains.lower(j) < base.shift[j] - 1e-9 {
            return None;
        }
    }

    let mut t = base.clone();
    let width = t.total_cols + 1;
    let m = t.m;

    // New right-hand sides: model rows are untouched (the shift is the
    // construction-time lower bound, not the child's), bound rows move with
    // the child's box. rhs_new = B⁻¹·b_new, computed incrementally from the
    // stored B⁻¹ image (the identity columns) and the rhs deltas.
    for c in 0..t.n {
        let j = t.orig_of_col[c];
        let upper_b = domains.upper(j) - t.shift[j];
        let lower_b = -(domains.lower(j) - t.shift[j]);
        for (row, b_new) in [
            (t.upper_row_of_col[c], upper_b),
            (t.lower_row_of_col[c], lower_b),
        ] {
            let delta = b_new - t.b_built[row];
            if delta.abs() <= 1e-12 {
                continue;
            }
            let ic = t.ident_col[row];
            for i in 0..m {
                let f = t.tab[i * width + ic];
                if f != 0.0 {
                    t.tab[i * width + t.total_cols] += f * delta;
                }
            }
            t.b_built[row] = b_new;
        }
    }

    // Dual simplex: the stored basis is dual feasible (phase-2 reduced costs
    // of all allowed columns are >= 0); drive out the primal infeasibilities
    // the rhs change introduced.
    let mut pivots = 0u64;
    let bland_threshold = 4 * (m as u64 + t.total_cols as u64) + 64;
    let status = loop {
        if pivots >= max_pivots {
            break InnerResult::IterationLimit;
        }
        let use_bland = pivots > bland_threshold;
        // Leaving row: most negative basic value (first one under Bland).
        let mut leaving: Option<usize> = None;
        let mut most = -DUAL_FEAS_TOL;
        for i in 0..m {
            // An artificial basic column marks a linearly dependent row
            // (phase 1 pivots every other artificial out); its rhs is held
            // at zero by construction and must never drive a dual pivot.
            if t.is_artificial[t.basis[i]] {
                continue;
            }
            let v = t.tab[i * width + t.total_cols];
            if v < most {
                leaving = Some(i);
                if use_bland {
                    break;
                }
                most = v;
            }
        }
        let Some(row) = leaving else {
            break InnerResult::Optimal;
        };
        // Entering column: dual ratio test over columns with a negative
        // pivot element. Basic columns are exact unit vectors, so they never
        // qualify; artificial columns are excluded as in phase 2.
        let y: Vec<f64> = t.basis.iter().map(|&b| t.costs[b]).collect();
        let mut entering: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for j in 0..t.total_cols {
            if t.is_artificial[j] {
                continue;
            }
            let a = t.tab[row * width + j];
            if a >= -1e-9 {
                continue;
            }
            let mut rc = t.costs[j];
            for (i, &yi) in y.iter().enumerate() {
                if yi != 0.0 {
                    rc -= yi * t.tab[i * width + j];
                }
            }
            let ratio = rc.max(0.0) / -a;
            if ratio < best_ratio - 1e-12 {
                best_ratio = ratio;
                entering = Some(j);
            }
        }
        let Some(col) = entering else {
            // The row demands a negative basic value but no column can
            // restore feasibility: the LP is primal infeasible.
            break InnerResult::Infeasible;
        };
        pivot(&mut t.tab, m, width, row, col);
        t.basis[row] = col;
        pivots += 1;
    };

    match status {
        InnerResult::Optimal => {
            let solution = t.extract(true, pivots);
            let age = basis.age + 1;
            Some((solution, Some(Basis { t, age })))
        }
        InnerResult::Infeasible => {
            Some((LpSolution::no_solution(LpStatus::Infeasible, pivots), None))
        }
        InnerResult::Unbounded => {
            Some((LpSolution::no_solution(LpStatus::Unbounded, pivots), None))
        }
        InnerResult::IterationLimit => Some((
            LpSolution::no_solution(LpStatus::IterationLimit, pivots),
            None,
        )),
    }
}

/// The dense tableau plus every piece of construction metadata needed to
/// extract solutions and (in warm-capable mode) re-solve under new bounds.
#[derive(Debug, Clone)]
struct Tableau {
    // Column space.
    n_orig: usize,
    col_of: Vec<usize>,
    orig_of_col: Vec<usize>,
    /// Construction-time lower bound per original variable (the shift).
    shift: Vec<f64>,
    /// Variables substituted out at construction (fixed in the build box).
    fixed_at_build: Vec<bool>,
    // Dimensions.
    n: usize,
    m: usize,
    total_cols: usize,
    // State.
    tab: Vec<f64>,
    basis: Vec<usize>,
    is_artificial: Vec<bool>,
    /// Phase-2 cost per column (structural costs, zero on slacks).
    costs: Vec<f64>,
    obj_shift: f64,
    // Warm metadata (empty without bound rows).
    /// Initial identity column per row: the slack of a `<=` row, the
    /// artificial of a `>=`/`=` row. Their final tableau columns are B⁻¹.
    ident_col: Vec<usize>,
    /// Current right-hand side per row (sign-normalised), kept in step with
    /// every dual re-solve so deltas compose along a warm chain.
    b_built: Vec<f64>,
    upper_row_of_col: Vec<usize>,
    lower_row_of_col: Vec<usize>,
    has_bound_rows: bool,
}

enum Build {
    Done(LpSolution),
    Ready(Box<Tableau>),
}

impl Tableau {
    fn build(
        matrix: &SparseModel,
        objective: &[f64],
        objective_constant: f64,
        domains: &Domains,
        bound_rows: bool,
    ) -> Build {
        let n_orig = domains.len();
        debug_assert_eq!(objective.len(), n_orig);

        // Map original variables to LP columns, substituting fixed variables.
        let mut col_of = vec![usize::MAX; n_orig];
        let mut orig_of_col = Vec::new();
        for (j, slot) in col_of.iter_mut().enumerate() {
            if !domains.is_fixed(j) {
                *slot = orig_of_col.len();
                orig_of_col.push(j);
            }
        }
        let n = orig_of_col.len();
        let shift: Vec<f64> = (0..n_orig).map(|j| domains.lower(j)).collect();
        let fixed_at_build: Vec<bool> = (0..n_orig).map(|j| domains.is_fixed(j)).collect();

        // Shifted objective constant: every variable contributes c_j · lower_j
        // (fixed variables have lower == upper).
        let mut obj_shift = objective_constant;
        for (j, &c) in objective.iter().enumerate() {
            obj_shift += c * shift[j];
        }
        let struct_costs: Vec<f64> = orig_of_col.iter().map(|&j| objective[j]).collect();

        // Build normalised rows over the free columns:  Σ a·x'  op  b
        struct NormRow {
            terms: Vec<(usize, f64)>,
            op: CmpOp,
            rhs: f64,
        }
        let mut norm_rows: Vec<NormRow> = Vec::new();
        for row in matrix.rows() {
            let mut rhs = row.rhs;
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for (j, a) in row.terms() {
                // every variable contributes a·lower as a constant shift
                rhs -= a * shift[j];
                if !domains.is_fixed(j) {
                    terms.push((col_of[j], a));
                }
            }
            if terms.is_empty() {
                let ok = match row.op {
                    CmpOp::Le => 0.0 <= rhs + EPS,
                    CmpOp::Ge => 0.0 >= rhs - EPS,
                    CmpOp::Eq => rhs.abs() <= EPS,
                };
                if !ok {
                    return Build::Done(LpSolution::no_solution(LpStatus::Infeasible, 0));
                }
                continue;
            }
            norm_rows.push(NormRow {
                terms,
                op: row.op,
                rhs,
            });
        }
        // Bound rows for the free columns: the upper bound always (the
        // variables are boxed), and in warm-capable mode also an explicit
        // lower-bound row -x' <= 0, redundant here but the handle a child
        // needs to *raise* the lower bound by an rhs change alone.
        let mut upper_row_of_col = vec![usize::MAX; if bound_rows { n } else { 0 }];
        let mut lower_row_of_col = vec![usize::MAX; if bound_rows { n } else { 0 }];
        for (col, &j) in orig_of_col.iter().enumerate() {
            if bound_rows {
                upper_row_of_col[col] = norm_rows.len();
            }
            norm_rows.push(NormRow {
                terms: vec![(col, 1.0)],
                op: CmpOp::Le,
                rhs: domains.upper(j) - shift[j],
            });
            if bound_rows {
                lower_row_of_col[col] = norm_rows.len();
                norm_rows.push(NormRow {
                    terms: vec![(col, -1.0)],
                    op: CmpOp::Le,
                    rhs: 0.0,
                });
            }
        }

        let m = norm_rows.len();
        if n == 0 {
            return Build::Done(LpSolution {
                status: LpStatus::Optimal,
                objective: obj_shift,
                values: (0..n_orig).map(|j| shift[j]).collect(),
                pivots: 0,
                reduced_costs: None,
            });
        }

        // Count auxiliary columns: slack/surplus per inequality, artificials
        // for >= and = rows (after rhs sign normalisation).
        let mut total_cols = n;
        let mut row_aux: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(m);
        let mut flipped: Vec<bool> = Vec::with_capacity(m);
        for row in &norm_rows {
            let flip = row.rhs < 0.0;
            flipped.push(flip);
            let op = effective_op(row.op, flip);
            let slack = match op {
                CmpOp::Le | CmpOp::Ge => {
                    let c = total_cols;
                    total_cols += 1;
                    Some(c)
                }
                CmpOp::Eq => None,
            };
            let artificial = match op {
                CmpOp::Le => None,
                CmpOp::Ge | CmpOp::Eq => {
                    let c = total_cols;
                    total_cols += 1;
                    Some(c)
                }
            };
            row_aux.push((slack, artificial));
        }

        // Dense tableau: m rows x (total_cols + 1), last column is the rhs.
        let width = total_cols + 1;
        let mut tab = vec![0.0f64; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut is_artificial = vec![false; total_cols];
        let mut ident_col = vec![usize::MAX; m];
        let mut b_built = vec![0.0f64; m];

        for (i, row) in norm_rows.iter().enumerate() {
            let sign = if flipped[i] { -1.0 } else { 1.0 };
            for &(c, a) in &row.terms {
                tab[i * width + c] += sign * a;
            }
            tab[i * width + total_cols] = sign * row.rhs;
            b_built[i] = sign * row.rhs;
            let op = effective_op(row.op, flipped[i]);
            let (slack, artificial) = row_aux[i];
            match op {
                CmpOp::Le => {
                    let s = slack.expect("le row has slack");
                    tab[i * width + s] = 1.0;
                    basis[i] = s;
                    ident_col[i] = s;
                }
                CmpOp::Ge => {
                    let s = slack.expect("ge row has surplus");
                    tab[i * width + s] = -1.0;
                    let a = artificial.expect("ge row has artificial");
                    tab[i * width + a] = 1.0;
                    is_artificial[a] = true;
                    basis[i] = a;
                    ident_col[i] = a;
                }
                CmpOp::Eq => {
                    let a = artificial.expect("eq row has artificial");
                    tab[i * width + a] = 1.0;
                    is_artificial[a] = true;
                    basis[i] = a;
                    ident_col[i] = a;
                }
            }
        }

        let mut costs = vec![0.0f64; total_cols];
        costs[..n].copy_from_slice(&struct_costs);

        Build::Ready(Box::new(Tableau {
            n_orig,
            col_of,
            orig_of_col,
            shift,
            fixed_at_build,
            n,
            m,
            total_cols,
            tab,
            basis,
            is_artificial,
            costs,
            obj_shift,
            ident_col,
            b_built,
            upper_row_of_col,
            lower_row_of_col,
            has_bound_rows: bound_rows,
        }))
    }

    /// Runs phase 1 (artificial elimination) and phase 2 (true objective).
    fn solve_two_phase(&mut self, max_pivots: u64) -> (InnerResult, u64) {
        let width = self.total_cols + 1;
        let mut pivots = 0u64;

        let needs_phase1 = self.is_artificial.iter().any(|&a| a);
        if needs_phase1 {
            let phase1_costs: Vec<f64> = (0..self.total_cols)
                .map(|c| if self.is_artificial[c] { 1.0 } else { 0.0 })
                .collect();
            let status = run_simplex(
                &mut self.tab,
                &mut self.basis,
                self.m,
                self.total_cols,
                &phase1_costs,
                &vec![true; self.total_cols],
                max_pivots,
                &mut pivots,
            );
            if status == InnerStatus::IterationLimit {
                return (InnerResult::IterationLimit, pivots);
            }
            let phase1_obj: f64 = self
                .basis
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    if self.is_artificial[b] {
                        self.tab[i * width + self.total_cols]
                    } else {
                        0.0
                    }
                })
                .sum();
            if phase1_obj > 1e-6 {
                return (InnerResult::Infeasible, pivots);
            }
            // Drive every artificial still basic (necessarily at value ~0)
            // out of the basis with a degenerate pivot. Leaving them in
            // lets later pivots regrow them silently — phase 2 (or a dual
            // re-solve) then reports a super-optimal objective for a point
            // violating the artificial's row. Rows with no eligible pivot
            // element are linearly dependent on the rest; their artificial
            // stays basic at zero and no later pivot can touch the row.
            for row in 0..self.m {
                if !self.is_artificial[self.basis[row]] {
                    continue;
                }
                let mut target = None;
                for j in 0..self.total_cols {
                    if self.is_artificial[j] || self.basis.contains(&j) {
                        continue;
                    }
                    if self.tab[row * width + j].abs() > 1e-7 {
                        target = Some(j);
                        break;
                    }
                }
                if let Some(col) = target {
                    pivot(&mut self.tab, self.m, width, row, col);
                    self.basis[row] = col;
                    pivots += 1;
                }
            }
        }

        // Phase 2: minimise the true objective; artificials may not enter.
        let allowed: Vec<bool> = (0..self.total_cols)
            .map(|c| !self.is_artificial[c])
            .collect();
        let status = run_simplex(
            &mut self.tab,
            &mut self.basis,
            self.m,
            self.total_cols,
            &self.costs,
            &allowed,
            max_pivots,
            &mut pivots,
        );
        let result = match status {
            InnerStatus::IterationLimit => InnerResult::IterationLimit,
            InnerStatus::Unbounded => InnerResult::Unbounded,
            InnerStatus::Optimal => InnerResult::Optimal,
        };
        (result, pivots)
    }

    /// Extracts the optimal solution (values, objective and, when requested
    /// and available, reduced costs) from the current tableau state.
    fn extract(&self, with_rc: bool, pivots: u64) -> LpSolution {
        let width = self.total_cols + 1;
        let mut shifted = vec![0.0f64; self.n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                shifted[b] = self.tab[i * width + self.total_cols];
            }
        }
        let mut values = vec![0.0f64; self.n_orig];
        for j in 0..self.n_orig {
            values[j] = if self.fixed_at_build[j] {
                self.shift[j]
            } else {
                self.shift[j] + shifted[self.col_of[j]].max(0.0)
            };
        }
        let objective_value = self.obj_shift
            + self
                .costs
                .iter()
                .take(self.n)
                .zip(&shifted)
                .map(|(c, x)| c * x)
                .sum::<f64>();
        let reduced_costs = (with_rc && self.has_bound_rows).then(|| self.reduced_costs());
        LpSolution {
            status: LpStatus::Optimal,
            objective: objective_value,
            values,
            pivots,
            reduced_costs,
        }
    }

    /// Reduced costs of the structural columns and their bound-row slacks,
    /// mapped to per-variable up/down marginal costs.
    fn reduced_costs(&self) -> ReducedCosts {
        let width = self.total_cols + 1;
        let y: Vec<f64> = self.basis.iter().map(|&b| self.costs[b]).collect();
        let mut in_basis = vec![false; self.total_cols];
        for &b in &self.basis {
            in_basis[b] = true;
        }
        let rc_of = |j: usize| -> f64 {
            let mut rc = self.costs[j];
            for (i, &yi) in y.iter().enumerate() {
                if yi != 0.0 {
                    rc -= yi * self.tab[i * width + j];
                }
            }
            rc.max(0.0)
        };
        let mut up = vec![0.0f64; self.n_orig];
        let mut down = vec![0.0f64; self.n_orig];
        for (c, &j) in self.orig_of_col.iter().enumerate() {
            // At the lower bound: either the structural column is nonbasic
            // (x' = 0, the construction-time lower) or the explicit
            // lower-bound row is tight (its slack is nonbasic).
            if !in_basis[c] {
                up[j] = rc_of(c);
            } else {
                let low_slack = self.ident_col[self.lower_row_of_col[c]];
                if !in_basis[low_slack] {
                    up[j] = rc_of(low_slack);
                }
            }
            // At the upper bound: the upper-bound row is tight.
            let up_slack = self.ident_col[self.upper_row_of_col[c]];
            if !in_basis[up_slack] {
                down[j] = rc_of(up_slack);
            }
        }
        ReducedCosts { up, down }
    }
}

fn effective_op(op: CmpOp, flipped: bool) -> CmpOp {
    if !flipped {
        return op;
    }
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Like [`InnerStatus`] but with phase-1 infeasibility folded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerResult {
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
}

/// Runs the primal simplex on the tableau until optimality for the given
/// cost vector. Uses Dantzig pricing with a switch to Bland's rule after a
/// degeneracy threshold so cycling cannot occur.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    m: usize,
    total_cols: usize,
    costs: &[f64],
    allowed: &[bool],
    max_pivots: u64,
    pivots: &mut u64,
) -> InnerStatus {
    let width = total_cols + 1;
    let bland_threshold = 4 * (m as u64 + total_cols as u64) + 64;
    let mut iterations_here = 0u64;

    loop {
        if *pivots >= max_pivots {
            return InnerStatus::IterationLimit;
        }
        // Reduced costs: r_j = c_j - sum_i c_{B(i)} * tab[i][j]
        let use_bland = iterations_here > bland_threshold;
        let mut entering: Option<usize> = None;
        let mut best_rc = -1e-9;
        for j in 0..total_cols {
            if !allowed[j] || basis.contains(&j) {
                continue;
            }
            let mut rc = costs[j];
            for i in 0..m {
                let cb = costs[basis[i]];
                if cb != 0.0 {
                    rc -= cb * tab[i * width + j];
                }
            }
            if rc < -1e-9 {
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if rc < best_rc {
                    best_rc = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            return InnerStatus::Optimal;
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i * width + col];
            if a > 1e-9 {
                let ratio = tab[i * width + total_cols] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return InnerStatus::Unbounded;
        };

        pivot(tab, m, width, row, col);
        basis[row] = col;
        *pivots += 1;
        iterations_here += 1;
    }
}

fn pivot(tab: &mut [f64], m: usize, width: usize, prow: usize, pcol: usize) {
    let pval = tab[prow * width + pcol];
    let inv = 1.0 / pval;
    for j in 0..width {
        tab[prow * width + j] *= inv;
    }
    tab[prow * width + pcol] = 1.0;
    for i in 0..m {
        if i == prow {
            continue;
        }
        let factor = tab[i * width + pcol];
        if factor.abs() < 1e-12 {
            continue;
        }
        for j in 0..width {
            tab[i * width + j] -= factor * tab[prow * width + j];
        }
        tab[i * width + pcol] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn relax(model: &Model) -> (SparseModel, Vec<f64>, f64, Domains) {
        let objective: Vec<f64> = model.vars().iter().map(|v| v.objective).collect();
        let constant = model.objective().offset();
        (
            SparseModel::from_model(model),
            objective,
            constant,
            Domains::from_model(model),
        )
    }

    #[test]
    fn simple_minimisation() {
        // min x + y  s.t.  x + y >= 1,  0 <= x,y <= 1   => objective 1
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn maximisation_via_negated_costs() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3  (x,y >= 0)
        // optimum x=2, y=2 -> 10; we solve min of the negation.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 4.0, "cap");
        m.set_objective([(x, -3.0), (y, -2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y  s.t.  x + y = 5, x <= 3, y <= 4
        // optimum x=3, y=2 -> 12
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 5.0, "sum");
        m.set_objective([(x, 2.0), (y, 3.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_lp() {
        // x >= 2 with x <= 1 is infeasible.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_geq([(x, 1.0)], 2.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // min x + y s.t. x + y >= 3 with y fixed at 2 => x = 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 5.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "c");
        m.set_objective([(x, 1.0), (y, 1.0)], Sense::Minimize);
        let (rows, obj, k, mut dom) = relax(&m);
        dom.fix(y.index(), 2.0);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x.index()] - 1.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn relaxation_of_binary_knapsack_is_fractional() {
        // max 6a + 5b + 4c st 3a + 2b + 2c <= 4 (binaries). We simply assert
        // the relaxation is at least as good as the best integral solution
        // (b + c = 9) and the solve succeeds.
        let mut m = Model::new("m");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.set_objective([(a, -6.0), (b, -5.0), (c, -4.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective <= -9.0 + 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x <= -1  (i.e. x >= 1) with x in [0, 2], min x => 1.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.add_leq([(x, -1.0)], -1.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("m");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 2.0, "a");
        m.add_leq([(x, 2.0), (y, 2.0)], 4.0, "b");
        m.add_leq([(x, 1.0)], 2.0, "c");
        m.add_leq([(y, 1.0)], 2.0, "d");
        m.set_objective([(x, -1.0), (y, -1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let sol = solve_lp(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 2.0).abs() < 1e-6);
    }

    // ---- warm-start / dual simplex ----

    #[test]
    fn warm_capable_solve_matches_cold_solve() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 3.0), (y, 2.0), (z, 2.0)], 4.0, "cap");
        m.add_geq([(x, 1.0), (z, 1.0)], 1.0, "c");
        m.set_objective([(x, -6.0), (y, -5.0), (z, -4.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let cold = solve_lp(&rows, &obj, k, &dom, 10_000);
        let (warm, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(cold.status, LpStatus::Optimal);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((cold.objective - warm.objective).abs() < 1e-9);
        assert!(basis.is_some());
        assert!(warm.reduced_costs.is_some());
    }

    #[test]
    fn dual_resolve_after_fixing_matches_cold() {
        // Fix each binary to each value in turn; the dual re-solve from the
        // root basis must agree with a cold solve of the child.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_leq(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            2.0,
            "cap",
        );
        m.add_geq([(vars[0], 1.0), (vars[2], 1.0)], 1.0, "need");
        m.set_objective(
            [
                (vars[0], -3.0),
                (vars[1], -5.0),
                (vars[2], -4.0),
                (vars[3], -2.0),
            ],
            Sense::Minimize,
        );
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        for j in 0..4 {
            for value in [0.0, 1.0] {
                let mut child = dom.clone();
                assert!(child.fix(j, value));
                let cold = solve_lp(&rows, &obj, k, &child, 10_000);
                let (warm, _) = resolve_with_basis(&basis, &child, 10_000).expect("compatible");
                assert_eq!(warm.status, cold.status, "x{j} := {value}");
                if warm.status == LpStatus::Optimal {
                    assert!(
                        (warm.objective - cold.objective).abs() < 1e-6,
                        "x{j} := {value}: warm {} vs cold {}",
                        warm.objective,
                        cold.objective
                    );
                }
            }
        }
    }

    #[test]
    fn dual_resolve_detects_child_infeasibility() {
        // x + y >= 1 with both fixed to 0 is infeasible.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.unwrap();
        let mut child = dom.clone();
        assert!(child.fix(x.index(), 0.0));
        assert!(child.fix(y.index(), 0.0));
        let (warm, next) = resolve_with_basis(&basis, &child, 10_000).expect("compatible");
        assert_eq!(warm.status, LpStatus::Infeasible);
        assert!(next.is_none());
    }

    #[test]
    fn dual_resolve_chains_across_generations() {
        // Tighten bounds one variable at a time, re-solving from the
        // previous basis each step, and compare against cold solves.
        let mut m = Model::new("m");
        let vars: Vec<_> = (0..5)
            .map(|i| m.add_integer(format!("x{i}"), 0, 3))
            .collect();
        m.add_leq(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            7.0,
            "cap",
        );
        m.add_geq([(vars[0], 1.0), (vars[1], 1.0)], 2.0, "need");
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, -((i + 1) as f64)))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let (rows, obj, k, dom) = relax(&m);
        let (root, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut basis = basis.unwrap();
        let mut domains = dom.clone();
        for (step, &(j, lo, hi)) in [(4usize, 0.0, 1.0), (3, 1.0, 3.0), (0, 1.0, 1.0)]
            .iter()
            .enumerate()
        {
            domains.tighten_lower(j, lo);
            domains.tighten_upper(j, hi);
            let cold = solve_lp(&rows, &obj, k, &domains, 10_000);
            let (warm, next) = resolve_with_basis(&basis, &domains, 10_000).expect("compatible");
            assert_eq!(warm.status, cold.status, "step {step}");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "step {step}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = next.expect("optimal resolve returns a basis");
            assert_eq!(basis.age(), step as u32 + 1);
        }
    }

    #[test]
    fn resolve_rejects_relaxed_lower_bound() {
        let mut m = Model::new("m");
        let x = m.add_integer("x", 1, 3);
        m.add_leq([(x, 1.0)], 2.0, "c");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (_, basis) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        let basis = basis.unwrap();
        // A domain with a *relaxed* lower bound cannot reuse the basis.
        let mut m2 = Model::new("m2");
        m2.add_integer("x", 0, 3);
        let relaxed = Domains::from_model(&m2);
        assert!(resolve_with_basis(&basis, &relaxed, 10_000).is_none());
    }

    #[test]
    fn reduced_costs_identify_bound_variables() {
        // min x + 2y s.t. x + y >= 1: optimum x=1, y=0. y is nonbasic at its
        // lower bound with positive reduced cost (2 - 1 = 1 after pricing).
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let (rows, obj, k, dom) = relax(&m);
        let (sol, _) = solve_lp_basis(&rows, &obj, k, &dom, 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        let rc = sol.reduced_costs.expect("warm path reports reduced costs");
        assert!((sol.values[y.index()]).abs() < 1e-6);
        assert!(
            rc.up[y.index()] > 0.5,
            "y at lower bound should have positive up-cost, got {}",
            rc.up[y.index()]
        );
    }
}
