//! Session-oriented solving: budgets, cancellation and a live event stream.
//!
//! A [`SolveSession`] is the front door for interactive and service-style
//! callers. Where [`crate::Model::solve`] is a blocking one-shot call, a
//! session carries:
//!
//! * a first-class [`Budget`] — node limit, wall-clock limit and absolute
//!   deadline in one value, replacing ad-hoc env-var plumbing,
//! * a shareable [`CancelToken`], checked inside the branch-and-bound loop,
//!   so another thread (or an event observer) can stop the search while the
//!   best incumbent found so far is preserved,
//! * an observer stream of [`SolveEvent`]s emitted *live* from the solver —
//!   incumbent improvements, dual-bound progress, cut rounds, node
//!   milestones and completion — instead of only post-hoc
//!   [`crate::SolveStats`].
//!
//! ```
//! use bist_ilp::{Model, Sense, SolverConfig, SolveSession, SolveEvent, Budget};
//!
//! # fn main() -> Result<(), bist_ilp::IlpError> {
//! let mut model = Model::new("tiny");
//! let x = model.add_binary("x");
//! let y = model.add_binary("y");
//! model.add_leq([(x, 1.0), (y, 1.0)], 1.0, "cap");
//! model.set_objective([(x, 1.0), (y, 2.0)], Sense::Maximize);
//!
//! let config = SolverConfig::builder()
//!     .budget(Budget::unlimited().with_nodes(10_000))
//!     .build();
//! let mut incumbents = 0;
//! let solution = SolveSession::with_config(&model, config)
//!     .on_event(|event| {
//!         if let SolveEvent::Incumbent { .. } = event {
//!             incumbents += 1;
//!         }
//!     })
//!     .solve()?;
//! assert!(solution.is_optimal());
//! assert!(incumbents >= 1);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::IlpError;
use crate::model::Model;
use crate::solution::{Solution, Status};
use crate::solver::{BranchAndBound, SolverConfig};

/// Smallest accepted wall-clock budget: sub-millisecond values are clamped
/// up so a `BIST_TIME_LIMIT_SECS=0` run still performs the root work.
const MIN_TIME_LIMIT: Duration = Duration::from_millis(1);

/// Largest accepted seconds value in the budget environment variables
/// (~31 years). Beyond this, `Duration::from_secs_f64` /
/// `Instant + Duration` would panic instead of producing the designed
/// loud [`BudgetError`], so the parser rejects it first.
const MAX_BUDGET_SECS: f64 = 1e9;

/// A unified solve budget: node limit, wall-clock limit and absolute
/// deadline. All three are optional and combine conjunctively — the solve
/// stops at whichever expires first.
///
/// The wall-clock limit is relative to the start of each solve; the
/// deadline is an absolute [`Instant`], so one deadline naturally caps a
/// whole batch of solves (every solve sharing it stops at the same moment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum number of branch-and-bound nodes per solve.
    pub node_limit: Option<u64>,
    /// Maximum wall-clock time per solve.
    pub time_limit: Option<Duration>,
    /// Absolute point in time after which the search stops.
    pub deadline: Option<Instant>,
    /// Capacity of the job service's cross-job solve cache in MiB
    /// (`Some(0)` disables the cache, `None` = service default). Not a
    /// solve limit — it travels on the budget because the budget is the
    /// one environment-configured value every service entry point already
    /// threads through (`BIST_CACHE_MB`).
    pub cache_mb: Option<u64>,
    /// Whether early-stopped solves capture a resumable
    /// [`crate::SolveSnapshot`] (`None` = caller default: off for plain
    /// sessions, on in the job service). Set from `BIST_SNAPSHOT`.
    pub snapshot: Option<bool>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A node-limited budget (deterministic across machines).
    pub fn nodes(limit: u64) -> Self {
        Self::unlimited().with_nodes(limit)
    }

    /// A wall-clock-limited budget.
    pub fn time(limit: Duration) -> Self {
        Self::unlimited().with_time(limit)
    }

    /// Sets the node limit.
    pub fn with_nodes(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `from_now` in the future.
    pub fn with_deadline_in(self, from_now: Duration) -> Self {
        self.with_deadline(Instant::now() + from_now)
    }

    /// Fills in the node limit only when none is set (used by harness
    /// binaries to layer their defaults under the environment).
    pub fn or_nodes(mut self, limit: u64) -> Self {
        self.node_limit.get_or_insert(limit);
        self
    }

    /// Fills in the wall-clock limit only when none is set.
    pub fn or_time(mut self, limit: Duration) -> Self {
        self.time_limit.get_or_insert(limit);
        self
    }

    /// Sets the service solve-cache capacity in MiB (0 disables it).
    pub fn with_cache_mb(mut self, mb: u64) -> Self {
        self.cache_mb = Some(mb);
        self
    }

    /// Sets whether early-stopped solves capture a resumable snapshot.
    pub fn with_snapshot(mut self, enabled: bool) -> Self {
        self.snapshot = Some(enabled);
        self
    }

    /// Whether no limit of any kind is configured. The cache and snapshot
    /// knobs are policy, not limits, and do not count.
    pub fn is_unlimited(&self) -> bool {
        self.node_limit.is_none() && self.time_limit.is_none() && self.deadline.is_none()
    }

    /// Whether the budget is deterministic: free of wall-clock limits and
    /// deadlines, so two runs under it explore identical trees. The job
    /// service only reuses finished solutions across jobs whose budgets
    /// are deterministic — a time-limited solve's result depends on the
    /// machine's speed at that moment and must not be replayed.
    pub fn is_deterministic(&self) -> bool {
        self.time_limit.is_none() && self.deadline.is_none()
    }

    /// Whether `nodes` exhausts the node limit.
    pub fn nodes_exhausted(&self, nodes: u64) -> bool {
        self.node_limit.is_some_and(|limit| nodes >= limit)
    }

    /// Whether the wall-clock limit (relative to `started`) or the absolute
    /// deadline has expired.
    pub fn time_expired(&self, started: Instant) -> bool {
        if self
            .time_limit
            .is_some_and(|limit| started.elapsed() >= limit)
        {
            return true;
        }
        self.deadline_passed()
    }

    /// Whether the absolute deadline has passed (ignores the relative
    /// limits; the job service uses this between solves).
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Reads the budget from the process environment.
    ///
    /// Recognised variables:
    ///
    /// | Variable | Meaning |
    /// |----------|---------|
    /// | `BIST_NODE_LIMIT` | node limit per solve (integer ≥ 1) |
    /// | `BIST_SWEEP_NODES` | legacy alias for the node limit; `BIST_NODE_LIMIT` takes precedence |
    /// | `BIST_TIME_LIMIT_SECS` | wall-clock limit per solve in seconds (fractions allowed, clamped to ≥ 1 ms) |
    /// | `BIST_DEADLINE_SECS` | absolute deadline, given as seconds from now |
    /// | `BIST_CACHE_MB` | job-service solve-cache capacity in MiB (integer; `0` disables the cache) |
    /// | `BIST_SNAPSHOT` | snapshot capture on early stop: `1`/`true`/`on` or `0`/`false`/`off` |
    ///
    /// Unset variables leave the corresponding limit unset. Malformed values
    /// are an error — they are *not* silently replaced by defaults, so a
    /// typo in a CI configuration fails loudly instead of running with the
    /// wrong budget.
    ///
    /// # Errors
    ///
    /// Returns a [`BudgetError`] naming the offending variable and value.
    pub fn from_env() -> Result<Self, BudgetError> {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// The testable core of [`Budget::from_env`]: same parsing and
    /// precedence rules over an arbitrary variable lookup.
    ///
    /// # Errors
    ///
    /// Same contract as [`Budget::from_env`].
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Self, BudgetError> {
        let mut budget = Budget::unlimited();
        // Canonical node limit beats the legacy sweep-specific name.
        for var in ["BIST_NODE_LIMIT", "BIST_SWEEP_NODES"] {
            if let Some(raw) = get(var) {
                let nodes: u64 = raw
                    .trim()
                    .parse()
                    .map_err(|_| BudgetError::new(var, &raw, "expected an integer"))?;
                if nodes == 0 {
                    return Err(BudgetError::new(var, &raw, "node limit must be at least 1"));
                }
                budget.node_limit = Some(nodes);
                break;
            }
        }
        if let Some(raw) = get("BIST_TIME_LIMIT_SECS") {
            let secs = parse_seconds("BIST_TIME_LIMIT_SECS", &raw)?;
            budget.time_limit = Some(Duration::from_secs_f64(secs).max(MIN_TIME_LIMIT));
        }
        if let Some(raw) = get("BIST_DEADLINE_SECS") {
            let secs = parse_seconds("BIST_DEADLINE_SECS", &raw)?;
            budget.deadline = Some(Instant::now() + Duration::from_secs_f64(secs));
        }
        if let Some(raw) = get("BIST_CACHE_MB") {
            let mb: u64 = raw.trim().parse().map_err(|_| {
                BudgetError::new("BIST_CACHE_MB", &raw, "expected an integer number of MiB")
            })?;
            budget.cache_mb = Some(mb);
        }
        if let Some(raw) = get("BIST_SNAPSHOT") {
            budget.snapshot = Some(match raw.trim() {
                "1" | "true" | "on" => true,
                "0" | "false" | "off" => false,
                _ => {
                    return Err(BudgetError::new(
                        "BIST_SNAPSHOT",
                        &raw,
                        "expected 0/1, true/false or on/off",
                    ))
                }
            });
        }
        Ok(budget)
    }
}

fn parse_seconds(var: &str, raw: &str) -> Result<f64, BudgetError> {
    let secs: f64 = raw
        .trim()
        .parse()
        .map_err(|_| BudgetError::new(var, raw, "expected a number of seconds"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(BudgetError::new(
            var,
            raw,
            "seconds must be finite and non-negative",
        ));
    }
    if secs > MAX_BUDGET_SECS {
        return Err(BudgetError::new(
            var,
            raw,
            "seconds exceed the supported maximum (1e9)",
        ));
    }
    Ok(secs)
}

/// A malformed budget variable in the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// The environment variable that failed to parse.
    pub var: String,
    /// Its raw value.
    pub value: String,
    /// What was expected.
    pub reason: String,
}

impl BudgetError {
    fn new(var: &str, value: &str, reason: &str) -> Self {
        Self {
            var: var.to_string(),
            value: value.to_string(),
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}={:?}: {}", self.var, self.value, self.reason)
    }
}

impl std::error::Error for BudgetError {}

/// A shareable cancellation flag. Cloning is cheap (an [`Arc`] bump) and
/// every clone observes the same flag, so a token handed to another thread,
/// an event observer or the job service cancels the solve it was installed
/// in. Cancellation is cooperative: the branch-and-bound loop checks the
/// flag at every node pop and returns [`Status::Interrupted`] with the best
/// incumbent found so far.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A progress event emitted live during a solve. Objectives and bounds are
/// reported in the model's *external* objective sense (the same convention
/// as [`crate::Solution::objective`] and [`crate::Improvement`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveEvent {
    /// The incumbent improved (a better feasible solution was found).
    Incumbent {
        /// Nodes explored when the improvement happened (0 = before the
        /// tree search: a warm start or the dive heuristic).
        nodes: u64,
        /// The new incumbent objective.
        objective: f64,
    },
    /// The proven dual bound tightened (root relaxation, cut rounds).
    BoundImproved {
        /// Nodes explored when the bound improved.
        nodes: u64,
        /// The new bound, external sense.
        bound: f64,
    },
    /// A separation round added cutting planes to the row set.
    CutRound {
        /// Nodes explored when the cuts were separated (0 = root loop).
        nodes: u64,
        /// Cuts accepted in this round.
        added: u64,
        /// Total cuts in the pool after this round.
        total: u64,
    },
    /// A branch-and-bound node was popped. Emitted for every node, so an
    /// observer can implement deterministic node-count-triggered
    /// cancellation or throttled progress reporting.
    NodeMilestone {
        /// Nodes explored so far (this node included).
        nodes: u64,
        /// Current incumbent objective, if any.
        incumbent: Option<f64>,
    },
    /// The solve finished; always the last event of a session.
    Done {
        /// Final status.
        status: Status,
        /// Total nodes explored.
        nodes: u64,
        /// Total simplex iterations, split by kernel:
        /// `(primal, dual)` — cold two-phase factorisations vs warm
        /// dual-simplex re-solves (see [`crate::SolveStats`]).
        pivots: (u64, u64),
        /// Simplex iterations split by pricing rule actually charged:
        /// `(devex, dantzig, bland)`. The first two reflect the configured
        /// [`crate::Pricing`]; Bland pivots are anti-cycling fallbacks.
        pricing_pivots: (u64, u64, u64),
        /// Cutting planes emitted into the pool over the whole solve,
        /// by kind.
        cuts_emitted: crate::CutCounts,
        /// Cutting planes still active in the row set at the end, by kind.
        cuts_active: crate::CutCounts,
    },
}

/// Event observer callbacks attached to a [`SolveSession`].
type Observer<'m> = Box<dyn FnMut(&SolveEvent) + 'm>;

/// A configured handle on one solve of a model: budget, cancellation and
/// live events in one place. See the [module documentation](self) for an
/// end-to-end example.
pub struct SolveSession<'m> {
    model: &'m Model,
    config: SolverConfig,
    observers: Vec<Observer<'m>>,
}

impl<'m> SolveSession<'m> {
    /// A session over `model` with the default [`SolverConfig`].
    pub fn new(model: &'m Model) -> Self {
        Self::with_config(model, SolverConfig::default())
    }

    /// A session over `model` with an explicit configuration (typically
    /// from [`SolverConfig::builder`]).
    pub fn with_config(model: &'m Model, config: SolverConfig) -> Self {
        Self {
            model,
            config,
            observers: Vec::new(),
        }
    }

    /// Replaces the session's budget. A budget carrying an explicit
    /// [`Budget::snapshot`] policy (e.g. from `BIST_SNAPSHOT`) also toggles
    /// snapshot capture on the session; `None` leaves the session setting
    /// untouched.
    pub fn budget(mut self, budget: Budget) -> Self {
        if let Some(enabled) = budget.snapshot {
            self.config.snapshot = enabled;
        }
        self.config.budget = budget;
        self
    }

    /// Toggles capture of a resumable [`crate::SolveSnapshot`] when the
    /// solve stops early (cancellation, node budget, time budget or
    /// deadline). Off by default; the captured snapshot is returned on the
    /// solution (see [`Solution::snapshot`]).
    pub fn snapshots(mut self, enabled: bool) -> Self {
        self.config.snapshot = enabled;
        self
    }

    /// Resumes a previous solve from its snapshot instead of starting a
    /// fresh tree. The session must target the same model content and use
    /// the same search order the snapshot was captured under, or the solve
    /// fails with [`IlpError::Snapshot`]. Presolve must also match: a
    /// snapshot captured with presolve on fingerprints the *reduced*
    /// instance, so resume it from a presolve-enabled session (the
    /// default).
    pub fn resume(mut self, snapshot: Arc<crate::snapshot::SolveSnapshot>) -> Self {
        self.config.resume = Some(snapshot);
        self
    }

    /// Returns a token that cancels this session's solve. The first call
    /// installs a fresh token; later calls return clones of the same one.
    pub fn cancel_token(&mut self) -> CancelToken {
        self.config
            .cancel
            .get_or_insert_with(CancelToken::new)
            .clone()
    }

    /// Registers an event observer. Observers are invoked in registration
    /// order, synchronously from the solver thread.
    pub fn on_event(mut self, observer: impl FnMut(&SolveEvent) + 'm) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The session's solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Runs the solve.
    ///
    /// # Errors
    ///
    /// Structural model errors only; infeasibility, limits and cancellation
    /// are reported through [`Solution::status`].
    pub fn solve(mut self) -> Result<Solution, IlpError> {
        let mut observers = std::mem::take(&mut self.observers);
        if observers.is_empty() {
            return solve_with_events(self.model, &self.config, None);
        }
        let mut fan_out = |event: &SolveEvent| {
            for observer in observers.iter_mut() {
                observer(event);
            }
        };
        solve_with_events(self.model, &self.config, Some(&mut fan_out))
    }
}

impl fmt::Debug for SolveSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveSession")
            .field("model", &self.model.name())
            .field("config", &self.config)
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// The shared solve path behind [`Model::solve`] and
/// [`SolveSession::solve`]: validate, run the reducing presolve when
/// enabled, solve (streaming events into `sink`) and emit the final
/// [`SolveEvent::Done`].
pub(crate) fn solve_with_events(
    model: &Model,
    config: &SolverConfig,
    mut sink: Option<&mut dyn FnMut(&SolveEvent)>,
) -> Result<Solution, IlpError> {
    model.validate()?;
    // Forward through a fresh closure per layer: `&mut dyn FnMut` is
    // invariant, so handing the borrowed sink itself down would pin its
    // borrow past the inner call and block the final `Done` emission.
    let solution = if config.presolve {
        let reduced = crate::reduce::reduce(model, &crate::reduce::ReduceOptions::full());
        match sink.as_mut() {
            Some(sink) => {
                let mut forward = |event: &SolveEvent| sink(event);
                crate::reduce::solve_reduced_with_events(
                    model,
                    &reduced,
                    config,
                    Some(&mut forward),
                )?
            }
            None => crate::reduce::solve_reduced_with_events(model, &reduced, config, None)?,
        }
    } else {
        match sink.as_mut() {
            Some(sink) => {
                let mut forward = |event: &SolveEvent| sink(event);
                BranchAndBound::new(model, config.clone())
                    .with_event_sink(&mut forward)
                    .run()?
            }
            None => BranchAndBound::new(model, config.clone()).run()?,
        }
    };
    if let Some(sink) = sink.as_mut() {
        sink(&SolveEvent::Done {
            status: solution.status(),
            nodes: solution.stats().nodes,
            pivots: (
                solution.stats().lp_primal_pivots,
                solution.stats().lp_dual_pivots,
            ),
            pricing_pivots: (
                solution.stats().devex_pivots,
                solution.stats().dantzig_pivots,
                solution.stats().bland_pivots,
            ),
            cuts_emitted: solution.stats().cuts_emitted,
            cuts_active: solution.stats().cuts_active,
        });
    }
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn budget_from_lookup_defaults_to_unlimited() {
        let budget = Budget::from_lookup(lookup(&[])).unwrap();
        assert!(budget.is_unlimited());
        assert!(!budget.nodes_exhausted(u64::MAX - 1));
        assert!(!budget.time_expired(Instant::now()));
    }

    #[test]
    fn budget_canonical_node_var_beats_legacy_alias() {
        let both = Budget::from_lookup(lookup(&[
            ("BIST_NODE_LIMIT", "7"),
            ("BIST_SWEEP_NODES", "99"),
        ]))
        .unwrap();
        assert_eq!(both.node_limit, Some(7));
        let legacy_only = Budget::from_lookup(lookup(&[("BIST_SWEEP_NODES", "99")])).unwrap();
        assert_eq!(legacy_only.node_limit, Some(99));
    }

    #[test]
    fn budget_parse_failures_name_the_variable() {
        let err = Budget::from_lookup(lookup(&[("BIST_NODE_LIMIT", "lots")])).unwrap_err();
        assert_eq!(err.var, "BIST_NODE_LIMIT");
        assert!(err.to_string().contains("lots"));
        let err = Budget::from_lookup(lookup(&[("BIST_NODE_LIMIT", "0")])).unwrap_err();
        assert!(err.reason.contains("at least 1"));
        let err = Budget::from_lookup(lookup(&[("BIST_TIME_LIMIT_SECS", "fast")])).unwrap_err();
        assert_eq!(err.var, "BIST_TIME_LIMIT_SECS");
        let err = Budget::from_lookup(lookup(&[("BIST_TIME_LIMIT_SECS", "-3")])).unwrap_err();
        assert!(err.reason.contains("non-negative"));
        let err = Budget::from_lookup(lookup(&[("BIST_DEADLINE_SECS", "inf")])).unwrap_err();
        assert_eq!(err.var, "BIST_DEADLINE_SECS");
        // Values `Duration::from_secs_f64` would panic on must come back as
        // errors, not panics.
        let err = Budget::from_lookup(lookup(&[("BIST_TIME_LIMIT_SECS", "1e20")])).unwrap_err();
        assert!(err.reason.contains("maximum"));
        let err = Budget::from_lookup(lookup(&[("BIST_DEADLINE_SECS", "1e20")])).unwrap_err();
        assert!(err.reason.contains("maximum"));
    }

    #[test]
    fn budget_cache_and_snapshot_knobs_parse_strictly() {
        let unset = Budget::from_lookup(lookup(&[])).unwrap();
        assert_eq!(unset.cache_mb, None);
        assert_eq!(unset.snapshot, None);

        let set = Budget::from_lookup(lookup(&[("BIST_CACHE_MB", "64"), ("BIST_SNAPSHOT", "1")]))
            .unwrap();
        assert_eq!(set.cache_mb, Some(64));
        assert_eq!(set.snapshot, Some(true));
        // 0 MiB is a valid value meaning "cache disabled", not an error.
        let off = Budget::from_lookup(lookup(&[("BIST_CACHE_MB", "0"), ("BIST_SNAPSHOT", "off")]))
            .unwrap();
        assert_eq!(off.cache_mb, Some(0));
        assert_eq!(off.snapshot, Some(false));
        for raw in ["true", "on"] {
            let b = Budget::from_lookup(lookup(&[("BIST_SNAPSHOT", raw)])).unwrap();
            assert_eq!(b.snapshot, Some(true), "{raw}");
        }
        for raw in ["false", "0"] {
            let b = Budget::from_lookup(lookup(&[("BIST_SNAPSHOT", raw)])).unwrap();
            assert_eq!(b.snapshot, Some(false), "{raw}");
        }

        // Malformed values fail loudly, naming the variable.
        let err = Budget::from_lookup(lookup(&[("BIST_CACHE_MB", "plenty")])).unwrap_err();
        assert_eq!(err.var, "BIST_CACHE_MB");
        assert!(err.to_string().contains("plenty"));
        let err = Budget::from_lookup(lookup(&[("BIST_CACHE_MB", "-1")])).unwrap_err();
        assert_eq!(err.var, "BIST_CACHE_MB");
        let err = Budget::from_lookup(lookup(&[("BIST_SNAPSHOT", "yes")])).unwrap_err();
        assert_eq!(err.var, "BIST_SNAPSHOT");
        assert!(err.reason.contains("true/false"));
    }

    #[test]
    fn budget_determinism_ignores_policy_knobs() {
        assert!(Budget::nodes(10).is_deterministic());
        assert!(Budget::nodes(10).with_cache_mb(64).is_deterministic());
        assert!(!Budget::time(Duration::from_secs(1)).is_deterministic());
        assert!(!Budget::nodes(10)
            .with_deadline_in(Duration::from_secs(1))
            .is_deterministic());
        // Policy knobs do not make an unlimited budget "limited".
        assert!(Budget::unlimited()
            .with_cache_mb(1)
            .with_snapshot(true)
            .is_unlimited());
    }

    #[test]
    fn budget_time_values_are_clamped_and_deadline_is_absolute() {
        let budget = Budget::from_lookup(lookup(&[
            ("BIST_TIME_LIMIT_SECS", "0"),
            ("BIST_DEADLINE_SECS", "0"),
        ]))
        .unwrap();
        assert_eq!(budget.time_limit, Some(MIN_TIME_LIMIT));
        assert!(budget.deadline_passed());
    }

    #[test]
    fn budget_or_combinators_only_fill_gaps() {
        let budget = Budget::nodes(5)
            .or_nodes(100)
            .or_time(Duration::from_secs(9));
        assert_eq!(budget.node_limit, Some(5));
        assert_eq!(budget.time_limit, Some(Duration::from_secs(9)));
        assert!(budget.nodes_exhausted(5));
        assert!(!budget.nodes_exhausted(4));
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn session_streams_events_and_finishes_with_done() {
        // A model that needs real branching so node milestones exist.
        let mut m = Model::new("events");
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.windows(3).step_by(2) {
            m.add_geq(w.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 2.0, "need");
        }
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let mut events: Vec<SolveEvent> = Vec::new();
        let solution = SolveSession::with_config(&m, SolverConfig::exact())
            .on_event(|event| events.push(event.clone()))
            .solve()
            .unwrap();
        assert!(solution.is_optimal());
        assert!(matches!(events.last(), Some(SolveEvent::Done { .. })));
        let incumbents: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::Incumbent { objective, .. } => Some(*objective),
                _ => None,
            })
            .collect();
        assert!(!incumbents.is_empty());
        // Strictly improving in the minimisation sense, ending at the optimum.
        assert!(incumbents.windows(2).all(|w| w[1] < w[0]));
        assert!((incumbents.last().unwrap() - solution.objective()).abs() < 1e-9);
        // Dual-bound events must be strictly improving (minimisation sense:
        // strictly increasing), even across non-improving cut-round LPs.
        let bounds: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::BoundImproved { bound, .. } => Some(*bound),
                _ => None,
            })
            .collect();
        assert!(!bounds.is_empty());
        assert!(bounds.windows(2).all(|w| w[1] > w[0]));
        let milestones: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::NodeMilestone { nodes, .. } => Some(*nodes),
                _ => None,
            })
            .collect();
        assert!(!milestones.is_empty());
        assert!(milestones.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(*milestones.last().unwrap(), solution.stats().nodes);
        match events.last().unwrap() {
            SolveEvent::Done {
                status,
                nodes,
                pivots,
                pricing_pivots,
                cuts_emitted,
                cuts_active,
            } => {
                assert_eq!(*status, Status::Optimal);
                assert_eq!(*nodes, solution.stats().nodes);
                assert_eq!(pivots.0 + pivots.1, solution.stats().lp_pivots);
                // Every pivot is attributed to exactly one pricing rule.
                assert_eq!(
                    pricing_pivots.0 + pricing_pivots.1 + pricing_pivots.2,
                    solution.stats().lp_pivots
                );
                assert_eq!(*cuts_emitted, solution.stats().cuts_emitted);
                assert_eq!(*cuts_active, solution.stats().cuts_active);
                assert!(cuts_active.total() <= cuts_emitted.total());
            }
            other => panic!("unexpected final event {other:?}"),
        }
    }

    #[test]
    fn session_without_observers_matches_model_solve() {
        let mut m = Model::new("plain");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "cap");
        m.set_objective([(x, 3.0), (y, 2.0)], Sense::Maximize);
        let config = SolverConfig::exact();
        let via_session = SolveSession::with_config(&m, config.clone())
            .solve()
            .unwrap();
        let via_model = m.solve(&config).unwrap();
        assert_eq!(via_session.objective(), via_model.objective());
        assert_eq!(via_session.status(), via_model.status());
    }
}
