//! Reducing presolve: composable model-to-model transformations.
//!
//! The [`crate::presolve`] module *inspects* a model (fixed variables,
//! redundant rows) without changing it. This module goes further: it rewrites
//! the model into a smaller, tighter [`ReducedModel`] that the solver
//! explores instead, with a round-trip [`ReducedModel::lift`] that maps any
//! reduced-space assignment back to the original variable indexing (and
//! [`ReducedModel::project`] for warm starts travelling the other way).
//!
//! The pipeline composes these passes, iterated to a fixpoint:
//!
//! * **bound propagation + fixed-variable elimination** — variables forced by
//!   root propagation leave the model; their contribution folds into row
//!   right-hand sides and the objective constant,
//! * **redundant-row removal** — rows satisfied by every point of the
//!   propagated box are dropped,
//! * **clique merging** — set-packing rows (`Σ x ≤ 1` over binaries) that are
//!   dominated by a wider packing/partitioning row are dropped, and surviving
//!   packing rows are *extended* with every variable in conflict with all of
//!   their members (the ≤ 1 assignment cliques of the BIST register rows),
//! * **coefficient tightening** — knapsack-style rows over binaries get their
//!   coefficients reduced to the strongest values that keep the same integer
//!   solutions (cuts off fractional LP vertices for free),
//! * **singleton-column substitution** — an implied-free continuous variable
//!   appearing in exactly one equality row is solved out of the model,
//! * **empty-column fixing** — a variable mentioned by no row moves to its
//!   objective-cheapest bound.
//!
//! The last two passes assume the model is *final*; [`ReduceOptions::base`]
//! disables them so a reduced model can later be [`ReducedModel::extend`]ed
//! with delta rows that reference base variables — this is how the synthesis
//! engine reduces a circuit's base model once and replays every per-k BIST
//! delta through the variable map.
//!
//! Domains the pipeline tightens are written into the reduced model's
//! *declared variable bounds*, never synthesized as extra rows. The revised
//! simplex kernel keeps variable boxes implicit (nonbasic-at-bound status,
//! no bound rows at all), so a tightened declared bound flows straight into
//! the kernel's per-column bound arrays at zero matrix cost — and the
//! domain-aware LP exporter ([`crate::lpfile::to_lp_string_with_domains`])
//! is the way to round-trip such a box through the text format.

use crate::error::IlpError;
use crate::expr::LinExpr;
use crate::model::{CmpOp, Model, Sense, VarKind};
use crate::propagate::{Domains, PropagationResult, Propagator};
use crate::session::SolveEvent;
use crate::solution::{Improvement, Solution, Status};
use crate::solver::{BranchAndBound, SolverConfig};
use crate::sparse::SparseModel;
use crate::EPS;
use std::collections::BTreeSet;

/// Which passes the reduce pipeline runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceOptions {
    /// Drop rows satisfied by every point of the propagated box.
    pub remove_redundant_rows: bool,
    /// Drop dominated set-packing rows and extend packing rows to maximal
    /// cliques of the conflict graph.
    pub merge_cliques: bool,
    /// Tighten coefficients of knapsack-style rows over binary variables.
    pub coefficient_tightening: bool,
    /// Replace aggregated implication rows (`Σ aᵢ·xᵢ ≤ M·y` with
    /// `Σ aᵢ ≤ M`, and the symmetric `M·y ≤ Σ aᵢ·xᵢ` with `Σ aᵢ = M`) by
    /// their per-term implications `xᵢ ≤ y` / `y ≤ xᵢ`. Integer-equivalent
    /// but strictly tighter in the LP relaxation — this is what defuses the
    /// big-M OR-reduction rows of the BIST formulation.
    pub disaggregate_implications: bool,
    /// Solve implied-free continuous singleton columns out of equality rows.
    /// Only sound on a *final* model (no rows will be added later).
    pub substitute_continuous: bool,
    /// Fix variables that appear in no row to their objective-cheapest
    /// bound. Only sound on a *final* model.
    pub fix_empty_columns: bool,
    /// Maximum number of pipeline fixpoint rounds.
    pub max_rounds: usize,
}

impl ReduceOptions {
    /// Every pass, for a model that will be solved as-is.
    pub fn full() -> Self {
        Self {
            remove_redundant_rows: true,
            merge_cliques: true,
            coefficient_tightening: true,
            disaggregate_implications: true,
            substitute_continuous: true,
            fix_empty_columns: true,
            max_rounds: 8,
        }
    }

    /// The passes that stay sound when delta rows referencing the reduced
    /// variables are appended later (see [`ReducedModel::extend`]): every
    /// transformation is implied by the base constraints alone, so it remains
    /// valid under any additional constraints.
    pub fn base() -> Self {
        Self {
            substitute_continuous: false,
            fix_empty_columns: false,
            ..Self::full()
        }
    }
}

/// What became of one original variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarDisposition {
    /// The variable survives as reduced-model column `index`.
    Kept(usize),
    /// The variable was eliminated at this fixed value.
    Fixed(f64),
    /// The variable was solved out of an equality row; its value is
    /// recomputed from the stored substitution during [`ReducedModel::lift`].
    Substituted(usize),
}

/// Counters describing the reductions performed by the pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceReport {
    /// Variables in the (prefix of the) original model.
    pub original_vars: usize,
    /// Rows in the (prefix of the) original model.
    pub original_rows: usize,
    /// Variables eliminated at a propagation-forced value.
    pub fixed_vars: usize,
    /// Continuous variables solved out of singleton equality rows.
    pub substituted_vars: usize,
    /// Variables fixed because no row mentions them.
    pub empty_column_vars: usize,
    /// Rows dropped as redundant over the propagated box.
    pub redundant_rows: usize,
    /// Set-packing rows dropped because a wider row dominates them.
    pub dominated_rows: usize,
    /// Aggregated implication rows replaced by per-term implications.
    pub disaggregated_rows: usize,
    /// Variables added to packing rows by clique extension.
    pub clique_extensions: usize,
    /// Coefficients strengthened by the tightening pass.
    pub tightened_coefficients: usize,
    /// Pipeline rounds executed before the fixpoint (or the round cap).
    pub rounds: usize,
    /// Whether the pipeline proved the model infeasible.
    pub infeasible: bool,
}

impl ReduceReport {
    /// Fraction of original variables eliminated, in `[0, 1]`.
    pub fn var_reduction_ratio(&self) -> f64 {
        if self.original_vars == 0 {
            return 0.0;
        }
        (self.fixed_vars + self.substituted_vars + self.empty_column_vars) as f64
            / self.original_vars as f64
    }

    /// Fraction of original rows removed, in `[0, 1]`.
    pub fn row_reduction_ratio(&self) -> f64 {
        if self.original_rows == 0 {
            return 0.0;
        }
        (self.redundant_rows + self.dominated_rows) as f64 / self.original_rows as f64
    }
}

/// A recorded singleton substitution `coeff · x_var + Σ terms = rhs`.
#[derive(Debug, Clone)]
struct Substitution {
    var: usize,
    coeff: f64,
    rhs: f64,
    /// The other terms of the defining row, in original indices.
    terms: Vec<(usize, f64)>,
}

/// A reduced model together with the maps back to the original indexing.
///
/// `model` is a self-contained [`Model`]; the solver kernels (propagation,
/// simplex, branching, cuts) consume its sparse image exactly as they would
/// the original's. `var_map`/`row_map` record where every original variable
/// and row went, and [`ReducedModel::lift`] round-trips solutions.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// The reduced model.
    pub model: Model,
    /// Counters of the reductions that produced this model.
    pub report: ReduceReport,
    dispositions: Vec<VarDisposition>,
    /// Reduced column index -> original variable index.
    kept: Vec<usize>,
    /// Original row index -> reduced row index (`None` when removed).
    row_map: Vec<Option<usize>>,
    substitutions: Vec<Substitution>,
    /// Per original variable: whether its `Fixed` disposition was chosen by
    /// the *objective* (empty-column fixing) rather than implied by the
    /// constraints. Objective-driven fixings must not invalidate warm
    /// starts — see [`ReducedModel::project`].
    objective_fixed: Vec<bool>,
    /// Dimensions of the prefix this reduction was computed from.
    prefix_vars: usize,
    prefix_rows: usize,
}

impl ReducedModel {
    /// Disposition of every original variable, indexed by original index.
    pub fn var_map(&self) -> &[VarDisposition] {
        &self.dispositions
    }

    /// Reduced row index of every original row (`None` when removed).
    pub fn row_map(&self) -> &[Option<usize>] {
        &self.row_map
    }

    /// Number of original variables covered by [`ReducedModel::var_map`]
    /// (and the length of [`ReducedModel::lift`]'s output).
    pub fn original_vars(&self) -> usize {
        self.dispositions.len()
    }

    /// Number of original rows covered by [`ReducedModel::row_map`].
    pub fn original_rows(&self) -> usize {
        self.row_map.len()
    }

    /// Maps a reduced-space assignment back to the original indexing:
    /// kept variables copy their value, fixed variables take their fixed
    /// value and substituted variables are recomputed from their defining
    /// rows (in reverse substitution order, so chained substitutions
    /// resolve).
    ///
    /// # Panics
    ///
    /// Panics if `reduced_values` is shorter than the reduced model's
    /// variable count.
    pub fn lift(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dispositions.len()];
        for (j, disposition) in self.dispositions.iter().enumerate() {
            match *disposition {
                VarDisposition::Kept(r) => out[j] = reduced_values[r],
                VarDisposition::Fixed(v) => out[j] = v,
                VarDisposition::Substituted(_) => {}
            }
        }
        // A substitution's defining row only references variables that are
        // kept, fixed, or substituted *later*, so resolving in reverse
        // creation order sees every dependency already lifted.
        for sub in self.substitutions.iter().rev() {
            let rest: f64 = sub.terms.iter().map(|&(i, a)| a * out[i]).sum();
            out[sub.var] = (sub.rhs - rest) / sub.coeff;
        }
        out
    }

    /// Projects an original-space assignment onto the reduced variables, for
    /// warm starts. Returns `None` when the assignment contradicts a value
    /// the reduction fixed *because of the constraints* (such an assignment
    /// is infeasible for the original model, since every constraint-implied
    /// fixing holds in every feasible point). Disagreement on an
    /// *objective-driven* fixing (empty-column fixing picks the cheapest
    /// bound of a variable no row mentions) is tolerated: the candidate's
    /// value is simply replaced by the fixed one, which is feasible (the
    /// variable constrains nothing) and never objective-worse.
    pub fn project(&self, original_values: &[f64]) -> Option<Vec<f64>> {
        if original_values.len() != self.dispositions.len() {
            return None;
        }
        let mut out = vec![0.0; self.kept.len()];
        for (j, disposition) in self.dispositions.iter().enumerate() {
            match *disposition {
                VarDisposition::Kept(r) => out[r] = original_values[j],
                VarDisposition::Fixed(v) => {
                    if (original_values[j] - v).abs() > 1e-6 && !self.objective_fixed[j] {
                        return None;
                    }
                }
                VarDisposition::Substituted(_) => {}
            }
        }
        Some(out)
    }

    /// Builds a new reduced model for `full`, a model whose first
    /// `prefix_rows`/`prefix_vars` are exactly the prefix this reduction was
    /// computed from: the reduced prefix is cloned, the delta variables and
    /// rows are appended with every term translated through the variable map
    /// (terms on fixed variables fold into the right-hand side), and the
    /// objective of `full` is mapped the same way.
    ///
    /// This is the synthesis engine's per-k path: reduce the circuit base
    /// once, then replay each BIST delta through the map.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] if `full` is smaller than the
    /// reduced prefix, or [`IlpError::Numerical`] if a delta row references a
    /// substituted variable (impossible when the reduction was built with
    /// [`ReduceOptions::base`]).
    pub fn extend(&self, full: &Model) -> Result<ReducedModel, IlpError> {
        if full.num_vars() < self.prefix_vars || full.num_constraints() < self.prefix_rows {
            return Err(IlpError::UnknownVariable {
                index: self.prefix_vars,
                len: full.num_vars(),
            });
        }
        let mut out = self.clone();

        // Delta variables are appended unchanged and always kept.
        for def in &full.vars()[self.prefix_vars..] {
            let reduced_index = match def.kind {
                VarKind::Binary => out.model.add_binary(def.name.clone()),
                VarKind::Integer { lower, upper } => {
                    out.model.add_integer(def.name.clone(), lower, upper)
                }
                VarKind::Continuous { lower, upper } => {
                    out.model.add_continuous(def.name.clone(), lower, upper)
                }
            };
            out.kept.push(out.dispositions.len());
            out.dispositions
                .push(VarDisposition::Kept(reduced_index.index()));
            out.objective_fixed.push(false);
        }

        // Delta rows travel through the variable map.
        for constraint in &full.constraints()[self.prefix_rows..] {
            let mut expr = LinExpr::new();
            let mut rhs = constraint.rhs;
            for (var, coeff) in constraint.expr.iter() {
                match self.map_term(&out.dispositions, var.index(), &constraint.name)? {
                    MappedTerm::Var(r) => {
                        expr.add_term(crate::model::VarId(r), coeff);
                    }
                    MappedTerm::Fixed(v) => rhs -= coeff * v,
                }
            }
            let index = out
                .model
                .add_constraint(expr, constraint.op, rhs, constraint.name.clone());
            out.row_map.push(Some(index));
        }

        // Objective: kept terms map, fixed terms fold into the constant.
        let mut objective = LinExpr::constant(full.objective().offset());
        for (var, coeff) in full.objective().iter() {
            match self.map_term(&out.dispositions, var.index(), "objective")? {
                MappedTerm::Var(r) => {
                    objective.add_term(crate::model::VarId(r), coeff);
                }
                MappedTerm::Fixed(v) => {
                    objective.add_constant(coeff * v);
                }
            }
        }
        out.model.set_objective(objective, full.sense());

        out.prefix_vars = full.num_vars();
        out.prefix_rows = full.num_constraints();
        out.report.original_vars = full.num_vars();
        out.report.original_rows = full.num_constraints();
        Ok(out)
    }

    /// Chains a second reduction: `second` must have been computed (with
    /// [`reduce`]) from `self.model`. The result maps the *original* space
    /// straight to `second`'s reduced model, so one [`ReducedModel::lift`] /
    /// [`ReducedModel::project`] crosses both reductions. This is how the
    /// per-k solve composes the shared base reduction with a full-pipeline
    /// pass over the extended (base + BIST delta) model.
    ///
    /// # Panics
    ///
    /// Panics if `second` does not cover `self.model` (variable or row
    /// counts disagree).
    pub fn compose(&self, second: ReducedModel) -> ReducedModel {
        assert_eq!(
            second.original_vars(),
            self.model.num_vars(),
            "second reduction was not computed from this reduced model"
        );
        assert_eq!(second.original_rows(), self.model.num_constraints());

        let substitution_offset = self.substitutions.len();
        let dispositions: Vec<VarDisposition> = self
            .dispositions
            .iter()
            .map(|d| match *d {
                VarDisposition::Kept(r) => match second.dispositions[r] {
                    VarDisposition::Kept(r2) => VarDisposition::Kept(r2),
                    VarDisposition::Fixed(v) => VarDisposition::Fixed(v),
                    VarDisposition::Substituted(s) => {
                        VarDisposition::Substituted(substitution_offset + s)
                    }
                },
                other => other,
            })
            .collect();
        let kept: Vec<usize> = second.kept.iter().map(|&r| self.kept[r]).collect();
        let objective_fixed: Vec<bool> = self
            .dispositions
            .iter()
            .enumerate()
            .map(|(j, d)| {
                self.objective_fixed[j]
                    || matches!(*d, VarDisposition::Kept(r) if second.objective_fixed[r])
            })
            .collect();
        let row_map: Vec<Option<usize>> = self
            .row_map
            .iter()
            .map(|entry| entry.and_then(|r| second.row_map[r]))
            .collect();
        // Remap the second reduction's substitutions (stated in `self`'s
        // reduced indices) into original indices and append them after
        // `self`'s own, preserving the "later substitutions resolve first"
        // invariant of `lift`.
        let mut substitutions = self.substitutions.clone();
        substitutions.extend(second.substitutions.into_iter().map(|sub| {
            Substitution {
                var: self.kept[sub.var],
                coeff: sub.coeff,
                rhs: sub.rhs,
                terms: sub
                    .terms
                    .into_iter()
                    .map(|(r, a)| (self.kept[r], a))
                    .collect(),
            }
        }));

        let report = ReduceReport {
            original_vars: self.report.original_vars,
            original_rows: self.report.original_rows,
            fixed_vars: self.report.fixed_vars + second.report.fixed_vars,
            substituted_vars: self.report.substituted_vars + second.report.substituted_vars,
            empty_column_vars: self.report.empty_column_vars + second.report.empty_column_vars,
            redundant_rows: self.report.redundant_rows + second.report.redundant_rows,
            dominated_rows: self.report.dominated_rows + second.report.dominated_rows,
            disaggregated_rows: self.report.disaggregated_rows + second.report.disaggregated_rows,
            clique_extensions: self.report.clique_extensions + second.report.clique_extensions,
            tightened_coefficients: self.report.tightened_coefficients
                + second.report.tightened_coefficients,
            rounds: self.report.rounds + second.report.rounds,
            infeasible: self.report.infeasible || second.report.infeasible,
        };

        ReducedModel {
            model: second.model,
            report,
            dispositions,
            kept,
            row_map,
            substitutions,
            objective_fixed,
            prefix_vars: self.prefix_vars,
            prefix_rows: self.prefix_rows,
        }
    }

    fn map_term(
        &self,
        dispositions: &[VarDisposition],
        index: usize,
        location: &str,
    ) -> Result<MappedTerm, IlpError> {
        match dispositions.get(index) {
            Some(&VarDisposition::Kept(r)) => Ok(MappedTerm::Var(r)),
            Some(&VarDisposition::Fixed(v)) => Ok(MappedTerm::Fixed(v)),
            Some(&VarDisposition::Substituted(_)) => Err(IlpError::Numerical {
                message: format!("{location} references a substituted variable (index {index})"),
            }),
            None => Err(IlpError::UnknownVariable {
                index,
                len: dispositions.len(),
            }),
        }
    }
}

enum MappedTerm {
    Var(usize),
    Fixed(f64),
}

/// Runs the full pipeline on a complete model (objective included).
pub fn reduce(model: &Model, options: &ReduceOptions) -> ReducedModel {
    run_pipeline(
        model,
        model.num_constraints(),
        model.num_vars(),
        options,
        true,
    )
}

thread_local! {
    static PREFIX_REDUCTIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of [`reduce_prefix`] runs performed by the *current thread* since
/// it started. The presolve benchmark measures the delta of this counter
/// around an engine sweep to verify — rather than assume — that the shared
/// base model is reduced exactly once per circuit and never again per k.
pub fn prefix_reductions_on_thread() -> usize {
    PREFIX_REDUCTIONS.with(|c| c.get())
}

/// Runs the pipeline on the first `prefix_rows` rows / `prefix_vars`
/// variables of `model` only, ignoring the objective. The result can be
/// [`ReducedModel::extend`]ed with the remaining (or later-added) rows.
///
/// # Panics
///
/// Panics if the prefix rows reference variables outside the prefix.
pub fn reduce_prefix(
    model: &Model,
    prefix_rows: usize,
    prefix_vars: usize,
    options: &ReduceOptions,
) -> ReducedModel {
    PREFIX_REDUCTIONS.with(|c| c.set(c.get() + 1));
    run_pipeline(model, prefix_rows, prefix_vars, options, false)
}

/// One working row of the pipeline.
#[derive(Debug, Clone)]
struct WorkRow {
    terms: Vec<(usize, f64)>,
    op: CmpOp,
    rhs: f64,
    name: String,
    alive: bool,
}

impl WorkRow {
    /// Activity range of the live terms over the box.
    fn activity(&self, domains: &Domains) -> (f64, f64) {
        let mut min = 0.0;
        let mut max = 0.0;
        for &(i, a) in &self.terms {
            if a >= 0.0 {
                min += a * domains.lower(i);
                max += a * domains.upper(i);
            } else {
                min += a * domains.upper(i);
                max += a * domains.lower(i);
            }
        }
        (min, max)
    }

    fn is_redundant(&self, domains: &Domains) -> bool {
        let (min_act, max_act) = self.activity(domains);
        match self.op {
            CmpOp::Le => max_act <= self.rhs + EPS,
            CmpOp::Ge => min_act >= self.rhs - EPS,
            CmpOp::Eq => (min_act - self.rhs).abs() <= EPS && (max_act - self.rhs).abs() <= EPS,
        }
    }
}

fn run_pipeline(
    model: &Model,
    prefix_rows: usize,
    prefix_vars: usize,
    options: &ReduceOptions,
    with_objective: bool,
) -> ReducedModel {
    let mut report = ReduceReport {
        original_vars: prefix_vars,
        original_rows: prefix_rows,
        ..ReduceReport::default()
    };
    let mut domains = Domains::from_model(model);
    let mut rows: Vec<WorkRow> = model.constraints()[..prefix_rows]
        .iter()
        .map(|c| WorkRow {
            terms: c.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
            op: c.op,
            rhs: c.rhs,
            name: c.name.clone(),
            alive: true,
        })
        .collect();
    let mut substituted: Vec<Option<usize>> = vec![None; prefix_vars];
    let mut substitutions: Vec<Substitution> = Vec::new();
    // Which fixings were chosen by the objective (empty columns) instead of
    // being implied by the constraints; `project` treats them leniently.
    let mut objective_fixed: Vec<bool> = vec![false; prefix_vars];
    // Working objective (raw sense), used by the final-model passes.
    let mut obj_coeffs: Vec<f64> = vec![0.0; model.num_vars()];
    let mut obj_const = model.objective().offset();
    if with_objective {
        for (var, coeff) in model.objective().iter() {
            obj_coeffs[var.index()] = coeff;
        }
    }
    let sense_factor = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    for _ in 0..options.max_rounds {
        report.rounds += 1;
        let mut changed = false;

        // 1. Propagate the live rows to a fixpoint; forced variables become
        // eliminations at finalisation time.
        let matrix = SparseModel::from_rows(
            model.num_vars(),
            rows.iter()
                .filter(|r| r.alive)
                .map(|r| (r.terms.iter().copied(), r.op, r.rhs)),
        );
        let propagator = Propagator::from_matrix(matrix);
        if propagator.propagate(&mut domains) == PropagationResult::Infeasible {
            report.infeasible = true;
            break;
        }

        // 2. Redundant rows. Only rows of the original prefix count in the
        // report; rows appended by disaggregation are bookkeeping-free.
        if options.remove_redundant_rows {
            for (row_index, row) in rows.iter_mut().enumerate().filter(|(_, r)| r.alive) {
                if row.is_redundant(&domains) {
                    row.alive = false;
                    if row_index < prefix_rows {
                        report.redundant_rows += 1;
                    }
                    changed = true;
                }
            }
        }

        // 3. Clique merging on the ≤ 1 assignment structure.
        if options.merge_cliques {
            changed |= merge_cliques(&mut rows, &domains, &mut report);
        }

        // 4. Coefficient tightening.
        if options.coefficient_tightening {
            for row in rows.iter_mut().filter(|r| r.alive) {
                let tightened = tighten_row(row, &domains);
                if tightened > 0 {
                    report.tightened_coefficients += tightened;
                    changed = true;
                }
            }
        }

        // 5. Implication disaggregation.
        if options.disaggregate_implications {
            changed |= disaggregate(&mut rows, &domains, &mut report);
        }

        // Occurrence counts over the live rows, for the column passes.
        let needs_columns = options.substitute_continuous || options.fix_empty_columns;
        if needs_columns {
            let mut occurrence = vec![0usize; prefix_vars];
            let mut row_of_singleton = vec![usize::MAX; prefix_vars];
            for (i, row) in rows.iter().enumerate().filter(|(_, r)| r.alive) {
                for &(j, a) in &row.terms {
                    if a.abs() > EPS && substituted[j].is_none() && !domains.is_fixed(j) {
                        occurrence[j] += 1;
                        row_of_singleton[j] = i;
                    }
                }
            }

            // 6. Singleton-column substitution (final models only).
            if options.substitute_continuous {
                for j in 0..prefix_vars {
                    if occurrence[j] != 1
                        || domains.is_integral(j)
                        || domains.is_fixed(j)
                        || substituted[j].is_some()
                    {
                        continue;
                    }
                    let row_index = row_of_singleton[j];
                    if try_substitute(
                        j,
                        row_index,
                        &mut rows,
                        &domains,
                        &mut obj_coeffs,
                        &mut obj_const,
                        &mut substitutions,
                    ) {
                        substituted[j] = Some(substitutions.len() - 1);
                        report.substituted_vars += 1;
                        changed = true;
                    }
                }
            }

            // 7. Empty-column fixing (final models only).
            if options.fix_empty_columns {
                for j in 0..prefix_vars {
                    if occurrence[j] != 0 || domains.is_fixed(j) || substituted[j].is_some() {
                        continue;
                    }
                    let value = if sense_factor * obj_coeffs[j] >= 0.0 {
                        domains.lower(j)
                    } else {
                        domains.upper(j)
                    };
                    domains.fix(j, value);
                    objective_fixed[j] = true;
                    report.empty_column_vars += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    finalize(
        model,
        prefix_rows,
        prefix_vars,
        with_objective,
        domains,
        rows,
        substituted,
        substitutions,
        objective_fixed,
        obj_coeffs,
        obj_const,
        report,
    )
}

/// Drops dominated packing rows and extends packing rows to larger cliques.
fn merge_cliques(rows: &mut [WorkRow], domains: &Domains, report: &mut ReduceReport) -> bool {
    let binary = |j: usize| {
        domains.is_integral(j)
            && !domains.is_fixed(j)
            && domains.lower(j) >= -EPS
            && domains.upper(j) <= 1.0 + EPS
    };
    // Packing rows: Σ x ≤ 1 with unit coefficients over unfixed binaries
    // (terms on variables fixed at 0 vanish; a member fixed at 1 forces the
    // rest to 0 and the row dies in the redundancy pass instead).
    // Partitioning rows (Σ x = 1) dominate but are never dropped.
    let unit_support = |row: &WorkRow| -> Option<BTreeSet<usize>> {
        if row.terms.is_empty() || (row.rhs - 1.0).abs() > EPS {
            return None;
        }
        let mut support = BTreeSet::new();
        for &(j, a) in &row.terms {
            if (a - 1.0).abs() > EPS {
                return None;
            }
            if domains.is_fixed(j) {
                if domains.fixed_value(j).unwrap_or(0.0).abs() > EPS {
                    return None;
                }
                continue;
            }
            if !binary(j) {
                return None;
            }
            support.insert(j);
        }
        Some(support)
    };
    let mut packing: Vec<(usize, BTreeSet<usize>)> = Vec::new();
    let mut dominators: Vec<BTreeSet<usize>> = Vec::new();
    for (i, row) in rows.iter().enumerate().filter(|(_, r)| r.alive) {
        match row.op {
            CmpOp::Le => {
                if let Some(s) = unit_support(row) {
                    if s.len() >= 2 {
                        packing.push((i, s));
                    }
                }
            }
            CmpOp::Eq => {
                if let Some(s) = unit_support(row) {
                    dominators.push(s);
                }
            }
            CmpOp::Ge => {}
        }
    }
    if packing.is_empty() {
        return false;
    }

    // Conflict graph: every pair inside a packing/partitioning support, plus
    // two-variable knapsack rows that exclude the (1, 1) point.
    let mut adjacency: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); domains.len()];
    let add_clique = |support: &BTreeSet<usize>, adjacency: &mut Vec<BTreeSet<usize>>| {
        let members: Vec<usize> = support.iter().copied().collect();
        for (a, &x) in members.iter().enumerate() {
            for &y in &members[a + 1..] {
                adjacency[x].insert(y);
                adjacency[y].insert(x);
            }
        }
    };
    for (_, s) in &packing {
        add_clique(s, &mut adjacency);
    }
    for s in &dominators {
        add_clique(s, &mut adjacency);
    }
    for row in rows.iter().filter(|r| r.alive) {
        let (sign, rhs) = match row.op {
            CmpOp::Le => (1.0, row.rhs),
            CmpOp::Ge => (-1.0, -row.rhs),
            CmpOp::Eq => continue,
        };
        if row.terms.len() == 2 {
            let (x, ax) = row.terms[0];
            let (y, ay) = row.terms[1];
            let (ax, ay) = (sign * ax, sign * ay);
            if ax > EPS && ay > EPS && ax + ay > rhs + EPS && ax <= rhs + EPS && ay <= rhs + EPS {
                // x = y = 1 violates the row while each alone is allowed.
                if binary(x) && binary(y) {
                    adjacency[x].insert(y);
                    adjacency[y].insert(x);
                }
            }
        }
    }

    let mut changed = false;

    // Dominance: a packing row implied by a wider packing/partitioning row.
    let mut dead: Vec<bool> = vec![false; packing.len()];
    for a in 0..packing.len() {
        if dead[a] {
            continue;
        }
        let dominated_by_eq = dominators.iter().any(|d| packing[a].1.is_subset(d));
        if dominated_by_eq {
            dead[a] = true;
        } else {
            for b in 0..packing.len() {
                if a == b || dead[b] {
                    continue;
                }
                let subset = packing[a].1.is_subset(&packing[b].1);
                // On equal supports keep the earlier row.
                if subset && (packing[a].1.len() < packing[b].1.len() || b < a) {
                    dead[a] = true;
                    break;
                }
            }
        }
        if dead[a] {
            rows[packing[a].0].alive = false;
            report.dominated_rows += 1;
            changed = true;
        }
    }

    // Clique extension on the survivors: add every variable in conflict with
    // all current members (ascending index for determinism).
    for (a, (row_index, support)) in packing.iter().enumerate() {
        if dead[a] {
            continue;
        }
        let mut members: Vec<usize> = support.iter().copied().collect();
        let mut added = Vec::new();
        let candidates: Vec<usize> = adjacency[members[0]]
            .iter()
            .copied()
            .filter(|c| !support.contains(c) && binary(*c))
            .collect();
        for c in candidates {
            if members.iter().all(|&m| adjacency[c].contains(&m)) {
                members.push(c);
                added.push(c);
            }
        }
        if !added.is_empty() {
            let row = &mut rows[*row_index];
            for c in added {
                row.terms.push((c, 1.0));
                report.clique_extensions += 1;
            }
            row.terms.sort_unstable_by_key(|&(j, _)| j);
            changed = true;
        }
    }
    changed
}

/// Tightens the coefficients of binary variables in a knapsack-style row.
/// Returns how many coefficients were strengthened.
fn tighten_row(row: &mut WorkRow, domains: &Domains) -> usize {
    let sign = match row.op {
        CmpOp::Le => 1.0,
        CmpOp::Ge => -1.0,
        CmpOp::Eq => return 0,
    };
    let mut tightened = 0;
    loop {
        // Normalised view: Σ (sign·a_i)·x_i ≤ sign·rhs. `umax - rhs` is
        // invariant under each application, so every term tightens at most
        // once and the loop terminates.
        let (min_act, max_act) = row.activity(domains);
        let (umax, rhs) = if sign > 0.0 {
            (max_act, row.rhs)
        } else {
            (-min_act, -row.rhs)
        };
        if umax <= rhs + EPS {
            return tightened; // redundant; the row pass will drop it
        }
        let mut applied = false;
        for t in 0..row.terms.len() {
            let (j, raw) = row.terms[t];
            let a = sign * raw;
            let is_binary = domains.is_integral(j)
                && !domains.is_fixed(j)
                && domains.lower(j).abs() <= EPS
                && (domains.upper(j) - 1.0).abs() <= EPS;
            if !is_binary || a <= EPS {
                continue;
            }
            if umax - a <= rhs + EPS && umax > rhs + EPS {
                let new_a = umax - rhs;
                let new_rhs = umax - a;
                if new_a < a - 1e-9 {
                    row.terms[t].1 = sign * new_a;
                    row.rhs = sign * new_rhs;
                    tightened += 1;
                    applied = true;
                    break;
                }
            }
        }
        if !applied {
            return tightened;
        }
    }
}

/// Replaces aggregated implication rows by their per-term implications.
///
/// In the ≤-normalised view `Σ cᵢ·xᵢ ≤ 0` over unfixed binaries:
///
/// * exactly one negative term `−M·y` and positives with `Σ aᵢ ≤ M`
///   (`Σ aᵢ·xᵢ ≤ M·y`, the big-M OR "up" rows) becomes `xᵢ ≤ y` per term;
/// * exactly one positive term `M·y` and negatives with `Σ aᵢ = M` and
///   `Σ aᵢ − min aᵢ < M` (`M·y ≤ Σ aᵢ·xᵢ`, the AND rows) becomes `y ≤ xᵢ`.
///
/// Both replacements keep the 0-1 solution set and strictly tighten the LP
/// relaxation, which is where the aggregated rows hurt: the relaxation could
/// park the indicator at `Σ/M` instead of at the maximum (minimum) of its
/// terms.
fn disaggregate(rows: &mut Vec<WorkRow>, domains: &Domains, report: &mut ReduceReport) -> bool {
    let binary = |j: usize| {
        domains.is_integral(j)
            && !domains.is_fixed(j)
            && domains.lower(j).abs() <= EPS
            && (domains.upper(j) - 1.0).abs() <= EPS
    };
    let mut appended: Vec<WorkRow> = Vec::new();
    let mut changed = false;
    for row in rows.iter_mut().filter(|r| r.alive) {
        let sign = match row.op {
            CmpOp::Le => 1.0,
            CmpOp::Ge => -1.0,
            CmpOp::Eq => continue,
        };
        if (sign * row.rhs).abs() > EPS {
            continue;
        }
        // Split the live terms of the normalised view; skip the row if any
        // term sits on a fixed variable with a non-zero value (propagation
        // will simplify it first) or on a non-binary variable.
        let mut positives: Vec<(usize, f64)> = Vec::new();
        let mut negatives: Vec<(usize, f64)> = Vec::new();
        let mut eligible = true;
        for &(j, raw) in &row.terms {
            let c = sign * raw;
            if domains.is_fixed(j) {
                if domains.fixed_value(j).unwrap_or(0.0).abs() > EPS {
                    eligible = false;
                    break;
                }
                continue; // fixed at zero: the term vanishes
            }
            if !binary(j) || c.abs() <= EPS {
                eligible = false;
                break;
            }
            if c > 0.0 {
                positives.push((j, c));
            } else {
                negatives.push((j, -c));
            }
        }
        if !eligible {
            continue;
        }
        let (indicator, indicator_first, terms) = if negatives.len() == 1 && positives.len() >= 2 {
            // Σ aᵢ·xᵢ ≤ M·y: xᵢ = 1 forces y = 1; equivalent when Σ aᵢ ≤ M.
            let (y, m) = negatives[0];
            let total: f64 = positives.iter().map(|&(_, a)| a).sum();
            if total > m + EPS {
                continue;
            }
            (y, false, positives)
        } else if positives.len() == 1 && negatives.len() >= 2 {
            // M·y ≤ Σ aᵢ·xᵢ: equivalent to y ≤ xᵢ when Σ aᵢ = M and no
            // single term can be dropped without falling below M.
            let (y, m) = positives[0];
            let total: f64 = negatives.iter().map(|&(_, a)| a).sum();
            let min = negatives
                .iter()
                .map(|&(_, a)| a)
                .fold(f64::INFINITY, f64::min);
            if (total - m).abs() > EPS || total - min >= m - EPS {
                continue;
            }
            (y, true, negatives)
        } else {
            continue;
        };
        row.alive = false;
        report.disaggregated_rows += 1;
        changed = true;
        for (index, (x, _)) in terms.into_iter().enumerate() {
            // `x − y ≤ 0` (up rows) or `y − x ≤ 0` (and rows).
            let (first, second) = if indicator_first {
                (indicator, x)
            } else {
                (x, indicator)
            };
            appended.push(WorkRow {
                terms: vec![(first, 1.0), (second, -1.0)],
                op: CmpOp::Le,
                rhs: 0.0,
                name: format!("{}_dis{}", row.name, index),
                alive: true,
            });
        }
    }
    rows.extend(appended);
    changed
}

/// Attempts to solve continuous singleton `var` out of `rows[row_index]`.
fn try_substitute(
    var: usize,
    row_index: usize,
    rows: &mut [WorkRow],
    domains: &Domains,
    obj_coeffs: &mut [f64],
    obj_const: &mut f64,
    substitutions: &mut Vec<Substitution>,
) -> bool {
    let row = &rows[row_index];
    if !row.alive || row.op != CmpOp::Eq {
        return false;
    }
    let coeff = row
        .terms
        .iter()
        .find(|&&(j, _)| j == var)
        .map(|&(_, a)| a)
        .unwrap_or(0.0);
    if coeff.abs() <= EPS {
        return false;
    }
    // Implied-free check: the bounds the row forces on `var` (given the
    // others' boxes) must lie inside its declared bounds, otherwise dropping
    // the row would lose the bound constraints.
    let terms: Vec<(usize, f64)> = row
        .terms
        .iter()
        .copied()
        .filter(|&(j, _)| j != var)
        .collect();
    let (mut rest_min, mut rest_max) = (0.0, 0.0);
    for &(i, a) in &terms {
        if a >= 0.0 {
            rest_min += a * domains.lower(i);
            rest_max += a * domains.upper(i);
        } else {
            rest_min += a * domains.upper(i);
            rest_max += a * domains.lower(i);
        }
    }
    let (implied_lo, implied_hi) = if coeff > 0.0 {
        ((row.rhs - rest_max) / coeff, (row.rhs - rest_min) / coeff)
    } else {
        ((row.rhs - rest_min) / coeff, (row.rhs - rest_max) / coeff)
    };
    if implied_lo < domains.lower(var) - EPS || implied_hi > domains.upper(var) + EPS {
        return false;
    }
    // Fold the objective: c·x = c·(rhs − Σ a_i x_i)/coeff.
    let c = obj_coeffs[var];
    if c != 0.0 {
        *obj_const += c * row.rhs / coeff;
        for &(i, a) in &terms {
            obj_coeffs[i] -= c * a / coeff;
        }
        obj_coeffs[var] = 0.0;
    }
    let rhs = row.rhs;
    rows[row_index].alive = false;
    substitutions.push(Substitution {
        var,
        coeff,
        rhs,
        terms,
    });
    true
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    model: &Model,
    prefix_rows: usize,
    prefix_vars: usize,
    with_objective: bool,
    domains: Domains,
    rows: Vec<WorkRow>,
    substituted: Vec<Option<usize>>,
    substitutions: Vec<Substitution>,
    objective_fixed: Vec<bool>,
    obj_coeffs: Vec<f64>,
    obj_const: f64,
    mut report: ReduceReport,
) -> ReducedModel {
    let mut reduced = Model::new(format!("{}_reduced", model.name()));
    let mut dispositions: Vec<VarDisposition> = Vec::with_capacity(prefix_vars);
    let mut kept: Vec<usize> = Vec::new();
    for (j, def) in model.vars()[..prefix_vars].iter().enumerate() {
        if let Some(s) = substituted[j] {
            dispositions.push(VarDisposition::Substituted(s));
            continue;
        }
        if domains.is_fixed(j) {
            let value = domains.fixed_value(j).unwrap_or(domains.lower(j));
            dispositions.push(VarDisposition::Fixed(value));
            continue;
        }
        let (lo, hi) = (domains.lower(j), domains.upper(j));
        let id = match def.kind {
            VarKind::Binary if lo.abs() <= EPS && (hi - 1.0).abs() <= EPS => {
                reduced.add_binary(def.name.clone())
            }
            VarKind::Binary | VarKind::Integer { .. } => {
                reduced.add_integer(def.name.clone(), lo.round() as i64, hi.round() as i64)
            }
            VarKind::Continuous { .. } => reduced.add_continuous(def.name.clone(), lo, hi),
        };
        dispositions.push(VarDisposition::Kept(id.index()));
        kept.push(j);
    }
    report.fixed_vars = dispositions
        .iter()
        .filter(|d| matches!(d, VarDisposition::Fixed(_)))
        .count()
        .saturating_sub(report.empty_column_vars);

    // The first `prefix_rows` entries are the original rows (tracked in the
    // row map); anything beyond was appended by disaggregation.
    let mut row_map: Vec<Option<usize>> = Vec::with_capacity(prefix_rows);
    for (row_index, row) in rows.iter().enumerate() {
        let original = row_index < prefix_rows;
        if !row.alive {
            if original {
                row_map.push(None);
            }
            continue;
        }
        let mut expr = LinExpr::new();
        let mut rhs = row.rhs;
        for &(j, a) in &row.terms {
            match dispositions[j] {
                VarDisposition::Kept(r) => {
                    expr.add_term(crate::model::VarId(r), a);
                }
                VarDisposition::Fixed(v) => rhs -= a * v,
                VarDisposition::Substituted(_) => unreachable!("substituted var in a live row"),
            }
        }
        if expr.is_empty() {
            // All terms were eliminated: the row is either vacuous or proof
            // of infeasibility.
            let satisfied = match row.op {
                CmpOp::Le => 0.0 <= rhs + EPS,
                CmpOp::Ge => 0.0 >= rhs - EPS,
                CmpOp::Eq => rhs.abs() <= EPS,
            };
            if !satisfied {
                report.infeasible = true;
            }
            if original {
                report.redundant_rows += 1;
                row_map.push(None);
            }
            continue;
        }
        let index = reduced.add_constraint(expr, row.op, rhs, row.name.clone());
        if original {
            row_map.push(Some(index));
        }
    }

    if with_objective {
        let mut objective = LinExpr::constant(obj_const);
        for (j, disposition) in dispositions.iter().enumerate() {
            let c = obj_coeffs[j];
            if c == 0.0 {
                continue;
            }
            match *disposition {
                VarDisposition::Kept(r) => {
                    objective.add_term(crate::model::VarId(r), c);
                }
                VarDisposition::Fixed(v) => {
                    objective.add_constant(c * v);
                }
                VarDisposition::Substituted(_) => {}
            }
        }
        reduced.set_objective(objective, model.sense());
    }

    ReducedModel {
        model: reduced,
        report,
        dispositions,
        kept,
        row_map,
        substitutions,
        objective_fixed,
        prefix_vars,
        prefix_rows,
    }
}

/// Solves `reduced` (a reduction of `original`) and lifts the result back to
/// the original variable indexing: warm-start candidates are projected into
/// the reduced space, the branch and bound runs on the reduced model (cut
/// pool included, per the configuration), and the returned [`Solution`]
/// carries original-space values and the original-space objective.
///
/// When the reduction decided every variable, the solve is skipped entirely
/// and the lifted assignment is returned as optimal with a root (`nodes = 0`)
/// incumbent improvement, so time-to-target metrics see root-solved
/// instances.
///
/// # Errors
///
/// Propagates structural solver errors, exactly like [`Model::solve`].
pub fn solve_reduced(
    original: &Model,
    reduced: &ReducedModel,
    config: &SolverConfig,
) -> Result<Solution, IlpError> {
    solve_reduced_with_events(original, reduced, config, None)
}

/// [`solve_reduced`] with a live [`SolveEvent`] sink threaded into the
/// branch and bound over the reduced model. Incumbent objectives streamed
/// from the reduced search match the lifted original-space objectives (the
/// reduction folds eliminated terms into the objective constant), so
/// observers never see reduced-space values.
///
/// # Errors
///
/// Same contract as [`solve_reduced`].
pub fn solve_reduced_with_events(
    original: &Model,
    reduced: &ReducedModel,
    config: &SolverConfig,
    mut sink: Option<&mut dyn FnMut(&SolveEvent)>,
) -> Result<Solution, IlpError> {
    let vars_removed = reduced
        .original_vars()
        .saturating_sub(reduced.model.num_vars()) as u64;
    // Count the *original* rows the pipeline eliminated or replaced, not the
    // net size delta: disaggregation replaces one aggregated row with several
    // implications, which would otherwise mask genuine removals (or clamp
    // the stat to zero entirely).
    let rows_removed = (reduced.report.redundant_rows
        + reduced.report.dominated_rows
        + reduced.report.disaggregated_rows) as u64;

    if reduced.report.infeasible {
        let stats = crate::solution::SolveStats {
            best_bound: f64::INFINITY,
            gap: f64::INFINITY,
            presolve_vars_removed: vars_removed,
            presolve_rows_removed: rows_removed,
            ..Default::default()
        };
        return Ok(Solution::without_values(Status::Infeasible, stats));
    }

    if reduced.model.num_vars() == 0 {
        // The pipeline decided everything at the root.
        let lifted = reduced.lift(&[]);
        let objective = original.objective_value(&lifted);
        let stats = crate::solution::SolveStats {
            best_bound: objective,
            presolve_vars_removed: vars_removed,
            presolve_rows_removed: rows_removed,
            improvements: vec![Improvement {
                nodes: 0,
                seconds: 0.0,
                objective,
                source: "presolve",
            }],
            ..Default::default()
        };
        if let Some(sink) = sink.as_mut() {
            sink(&SolveEvent::Incumbent {
                nodes: 0,
                objective,
            });
        }
        return Ok(Solution::new(Status::Optimal, lifted, objective, stats));
    }

    let mut inner_config = config.clone();
    inner_config.initial_solution = config
        .initial_solution
        .as_ref()
        .and_then(|v| reduced.project(v));
    inner_config.initial_solutions = config
        .initial_solutions
        .iter()
        .filter_map(|v| reduced.project(v))
        .collect();

    let inner = match sink.as_mut() {
        Some(sink) => {
            // Fresh forwarding closure: see `session::solve_with_events`.
            let mut forward = |event: &SolveEvent| sink(event);
            BranchAndBound::new(&reduced.model, inner_config)
                .with_event_sink(&mut forward)
                .run()?
        }
        None => BranchAndBound::new(&reduced.model, inner_config).run()?,
    };
    let mut stats = inner.stats().clone();
    stats.presolve_vars_removed = vars_removed;
    stats.presolve_rows_removed = rows_removed;
    let status = inner.status();
    // The snapshot (if any) describes the *reduced* instance and survives
    // the lift as-is: resuming re-runs the same deterministic reduction,
    // so the snapshot meets the very tree it was captured from.
    let snapshot = inner.shared_snapshot();
    // `is_feasible` (not `has_solution`): an interrupted inner search still
    // carries its best incumbent, which must survive the lift.
    if inner.is_feasible() {
        let lifted = reduced.lift(inner.values());
        let objective = original.objective_value(&lifted);
        Ok(Solution::new(status, lifted, objective, stats).with_snapshot(snapshot))
    } else {
        Ok(Solution::without_values(status, stats).with_snapshot(snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn solve_both(model: &Model) -> (Solution, Solution) {
        let raw = BranchAndBound::new(
            model,
            SolverConfig {
                presolve: false,
                cuts: false,
                ..SolverConfig::exact()
            },
        )
        .run()
        .unwrap();
        let reduced = reduce(model, &ReduceOptions::full());
        let via = solve_reduced(model, &reduced, &SolverConfig::exact()).unwrap();
        (raw, via)
    }

    #[test]
    fn fixed_variables_are_eliminated_and_lifted() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_geq([(x, 1.0)], 1.0, "fix_x");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "x_excludes_y");
        m.add_leq([(z, 1.0)], 1.0, "slack");
        m.set_objective([(z, 1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(!reduced.report.infeasible);
        // x = 1 and y = 0 are eliminated; the slack row is redundant; z has
        // no live row left so the empty-column pass fixes it too.
        assert_eq!(reduced.model.num_vars(), 0);
        assert!(matches!(
            reduced.var_map()[x.index()],
            VarDisposition::Fixed(v) if (v - 1.0).abs() < 1e-9
        ));
        assert!(matches!(
            reduced.var_map()[y.index()],
            VarDisposition::Fixed(v) if v.abs() < 1e-9
        ));
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert!(sol.is_optimal());
        assert_eq!(sol.values(), &[1.0, 0.0, 0.0]);
        assert_eq!(sol.objective(), 0.0);
        assert_eq!(sol.stats().improvements.len(), 1);
        assert_eq!(sol.stats().improvements[0].nodes, 0);
    }

    #[test]
    fn reduced_solve_matches_raw_solve() {
        // A small model exercising fixing, redundancy and tightening at once.
        let mut m = Model::new("m");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.add_leq([(a, 1.0), (d, 1.0)], 1.0, "pack");
        m.add_geq([(b, 1.0), (c, 1.0), (d, 1.0)], 1.0, "cover");
        m.set_objective(
            [(a, -6.0), (b, -5.0), (c, -4.0), (d, -1.0)],
            Sense::Minimize,
        );
        let (raw, via) = solve_both(&m);
        assert!(raw.is_optimal() && via.is_optimal());
        assert!((raw.objective() - via.objective()).abs() < 1e-6);
        assert!(m.is_feasible(via.values(), 1e-6));
    }

    #[test]
    fn dominated_packing_rows_are_dropped() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "small");
        m.add_leq([(x, 1.0), (y, 1.0), (z, 1.0)], 1.0, "wide");
        m.set_objective([(x, -1.0), (y, -1.0), (z, -1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(reduced.report.dominated_rows >= 1);
        assert_eq!(reduced.model.num_constraints(), 1);
        assert_eq!(reduced.row_map()[0], None);
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn clique_extension_strengthens_pairwise_conflicts() {
        // Pairwise x+y ≤ 1, y+z ≤ 1, x+z ≤ 1 merge into one clique row.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "xy");
        m.add_leq([(y, 1.0), (z, 1.0)], 1.0, "yz");
        m.add_leq([(x, 1.0), (z, 1.0)], 1.0, "xz");
        m.set_objective([(x, -1.0), (y, -1.0), (z, -1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(reduced.report.clique_extensions >= 1);
        assert!(reduced.report.dominated_rows >= 2);
        assert_eq!(reduced.model.num_constraints(), 1);
        let row = &reduced.model.constraints()[0];
        assert_eq!(row.expr.len(), 3);
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert!((sol.objective() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_tightening_preserves_integer_solutions() {
        // 3x + 3y ≤ 5 over binaries has the same 0-1 points as x + y ≤ 1 but
        // a weaker LP relaxation; tightening must strengthen the row.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 3.0), (y, 3.0)], 5.0, "knap");
        m.set_objective([(x, -2.0), (y, -1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(reduced.report.tightened_coefficients >= 1);
        let row = &reduced.model.constraints()[0];
        let max_activity: f64 = row.expr.iter().map(|(_, c)| c.max(0.0)).sum();
        assert!(
            max_activity <= row.rhs + 1.0 + 1e-9,
            "tightened to a clique"
        );
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn continuous_singleton_is_substituted_and_lifted() {
        // w appears only in the equality w + x + y = 2 and is implied free.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let w = m.add_continuous("w", 0.0, 2.0);
        m.add_eq([(w, 1.0), (x, 1.0), (y, 1.0)], 2.0, "def_w");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "use_xy");
        m.set_objective([(w, 1.0), (x, 3.0), (y, 3.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert_eq!(reduced.report.substituted_vars, 1);
        assert!(matches!(
            reduced.var_map()[w.index()],
            VarDisposition::Substituted(_)
        ));
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert!(sol.is_optimal());
        assert!(m.is_feasible(sol.values(), 1e-6));
        // Optimal: one of x/y at 1, w = 1 → 1 + 3 = 4.
        assert!((sol.objective() - 4.0).abs() < 1e-6);
        assert!((sol.values()[w.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_models_are_detected() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 1.0, "up");
        m.add_leq([(x, 1.0)], 0.0, "down");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(reduced.report.infeasible);
        let sol = solve_reduced(&m, &reduced, &SolverConfig::exact()).unwrap();
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    fn base_reduction_extends_with_delta_rows() {
        // Base: x fixed by its rows, y free. Delta references both x (fixed)
        // and a new variable.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0)], 1.0, "fix_x");
        let base = reduce_prefix(
            &m,
            m.num_constraints(),
            m.num_vars(),
            &ReduceOptions::base(),
        );
        assert!(matches!(
            base.var_map()[x.index()],
            VarDisposition::Fixed(_)
        ));
        assert!(matches!(base.var_map()[y.index()], VarDisposition::Kept(_)));

        // The delta adds z and the row x + y + z ≥ 2 (⇒ y + z ≥ 1).
        let z = m.add_binary("z");
        m.add_geq([(x, 1.0), (y, 1.0), (z, 1.0)], 2.0, "delta");
        m.set_objective([(y, 1.0), (z, 2.0)], Sense::Minimize);
        let extended = base.extend(&m).unwrap();
        assert_eq!(extended.original_vars(), 3);
        assert_eq!(extended.model.num_vars(), 2); // y and z
        let delta_row = extended.model.constraints().last().unwrap();
        assert!((delta_row.rhs - 1.0).abs() < 1e-9, "x folded into the rhs");
        let sol = solve_reduced(&m, &extended, &SolverConfig::exact()).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() - 1.0).abs() < 1e-9); // y = 1, z = 0
        assert_eq!(sol.values(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn projection_rejects_contradicting_warm_starts() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0)], 1.0, "fix_x");
        m.add_leq([(y, 1.0)], 1.0, "slack");
        m.set_objective([(y, 1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::base());
        assert!(reduced.project(&[0.0, 1.0]).is_none(), "x must be 1");
        let projected = reduced.project(&[1.0, 1.0]).unwrap();
        assert_eq!(projected.len(), reduced.model.num_vars());
    }

    #[test]
    fn projection_tolerates_objective_driven_empty_column_fixings() {
        // z appears only in a redundant row, so the full pipeline fixes it
        // to its cheapest bound (0). A feasible warm start carrying z = 1
        // must NOT be rejected — the fixing is an objective choice, not a
        // constraint implication — and the surviving candidate must still
        // drive the solve to the optimum.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "cover");
        m.add_leq([(z, 1.0)], 1.0, "slack_only_z");
        m.set_objective([(x, 1.0), (y, 2.0), (z, 1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        assert!(matches!(
            reduced.var_map()[z.index()],
            VarDisposition::Fixed(v) if v.abs() < 1e-9
        ));
        let warm = vec![1.0, 0.0, 1.0]; // feasible, z at the expensive bound
        assert!(m.is_feasible(&warm, 1e-6));
        let projected = reduced.project(&warm).expect("warm start survives");
        assert_eq!(projected.len(), reduced.model.num_vars());
        let config = SolverConfig::exact().with_initial_solution(warm);
        let sol = solve_reduced(&m, &reduced, &config).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective() - 1.0).abs() < 1e-9);
        // Constraint-implied fixings still reject contradicting candidates.
        let mut m2 = Model::new("m2");
        let a = m2.add_binary("a");
        m2.add_geq([(a, 1.0)], 1.0, "force");
        m2.set_objective([(a, 1.0)], Sense::Minimize);
        let r2 = reduce(&m2, &ReduceOptions::full());
        assert!(r2.project(&[0.0]).is_none());
    }

    #[test]
    fn report_ratios_are_bounded() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 1.0, "fix");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let reduced = reduce(&m, &ReduceOptions::full());
        let report = &reduced.report;
        assert!(report.var_reduction_ratio() > 0.0);
        assert!(report.var_reduction_ratio() <= 1.0);
        assert!(report.row_reduction_ratio() <= 1.0);
        assert!(report.rounds >= 1);
    }
}
