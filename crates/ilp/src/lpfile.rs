//! CPLEX LP-format writer.
//!
//! The DAC'99 authors solved their formulations with CPLEX 6.0. This module
//! serialises a [`Model`] into the (still current) CPLEX LP text format so a
//! generated BIST model can be inspected by hand or handed to an external
//! solver for cross-checking our built-in branch and bound.

use crate::model::{CmpOp, Model, Sense, VarKind};
use crate::propagate::Domains;
use std::fmt::Write as _;

/// Renders the model in CPLEX LP format with an explicit `Bounds` section
/// for **every** variable, taken from `domains` instead of the declared
/// variable kinds.
///
/// Since the revised simplex kernel keeps tightened domains purely implicit
/// (no bound rows exist anywhere in the matrix), this is the only way a
/// mid-search or post-presolve model state can round-trip through the LP
/// text format: pass the current [`Domains`] and the tightened box is
/// written out verbatim — including for binaries, which the plain
/// [`to_lp_string`] leaves to the `Binaries` section's implied `[0, 1]`.
///
/// # Panics
///
/// Panics if `domains.len() != model.num_vars()`.
pub fn to_lp_string_with_domains(model: &Model, domains: &Domains) -> String {
    assert_eq!(
        domains.len(),
        model.num_vars(),
        "domains must describe exactly the model's variables"
    );
    render(model, Some(domains))
}

/// Renders the model in CPLEX LP format.
///
/// Variable names are sanitised (characters outside `[A-Za-z0-9_]` become
/// `_`) and deduplicated by suffixing the variable index, because the LP
/// format requires unique identifiers.
pub fn to_lp_string(model: &Model) -> String {
    render(model, None)
}

fn render(model: &Model, domains: Option<&Domains>) -> String {
    let names: Vec<String> = model
        .vars()
        .iter()
        .enumerate()
        .map(|(i, v)| sanitize(&v.name, i))
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "\\ Problem: {}", model.name());
    match model.sense() {
        Sense::Minimize => out.push_str("Minimize\n"),
        Sense::Maximize => out.push_str("Maximize\n"),
    }
    out.push_str(" obj:");
    if model.objective().is_empty() {
        out.push_str(" 0");
    } else {
        for (var, coeff) in model.objective().iter() {
            append_term(&mut out, coeff, &names[var.index()]);
        }
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let cname = sanitize(&c.name, i);
        let _ = write!(out, " c{i}_{cname}:");
        if c.expr.is_empty() {
            out.push_str(" 0");
        }
        for (var, coeff) in c.expr.iter() {
            append_term(&mut out, coeff, &names[var.index()]);
        }
        let op = match c.op {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", c.rhs);
    }

    out.push_str("Bounds\n");
    for (i, v) in model.vars().iter().enumerate() {
        match domains {
            // Domain-aware export: the tightened box of every variable,
            // binaries included (their tightenings live nowhere else).
            Some(domains) => {
                let _ = writeln!(
                    out,
                    " {} <= {} <= {}",
                    domains.lower(i),
                    names[i],
                    domains.upper(i)
                );
            }
            None => match v.kind {
                VarKind::Binary => {}
                VarKind::Integer { lower, upper } => {
                    let _ = writeln!(out, " {lower} <= {} <= {upper}", names[i]);
                }
                VarKind::Continuous { lower, upper } => {
                    let _ = writeln!(out, " {lower} <= {} <= {upper}", names[i]);
                }
            },
        }
    }

    let generals: Vec<&str> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v.kind, VarKind::Integer { .. }))
        .map(|(i, _)| names[i].as_str())
        .collect();
    if !generals.is_empty() {
        out.push_str("Generals\n");
        for name in generals {
            let _ = writeln!(out, " {name}");
        }
    }

    let binaries: Vec<&str> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v.kind, VarKind::Binary))
        .map(|(i, _)| names[i].as_str())
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binaries\n");
        for name in binaries {
            let _ = writeln!(out, " {name}");
        }
    }

    out.push_str("End\n");
    out
}

fn append_term(out: &mut String, coeff: f64, name: &str) {
    if coeff >= 0.0 {
        let _ = write!(out, " + {coeff} {name}");
    } else {
        let _ = write!(out, " - {} {name}", -coeff);
    }
}

/// A constraint read back from LP text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedConstraint {
    /// Label of the constraint (the part before the `:`).
    pub name: String,
    /// `(variable name, coefficient)` terms in text order.
    pub terms: Vec<(String, f64)>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A structural image of an LP-format file, as produced by
/// [`parse_lp`]. Covers the subset of the format [`to_lp_string`] emits,
/// which is enough to round-trip-check any model this crate writes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedLp {
    /// Problem name from the leading comment, if present.
    pub name: String,
    /// Whether the objective is maximised.
    pub maximize: bool,
    /// `(variable name, coefficient)` objective terms.
    pub objective: Vec<(String, f64)>,
    /// The constraints, in file order.
    pub constraints: Vec<ParsedConstraint>,
    /// Explicit `lower <= name <= upper` bounds, in file order.
    pub bounds: Vec<(String, f64, f64)>,
    /// Names listed in the `Generals` section.
    pub generals: Vec<String>,
    /// Names listed in the `Binaries` section.
    pub binaries: Vec<String>,
}

impl ParsedLp {
    /// Number of distinct variable names mentioned anywhere in the file.
    pub fn num_vars(&self) -> usize {
        let mut names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        names.extend(self.objective.iter().map(|(n, _)| n.as_str()));
        for c in &self.constraints {
            names.extend(c.terms.iter().map(|(n, _)| n.as_str()));
        }
        names.extend(self.bounds.iter().map(|(n, _, _)| n.as_str()));
        names.extend(self.generals.iter().map(String::as_str));
        names.extend(self.binaries.iter().map(String::as_str));
        names.len()
    }
}

/// Parses LP-format text (the dialect [`to_lp_string`] writes) back into a
/// structural summary, so tests can assert that variable/constraint counts,
/// bounds and integrality sections survive a write/read round trip.
///
/// # Errors
///
/// Returns [`crate::error::IlpError::Parse`] with the offending line on malformed input.
pub fn parse_lp(text: &str) -> Result<ParsedLp, crate::error::IlpError> {
    use crate::error::IlpError;

    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Preamble,
        Objective,
        Constraints,
        Bounds,
        Generals,
        Binaries,
        Done,
    }

    let fail = |line: usize, message: &str| IlpError::Parse {
        line,
        message: message.to_string(),
    };
    let parse_f64 = |token: &str, line: usize| {
        token
            .parse::<f64>()
            .map_err(|_| fail(line, &format!("expected a number, found `{token}`")))
    };
    // Parses a `+ c name - c name ...` term sequence; returns the terms and
    // any trailing tokens (used for the `op rhs` tail of constraints).
    fn parse_terms(
        tokens: &[&str],
        line: usize,
    ) -> Result<(Vec<(String, f64)>, usize), crate::error::IlpError> {
        let mut terms = Vec::new();
        let mut i = 0;
        if tokens == ["0"] {
            return Ok((terms, 1));
        }
        while i < tokens.len() {
            let sign = match tokens.get(i) {
                Some(&"+") => 1.0,
                Some(&"-") => -1.0,
                _ => break,
            };
            let coeff: f64 = tokens.get(i + 1).and_then(|t| t.parse().ok()).ok_or(
                crate::error::IlpError::Parse {
                    line,
                    message: "expected a coefficient after the sign".to_string(),
                },
            )?;
            let name = tokens
                .get(i + 2)
                .ok_or(crate::error::IlpError::Parse {
                    line,
                    message: "expected a variable name after the coefficient".to_string(),
                })?
                .to_string();
            terms.push((name, sign * coeff));
            i += 3;
        }
        Ok((terms, i))
    }

    let mut parsed = ParsedLp::default();
    let mut section = Section::Preamble;
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('\\') {
            if let Some(name) = comment.trim().strip_prefix("Problem:") {
                parsed.name = name.trim().to_string();
            }
            continue;
        }
        section = match line {
            "Minimize" => {
                parsed.maximize = false;
                section = Section::Objective;
                continue;
            }
            "Maximize" => {
                parsed.maximize = true;
                section = Section::Objective;
                continue;
            }
            "Subject To" => {
                section = Section::Constraints;
                continue;
            }
            "Bounds" => {
                section = Section::Bounds;
                continue;
            }
            "Generals" => {
                section = Section::Generals;
                continue;
            }
            "Binaries" => {
                section = Section::Binaries;
                continue;
            }
            "End" => {
                section = Section::Done;
                continue;
            }
            _ => section,
        };
        match section {
            Section::Preamble | Section::Done => {
                return Err(fail(line_no, &format!("unexpected text `{line}`")));
            }
            Section::Objective => {
                let body = line
                    .strip_prefix("obj:")
                    .ok_or_else(|| fail(line_no, "expected `obj:`"))?;
                let tokens: Vec<&str> = body.split_whitespace().collect();
                let (terms, used) = parse_terms(&tokens, line_no)?;
                if used != tokens.len() {
                    return Err(fail(line_no, "trailing tokens after the objective"));
                }
                parsed.objective = terms;
            }
            Section::Constraints => {
                let (label, body) = line
                    .split_once(':')
                    .ok_or_else(|| fail(line_no, "expected `name:` before the constraint"))?;
                let tokens: Vec<&str> = body.split_whitespace().collect();
                let (terms, used) = parse_terms(&tokens, line_no)?;
                if tokens.len() != used + 2 {
                    return Err(fail(line_no, "expected `op rhs` after the terms"));
                }
                let op = match tokens[used] {
                    "<=" => CmpOp::Le,
                    ">=" => CmpOp::Ge,
                    "=" => CmpOp::Eq,
                    other => return Err(fail(line_no, &format!("unknown operator `{other}`"))),
                };
                let rhs = parse_f64(tokens[used + 1], line_no)?;
                parsed.constraints.push(ParsedConstraint {
                    name: label.trim().to_string(),
                    terms,
                    op,
                    rhs,
                });
            }
            Section::Bounds => {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() != 5 || tokens[1] != "<=" || tokens[3] != "<=" {
                    return Err(fail(line_no, "expected `lower <= name <= upper`"));
                }
                let lower = parse_f64(tokens[0], line_no)?;
                let upper = parse_f64(tokens[4], line_no)?;
                parsed.bounds.push((tokens[2].to_string(), lower, upper));
            }
            Section::Generals => parsed.generals.push(line.to_string()),
            Section::Binaries => parsed.binaries.push(line.to_string()),
        }
    }
    if section != Section::Done {
        return Err(fail(text.lines().count(), "missing `End`"));
    }
    Ok(parsed)
}

fn sanitize(name: &str, index: usize) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("v{index}_{cleaned}")
    } else {
        format!("{cleaned}_{index}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn lp_output_contains_all_sections() {
        let mut m = Model::new("demo");
        let x = m.add_binary("x[0,1]");
        let y = m.add_integer("mux size", 0, 4);
        let z = m.add_continuous("slack", 0.0, 2.0);
        m.add_leq([(x, 1.0), (y, 2.0)], 3.0, "cap");
        m.add_geq([(z, 1.0), (x, -1.0)], 0.0, "link");
        m.set_objective([(x, 5.0), (y, 1.0)], Sense::Minimize);
        let text = to_lp_string(&m);
        assert!(text.contains("Minimize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("Generals"));
        assert!(text.contains("Binaries"));
        assert!(text.contains("End"));
        // names are sanitised
        assert!(!text.contains("x[0,1]"));
        assert!(!text.contains("mux size"));
    }

    #[test]
    fn maximisation_and_empty_objective() {
        let mut m = Model::new("max");
        let x = m.add_binary("x");
        m.add_leq([(x, 1.0)], 1.0, "c");
        let text = to_lp_string(&m);
        assert!(text.contains("Minimize")); // default sense
        assert!(text.contains(" obj: 0"));
        m.set_objective([(x, 1.0)], Sense::Maximize);
        let text = to_lp_string(&m);
        assert!(text.contains("Maximize"));
    }

    #[test]
    fn lp_round_trip_preserves_structure() {
        // Write a model with every variable kind, re-parse the text and
        // check that counts, bounds and integrality sections survive.
        let mut m = Model::new("round_trip");
        let x = m.add_binary("x[0,1]");
        let y = m.add_integer("y", -2, 7);
        let z = m.add_continuous("z", 0.5, 2.5);
        m.add_leq([(x, 1.0), (y, 2.0)], 3.0, "cap");
        m.add_geq([(z, 1.0), (x, -1.0)], 0.0, "link");
        m.add_eq([(y, 1.0)], 4.0, "pin");
        m.set_objective([(x, 5.0), (z, -1.5)], Sense::Minimize);

        let text = to_lp_string(&m);
        let parsed = parse_lp(&text).expect("round trip parses");
        assert_eq!(parsed.name, "round_trip");
        assert!(!parsed.maximize);
        assert_eq!(parsed.num_vars(), m.num_vars());
        assert_eq!(parsed.constraints.len(), m.num_constraints());
        assert_eq!(parsed.objective.len(), 2);
        assert_eq!(parsed.binaries.len(), m.num_binary());
        assert_eq!(parsed.generals.len(), 1);
        // Bounds survive for the integer and continuous variables.
        assert_eq!(parsed.bounds.len(), 2);
        assert_eq!(parsed.bounds[0].1, -2.0);
        assert_eq!(parsed.bounds[0].2, 7.0);
        assert_eq!(parsed.bounds[1].1, 0.5);
        assert_eq!(parsed.bounds[1].2, 2.5);
        // Operators and right-hand sides survive in order.
        let (ops, rhs): (Vec<CmpOp>, Vec<f64>) =
            parsed.constraints.iter().map(|c| (c.op, c.rhs)).unzip();
        assert_eq!(ops, vec![CmpOp::Le, CmpOp::Ge, CmpOp::Eq]);
        assert_eq!(rhs, vec![3.0, 0.0, 4.0]);
        // Per-constraint term counts match the model.
        for (parsed_c, model_c) in parsed.constraints.iter().zip(m.constraints()) {
            assert_eq!(parsed_c.terms.len(), model_c.expr.len());
        }
    }

    #[test]
    fn tightened_domains_round_trip_through_the_bounds_section() {
        // The revised kernel keeps tightened bounds implicit (no rows), so
        // the domain-aware writer is the only faithful export of a
        // mid-search model state. Tighten a binary, an integer and a
        // continuous variable, write, re-parse, and check every bound —
        // including the binary's, which the plain writer never emits.
        let mut m = Model::new("boxed");
        let b = m.add_binary("b");
        let y = m.add_integer("y", 0, 9);
        let z = m.add_continuous("z", 0.0, 8.0);
        m.add_leq([(b, 1.0), (y, 1.0), (z, 1.0)], 12.0, "cap");
        m.set_objective([(b, 1.0), (y, 1.0), (z, 1.0)], Sense::Minimize);
        let mut domains = Domains::from_model(&m);
        assert!(domains.fix(b.index(), 1.0));
        assert!(domains.tighten_lower(y.index(), 2.0));
        assert!(domains.tighten_upper(y.index(), 6.0));
        assert!(domains.tighten_upper(z.index(), 4.5));

        let text = to_lp_string_with_domains(&m, &domains);
        let parsed = parse_lp(&text).expect("domain-aware text parses");
        // One bounds line per variable, in variable order.
        assert_eq!(parsed.bounds.len(), m.num_vars());
        let by_pos: Vec<(f64, f64)> = parsed.bounds.iter().map(|(_, l, u)| (*l, *u)).collect();
        assert_eq!(by_pos[b.index()], (1.0, 1.0));
        assert_eq!(by_pos[y.index()], (2.0, 6.0));
        assert_eq!(by_pos[z.index()], (0.0, 4.5));
        // Integrality sections are unchanged by the domain-aware writer.
        assert_eq!(parsed.binaries.len(), 1);
        assert_eq!(parsed.generals.len(), 1);
        // The plain writer still omits binary bounds.
        let plain = parse_lp(&to_lp_string(&m)).expect("plain text parses");
        assert_eq!(plain.bounds.len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(matches!(
            parse_lp("Minimize\n obj: 0\n"),
            Err(crate::error::IlpError::Parse { .. })
        ));
        assert!(matches!(
            parse_lp("Minimize\n obj: + 1\nEnd\n"),
            Err(crate::error::IlpError::Parse { .. })
        ));
        assert!(matches!(
            parse_lp("garbage\n"),
            Err(crate::error::IlpError::Parse { .. })
        ));
        let ok = parse_lp("\\ Problem: p\nMinimize\n obj: 0\nSubject To\nBounds\nEnd\n").unwrap();
        assert_eq!(ok.name, "p");
        assert_eq!(ok.num_vars(), 0);
    }

    #[test]
    fn negative_coefficients_render_with_minus() {
        let mut m = Model::new("neg");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, -1.0)], 0.0, "c");
        m.set_objective([(x, -2.0)], Sense::Minimize);
        let text = to_lp_string(&m);
        assert!(text.contains("- 2 x_0"));
        assert!(text.contains("- 1 y_1"));
    }
}
