//! CPLEX LP-format writer.
//!
//! The DAC'99 authors solved their formulations with CPLEX 6.0. This module
//! serialises a [`Model`] into the (still current) CPLEX LP text format so a
//! generated BIST model can be inspected by hand or handed to an external
//! solver for cross-checking our built-in branch and bound.

use crate::model::{CmpOp, Model, Sense, VarKind};
use std::fmt::Write as _;

/// Renders the model in CPLEX LP format.
///
/// Variable names are sanitised (characters outside `[A-Za-z0-9_]` become
/// `_`) and deduplicated by suffixing the variable index, because the LP
/// format requires unique identifiers.
pub fn to_lp_string(model: &Model) -> String {
    let names: Vec<String> = model
        .vars()
        .iter()
        .enumerate()
        .map(|(i, v)| sanitize(&v.name, i))
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "\\ Problem: {}", model.name());
    match model.sense() {
        Sense::Minimize => out.push_str("Minimize\n"),
        Sense::Maximize => out.push_str("Maximize\n"),
    }
    out.push_str(" obj:");
    if model.objective().is_empty() {
        out.push_str(" 0");
    } else {
        for (var, coeff) in model.objective().iter() {
            append_term(&mut out, coeff, &names[var.index()]);
        }
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let cname = sanitize(&c.name, i);
        let _ = write!(out, " c{i}_{cname}:");
        if c.expr.is_empty() {
            out.push_str(" 0");
        }
        for (var, coeff) in c.expr.iter() {
            append_term(&mut out, coeff, &names[var.index()]);
        }
        let op = match c.op {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", c.rhs);
    }

    out.push_str("Bounds\n");
    for (i, v) in model.vars().iter().enumerate() {
        match v.kind {
            VarKind::Binary => {}
            VarKind::Integer { lower, upper } => {
                let _ = writeln!(out, " {lower} <= {} <= {upper}", names[i]);
            }
            VarKind::Continuous { lower, upper } => {
                let _ = writeln!(out, " {lower} <= {} <= {upper}", names[i]);
            }
        }
    }

    let generals: Vec<&str> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v.kind, VarKind::Integer { .. }))
        .map(|(i, _)| names[i].as_str())
        .collect();
    if !generals.is_empty() {
        out.push_str("Generals\n");
        for name in generals {
            let _ = writeln!(out, " {name}");
        }
    }

    let binaries: Vec<&str> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| matches!(v.kind, VarKind::Binary))
        .map(|(i, _)| names[i].as_str())
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binaries\n");
        for name in binaries {
            let _ = writeln!(out, " {name}");
        }
    }

    out.push_str("End\n");
    out
}

fn append_term(out: &mut String, coeff: f64, name: &str) {
    if coeff >= 0.0 {
        let _ = write!(out, " + {coeff} {name}");
    } else {
        let _ = write!(out, " - {} {name}", -coeff);
    }
}

fn sanitize(name: &str, index: usize) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("v{index}_{cleaned}")
    } else {
        format!("{cleaned}_{index}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn lp_output_contains_all_sections() {
        let mut m = Model::new("demo");
        let x = m.add_binary("x[0,1]");
        let y = m.add_integer("mux size", 0, 4);
        let z = m.add_continuous("slack", 0.0, 2.0);
        m.add_leq([(x, 1.0), (y, 2.0)], 3.0, "cap");
        m.add_geq([(z, 1.0), (x, -1.0)], 0.0, "link");
        m.set_objective([(x, 5.0), (y, 1.0)], Sense::Minimize);
        let text = to_lp_string(&m);
        assert!(text.contains("Minimize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("Generals"));
        assert!(text.contains("Binaries"));
        assert!(text.contains("End"));
        // names are sanitised
        assert!(!text.contains("x[0,1]"));
        assert!(!text.contains("mux size"));
    }

    #[test]
    fn maximisation_and_empty_objective() {
        let mut m = Model::new("max");
        let x = m.add_binary("x");
        m.add_leq([(x, 1.0)], 1.0, "c");
        let text = to_lp_string(&m);
        assert!(text.contains("Minimize")); // default sense
        assert!(text.contains(" obj: 0"));
        m.set_objective([(x, 1.0)], Sense::Maximize);
        let text = to_lp_string(&m);
        assert!(text.contains("Maximize"));
    }

    #[test]
    fn negative_coefficients_render_with_minus() {
        let mut m = Model::new("neg");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, -1.0)], 0.0, "c");
        m.set_objective([(x, -2.0)], Sense::Minimize);
        let text = to_lp_string(&m);
        assert!(text.contains("- 2 x_0"));
        assert!(text.contains("- 1 y_1"));
    }
}
