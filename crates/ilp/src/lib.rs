//! # bist-ilp — a pure-Rust 0-1 / mixed integer linear programming solver
//!
//! This crate is the substitute for the commercial CPLEX 6.0 solver used in
//! the DAC'99 paper *"On ILP Formulations for Built-In Self-Testable Data
//! Path Synthesis"* (Kim, Ha, Takahashi). The BIST synthesis formulations in
//! the workspace's `bist-core` crate only need a reliable exact solver for
//! small-to-medium 0-1 programs plus a time-limited best-effort mode for the
//! larger benchmark circuits, and that is exactly what this crate provides:
//!
//! * a [`Model`] builder with binary, general integer and continuous
//!   variables, linear constraints and a linear objective,
//! * a shared [`sparse`] CSR+CSC image of the constraint matrix consumed by
//!   every solver kernel,
//! * a sparse bounded-variable **revised [`simplex`]** solver for the LP
//!   relaxation — variable bounds handled implicitly by nonbasic status
//!   (no bound rows), pricing fed from the CSC columns of the sparse
//!   matrix, a product-form factorized basis with periodic
//!   refactorization, and a bounded **dual simplex** path that re-solves
//!   child-node LPs from the parent's optimal [`Basis`] after bound
//!   changes,
//! * a worklist-driven interval [`propagate`] engine (bound tightening over
//!   linear constraints) used both for presolve and for node pruning,
//! * a [`reduce`] pipeline of model-rewriting presolve passes (fixed-variable
//!   elimination, redundant-row removal, clique merging, coefficient
//!   tightening, singleton substitution) producing a smaller
//!   [`reduce::ReducedModel`] with round-trip solution lifting,
//! * a [`cuts`] pool of knapsack-cover and clique cutting planes, separated
//!   at the root and re-checked at improved incumbents,
//! * a branch-and-bound [`solver`] with configurable bounding
//!   (LP relaxation, propagation-only, or hybrid), branching rules up to
//!   pseudo-cost / reliability branching with strong-branching
//!   initialisation, reduced-cost bound fixing against the incumbent,
//!   search strategies, a greedy diving primal heuristic and wall-clock
//!   limits,
//! * a CPLEX-style `.lp` file writer ([`lpfile`]) for debugging and for
//!   feeding the very same model to an external solver if one is available,
//! * a [`session`] layer — [`SolveSession`] with a unified [`Budget`]
//!   (nodes + wall-clock + absolute deadline), a shareable [`CancelToken`]
//!   checked inside the search loop, and a live [`SolveEvent`] stream —
//!   the API the `advbist` job service is built on.
//!
//! # Quick example
//!
//! ```
//! use bist_ilp::{Model, Sense, SolverConfig};
//!
//! # fn main() -> Result<(), bist_ilp::IlpError> {
//! // maximize x + 2y  s.t.  x + y <= 1,  x,y binary
//! let mut model = Model::new("tiny");
//! let x = model.add_binary("x");
//! let y = model.add_binary("y");
//! model.add_leq([(x, 1.0), (y, 1.0)], 1.0, "cap");
//! model.set_objective([(x, 1.0), (y, 2.0)], Sense::Maximize);
//! let solution = model.solve(&SolverConfig::default())?;
//! assert!(solution.is_optimal());
//! assert_eq!(solution.value(y).round() as i64, 1);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod error;
pub mod expr;
pub mod heuristics;
pub mod json;
pub mod lpfile;
pub mod model;
pub mod presolve;
pub mod propagate;
pub mod reduce;
pub mod session;
pub mod simplex;
pub mod snapshot;
pub mod solution;
pub mod solver;
pub mod sparse;

pub use cuts::{CutGenerator, CutKind, CutRow};
pub use error::IlpError;
pub use expr::LinExpr;
pub use model::{CmpOp, Constraint, Model, Sense, VarId, VarKind};
pub use reduce::{ReduceOptions, ReduceReport, ReducedModel, VarDisposition};
pub use session::{Budget, BudgetError, CancelToken, SolveEvent, SolveSession};
pub use simplex::{Basis, LpSolution, LpStatus, Pricing, ReducedCosts};
pub use snapshot::{model_fingerprint, SnapshotError, SolveSnapshot};
pub use solution::{CutCounts, Improvement, Solution, SolveStats, Status};
pub use solver::{BoundMode, BranchRule, SearchOrder, SolverConfig, SolverConfigBuilder};
pub use sparse::{RowRef, SparseModel};

/// Backwards-compatible alias: the branching enum was named `Branching`
/// before the pseudo-cost rule landed in the search layer.
#[deprecated(since = "0.2.0", note = "use `BranchRule` instead")]
pub type Branching = BranchRule;

/// Numerical tolerance used throughout the crate when comparing floating
/// point activities, bounds and objective values.
pub const EPS: f64 = 1e-6;

/// Tolerance used when deciding whether a relaxation value is integral.
pub const INT_EPS: f64 = 1e-5;
