//! Model builder: variables, linear constraints and the objective.

use crate::error::IlpError;
use crate::expr::LinExpr;
use crate::solution::Solution;
use crate::solver::SolverConfig;

/// Opaque handle to a model variable.
///
/// `VarId`s are created by the `add_*` methods of [`Model`] and are only
/// meaningful for the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of the variable inside its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The domain of a model variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// A 0/1 variable.
    Binary,
    /// A general integer variable with inclusive bounds.
    Integer {
        /// Inclusive lower bound.
        lower: i64,
        /// Inclusive upper bound.
        upper: i64,
    },
    /// A continuous variable with inclusive bounds.
    Continuous {
        /// Inclusive lower bound.
        lower: f64,
        /// Inclusive upper bound.
        upper: f64,
    },
}

impl VarKind {
    /// Whether the variable is required to take an integral value.
    pub fn is_integral(&self) -> bool {
        !matches!(self, VarKind::Continuous { .. })
    }

    /// Lower bound as a float.
    pub fn lower(&self) -> f64 {
        match *self {
            VarKind::Binary => 0.0,
            VarKind::Integer { lower, .. } => lower as f64,
            VarKind::Continuous { lower, .. } => lower,
        }
    }

    /// Upper bound as a float.
    pub fn upper(&self) -> f64 {
        match *self {
            VarKind::Binary => 1.0,
            VarKind::Integer { upper, .. } => upper as f64,
            VarKind::Continuous { upper, .. } => upper,
        }
    }
}

/// Definition of one model variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDef {
    /// Human readable name, used in `.lp` output and diagnostics.
    pub name: String,
    /// Domain of the variable.
    pub kind: VarKind,
    /// Objective coefficient (filled in by [`Model::set_objective`]).
    pub objective: f64,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl CmpOp {
    /// ASCII rendering used by the `.lp` writer.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        }
    }
}

/// A linear constraint `expr (<=,>=,=) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Name for diagnostics.
    pub name: String,
    /// Left-hand-side linear expression (its constant is folded into `rhs`).
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand-side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Whether a dense assignment satisfies the constraint within `tol`.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.op {
            CmpOp::Le => lhs <= self.rhs + tol,
            CmpOp::Ge => lhs >= self.rhs - tol,
            CmpOp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }

    /// Signed violation of the constraint (0 when satisfied).
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs = self.expr.evaluate(values);
        match self.op {
            CmpOp::Le => (lhs - self.rhs).max(0.0),
            CmpOp::Ge => (self.rhs - lhs).max(0.0),
            CmpOp::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Minimise the objective (the default; the BIST formulations minimise area).
    #[default]
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// An integer linear programming model.
///
/// The model owns its variables, constraints and objective. It is built
/// incrementally and solved with [`Model::solve`]; the same model may be
/// solved several times with different [`SolverConfig`]s.
#[derive(Debug, Clone, Default)]
pub struct Model {
    name: String,
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    sense: Sense,
}

impl Model {
    /// Creates an empty model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a binary (0/1) variable and returns its handle.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarKind::Binary)
    }

    /// Adds a bounded general-integer variable.
    pub fn add_integer(&mut self, name: impl Into<String>, lower: i64, upper: i64) -> VarId {
        self.push_var(name.into(), VarKind::Integer { lower, upper })
    }

    /// Adds a bounded continuous variable.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), VarKind::Continuous { lower, upper })
    }

    fn push_var(&mut self, name: String, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name,
            kind,
            objective: 0.0,
        });
        id
    }

    /// Number of variables in the model.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints in the model.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of binary variables.
    pub fn num_binary(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| matches!(v.kind, VarKind::Binary))
            .count()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integral(&self) -> usize {
        self.vars.iter().filter(|v| v.kind.is_integral()).count()
    }

    /// The variable definitions, indexed by [`VarId::index`].
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// The constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective expression (constant included).
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Definition of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var(&self, var: VarId) -> &VarDef {
        &self.vars[var.index()]
    }

    /// Looks a variable up by name (linear scan; intended for tests and
    /// diagnostics, not hot paths).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// Adds a generic constraint `expr op rhs`.
    ///
    /// The constant part of `expr` is moved to the right-hand side so the
    /// stored expression is homogeneous.
    pub fn add_constraint(
        &mut self,
        expr: impl Into<LinExpr>,
        op: CmpOp,
        rhs: f64,
        name: impl Into<String>,
    ) -> usize {
        let mut expr = expr.into();
        let rhs = rhs - expr.offset();
        expr.add_constant(-expr.offset());
        let index = self.constraints.len();
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            op,
            rhs,
        });
        index
    }

    /// Adds `expr <= rhs`.
    pub fn add_leq(
        &mut self,
        expr: impl Into<LinExpr>,
        rhs: f64,
        name: impl Into<String>,
    ) -> usize {
        self.add_constraint(expr, CmpOp::Le, rhs, name)
    }

    /// Adds `expr >= rhs`.
    pub fn add_geq(
        &mut self,
        expr: impl Into<LinExpr>,
        rhs: f64,
        name: impl Into<String>,
    ) -> usize {
        self.add_constraint(expr, CmpOp::Ge, rhs, name)
    }

    /// Adds `expr == rhs`.
    pub fn add_eq(&mut self, expr: impl Into<LinExpr>, rhs: f64, name: impl Into<String>) -> usize {
        self.add_constraint(expr, CmpOp::Eq, rhs, name)
    }

    /// Sets the objective from an expression and an optimisation sense.
    ///
    /// Calling this again replaces the previous objective.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>, sense: Sense) {
        let expr = expr.into();
        for def in &mut self.vars {
            def.objective = 0.0;
        }
        for (var, coeff) in expr.iter() {
            self.vars[var.index()].objective = coeff;
        }
        self.objective = expr;
        self.sense = sense;
    }

    /// Validates structural well-formedness: finite coefficients, bound
    /// consistency and variable indices in range.
    ///
    /// # Errors
    ///
    /// Returns the first problem encountered.
    pub fn validate(&self) -> Result<(), IlpError> {
        for def in &self.vars {
            let (lo, hi) = (def.kind.lower(), def.kind.upper());
            if lo > hi || !lo.is_finite() || !hi.is_finite() {
                return Err(IlpError::InvalidBounds {
                    name: def.name.clone(),
                    lower: lo,
                    upper: hi,
                });
            }
        }
        if !self.objective.is_finite() {
            return Err(IlpError::InvalidCoefficient {
                location: "objective".into(),
            });
        }
        if let Some(max) = self.objective.max_var_index() {
            if max >= self.vars.len() {
                return Err(IlpError::UnknownVariable {
                    index: max,
                    len: self.vars.len(),
                });
            }
        }
        for c in &self.constraints {
            if !c.expr.is_finite() || !c.rhs.is_finite() {
                return Err(IlpError::InvalidCoefficient {
                    location: c.name.clone(),
                });
            }
            if let Some(max) = c.expr.max_var_index() {
                if max >= self.vars.len() {
                    return Err(IlpError::UnknownVariable {
                        index: max,
                        len: self.vars.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective for a dense assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.evaluate(values)
    }

    /// Whether a dense assignment satisfies every constraint and every
    /// variable domain (integrality included) within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (def, &val) in self.vars.iter().zip(values) {
            if val < def.kind.lower() - tol || val > def.kind.upper() + tol {
                return false;
            }
            if def.kind.is_integral() && (val - val.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Solves the model with the given configuration.
    ///
    /// With [`SolverConfig::presolve`] enabled (the default) the model is
    /// first rewritten by the reducing pipeline ([`crate::reduce`]) and the
    /// branch and bound explores the reduced model; the returned solution is
    /// lifted back to this model's variable indexing, so callers never see
    /// the reduction.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is malformed; infeasibility and time
    /// limits are reported through [`Solution::status`], not as errors.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution, IlpError> {
        crate::session::solve_with_events(self, config, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_model() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0, 5);
        let z = m.add_continuous("z", -1.0, 1.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_binary(), 1);
        assert_eq!(m.num_integral(), 2);
        assert_eq!(m.var(x).kind.upper(), 1.0);
        assert_eq!(m.var(y).kind.upper(), 5.0);
        assert_eq!(m.var(z).kind.lower(), -1.0);
        assert_eq!(m.var_by_name("y"), Some(y));
        assert_eq!(m.var_by_name("nope"), None);
    }

    #[test]
    fn constraint_constant_folding() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let expr = LinExpr::term(x, 2.0) + LinExpr::constant(3.0);
        m.add_leq(expr, 4.0, "c");
        let c = &m.constraints()[0];
        assert_eq!(c.rhs, 1.0);
        assert_eq!(c.expr.offset(), 0.0);
    }

    #[test]
    fn validation_catches_bad_bounds_and_nan() {
        let mut m = Model::new("m");
        m.add_continuous("bad", 2.0, 1.0);
        assert!(matches!(m.validate(), Err(IlpError::InvalidBounds { .. })));

        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_leq([(x, f64::NAN)], 1.0, "c");
        assert!(matches!(
            m.validate(),
            Err(IlpError::InvalidCoefficient { .. })
        ));
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "c");
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 0.0], 1e-9));
        assert!(!m.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    fn objective_replacement_resets_coefficients() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 5.0)], Sense::Minimize);
        assert_eq!(m.var(x).objective, 5.0);
        m.set_objective([(y, 2.0)], Sense::Maximize);
        assert_eq!(m.var(x).objective, 0.0);
        assert_eq!(m.var(y).objective, 2.0);
        assert_eq!(m.sense(), Sense::Maximize);
    }

    #[test]
    fn constraint_violation_metrics() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let idx = m.add_geq([(x, 2.0)], 1.0, "c");
        let c = &m.constraints()[idx];
        assert_eq!(c.violation(&[0.0]), 1.0);
        assert_eq!(c.violation(&[1.0]), 0.0);
    }
}
