//! Presolve: cheap model reductions applied before the tree search.
//!
//! The reductions never change the optimal objective value; they only shrink
//! the search space. The report is also useful on its own as a structural
//! diagnostic of a formulation (how many variables are decided by
//! propagation alone, how many rows are vacuous, ...), which the BIST crates
//! use in their tests to validate that the generated models are sensible.

use crate::model::{CmpOp, Model};
use crate::propagate::{Domains, PropagationResult, Propagator};
use crate::EPS;

/// Summary of the reductions found by [`presolve`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PresolveReport {
    /// Variables fixed by root propagation.
    pub fixed_vars: usize,
    /// Variables whose bounds were tightened (but not fixed).
    pub tightened_vars: usize,
    /// Constraints that are satisfied by every point of the propagated box.
    pub redundant_constraints: usize,
    /// Whether root propagation proved the model infeasible.
    pub infeasible: bool,
}

impl PresolveReport {
    /// Fraction of variables already decided at the root, in `[0, 1]`.
    pub fn fixed_fraction(&self, model: &Model) -> f64 {
        if model.num_vars() == 0 {
            return 0.0;
        }
        self.fixed_vars as f64 / model.num_vars() as f64
    }
}

/// Runs root propagation on the model and reports the resulting reductions
/// together with the propagated domains (which a solver can reuse).
pub fn presolve(model: &Model) -> (PresolveReport, Domains) {
    let propagator = Propagator::new(model);
    let original = Domains::from_model(model);
    let mut domains = original.clone();
    let mut report = PresolveReport::default();

    if propagator.propagate(&mut domains) == PropagationResult::Infeasible {
        report.infeasible = true;
        return (report, domains);
    }

    for j in 0..domains.len() {
        if domains.is_fixed(j) && !original.is_fixed(j) {
            report.fixed_vars += 1;
        } else if domains.lower(j) > original.lower(j) + EPS
            || domains.upper(j) < original.upper(j) - EPS
        {
            report.tightened_vars += 1;
        }
    }

    for row in propagator.matrix().rows() {
        let (min_act, max_act) = {
            let mut min = 0.0;
            let mut max = 0.0;
            for (i, a) in row.terms() {
                if a >= 0.0 {
                    min += a * domains.lower(i);
                    max += a * domains.upper(i);
                } else {
                    min += a * domains.upper(i);
                    max += a * domains.lower(i);
                }
            }
            (min, max)
        };
        let redundant = match row.op {
            CmpOp::Le => max_act <= row.rhs + EPS,
            CmpOp::Ge => min_act >= row.rhs - EPS,
            CmpOp::Eq => (min_act - row.rhs).abs() <= EPS && (max_act - row.rhs).abs() <= EPS,
        };
        if redundant {
            report.redundant_constraints += 1;
        }
    }

    (report, domains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn presolve_fixes_forced_variables() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_geq([(x, 1.0)], 1.0, "fix_x");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "x_excludes_y");
        m.set_objective([(z, 1.0)], Sense::Minimize);
        let (report, domains) = presolve(&m);
        assert!(!report.infeasible);
        assert_eq!(report.fixed_vars, 2); // x = 1, y = 0
        assert!(domains.is_fixed(x.index()));
        assert!(domains.is_fixed(y.index()));
        assert!(!domains.is_fixed(z.index()));
        assert!(report.fixed_fraction(&m) > 0.6);
    }

    #[test]
    fn presolve_detects_infeasibility() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 1.0, "a");
        m.add_leq([(x, 1.0)], 0.0, "b");
        let (report, _) = presolve(&m);
        assert!(report.infeasible);
    }

    #[test]
    fn redundant_constraints_are_counted() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_leq([(x, 1.0), (y, 1.0)], 5.0, "slack_row");
        let (report, _) = presolve(&m);
        assert_eq!(report.redundant_constraints, 1);
    }

    #[test]
    fn integer_bound_tightening_is_reported() {
        let mut m = Model::new("m");
        let x = m.add_integer("x", 0, 10);
        m.add_leq([(x, 2.0)], 9.0, "half");
        let (report, domains) = presolve(&m);
        assert_eq!(report.tightened_vars, 1);
        assert_eq!(domains.upper(x.index()), 4.0);
    }

    #[test]
    fn empty_model_presolves_cleanly() {
        let m = Model::new("empty");
        let (report, _) = presolve(&m);
        assert_eq!(report, PresolveReport::default());
        assert_eq!(report.fixed_fraction(&m), 0.0);
    }
}
